//! Lexer and recursive-descent parser for mini-C.

use std::fmt;

use crate::ast::*;

/// A parse error with a 1-based line number.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CParseError {
    /// Offending line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for CParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CParseError {}

type Result<T> = std::result::Result<T, CParseError>;

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Ident(String),
    Int(i64, bool), // value, is_long
    Punct(&'static str),
}

const PUNCTS: &[&str] = &[
    "<<=", ">>=", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "&=", "|=", "^=", "(", ")", "{", "}", "[", "]", ";", ",", ":", "?", "=", "<",
    ">", "+", "-", "*", "/", "%", "&", "|", "^", "!", "~",
];

fn lex(src: &str) -> Result<Vec<(Tok, usize)>> {
    let b = src.as_bytes();
    let mut i = 0;
    let mut line = 1;
    let mut out = Vec::new();
    'outer: while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            i += 2;
            while i + 1 < b.len() && !(b[i] == b'*' && b[i + 1] == b'/') {
                if b[i] == b'\n' {
                    line += 1;
                }
                i += 1;
            }
            i += 2;
            continue;
        }
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = i;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            out.push((Tok::Ident(src[start..i].to_string()), line));
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut radix = 10;
            if c == b'0' && i + 1 < b.len() && (b[i + 1] | 32) == b'x' {
                i += 2;
                radix = 16;
                while i < b.len() && b[i].is_ascii_hexdigit() {
                    i += 1;
                }
            } else {
                while i < b.len() && b[i].is_ascii_digit() {
                    i += 1;
                }
            }
            let text = if radix == 16 {
                &src[start + 2..i]
            } else {
                &src[start..i]
            };
            let v = i64::from_str_radix(text, radix).map_err(|_| CParseError {
                line,
                message: format!("bad integer '{text}'"),
            })?;
            let mut is_long = false;
            while i < b.len() && matches!(b[i] | 32, b'l' | b'u') {
                if b[i] | 32 == b'l' {
                    is_long = true;
                }
                i += 1;
            }
            out.push((Tok::Int(v, is_long), line));
            continue;
        }
        for p in PUNCTS {
            if src[i..].starts_with(p) {
                out.push((Tok::Punct(p), line));
                i += p.len();
                continue 'outer;
            }
        }
        return Err(CParseError {
            line,
            message: format!("unexpected character '{}'", c as char),
        });
    }
    Ok(out)
}

struct P {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

impl P {
    fn line(&self) -> usize {
        self.toks
            .get(self.pos)
            .or_else(|| self.toks.last())
            .map(|t| t.1)
            .unwrap_or(1)
    }

    fn err<T>(&self, m: impl Into<String>) -> Result<T> {
        Err(CParseError {
            line: self.line(),
            message: m.into(),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.0)
    }

    fn peek2(&self) -> Option<&Tok> {
        self.toks.get(self.pos + 1).map(|t| &t.0)
    }

    fn next(&mut self) -> Result<Tok> {
        match self.toks.get(self.pos) {
            Some((t, _)) => {
                self.pos += 1;
                Ok(t.clone())
            }
            None => self.err("unexpected end of input"),
        }
    }

    fn eat(&mut self, p: &str) -> bool {
        if self.peek() == Some(&Tok::Punct(punct_ref(p))) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, p: &str) -> Result<()> {
        if self.eat(p) {
            Ok(())
        } else {
            self.err(format!("expected '{p}'"))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(w)) if w == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.next()? {
            Tok::Ident(w) => Ok(w),
            other => {
                self.pos -= 1;
                self.err(format!("expected an identifier, found {other:?}"))
            }
        }
    }
}

fn punct_ref(p: &str) -> &'static str {
    PUNCTS.iter().find(|q| **q == p).expect("known punct")
}

fn is_type_start(p: &P) -> bool {
    matches!(
        p.peek(),
        Some(Tok::Ident(w)) if matches!(
            w.as_str(),
            "int" | "long" | "short" | "char" | "unsigned" | "signed" | "void" | "struct"
        )
    )
}

fn parse_type(p: &mut P) -> Result<CType> {
    let mut signed = true;
    let mut saw_sign = false;
    loop {
        if p.eat_kw("unsigned") {
            signed = false;
            saw_sign = true;
        } else if p.eat_kw("signed") {
            signed = true;
            saw_sign = true;
        } else {
            break;
        }
    }
    let base = if p.eat_kw("int") {
        CType::Int { bits: 32, signed }
    } else if p.eat_kw("long") {
        p.eat_kw("int");
        CType::Int { bits: 64, signed }
    } else if p.eat_kw("short") {
        p.eat_kw("int");
        CType::Int { bits: 16, signed }
    } else if p.eat_kw("char") {
        CType::Int { bits: 8, signed }
    } else if p.eat_kw("void") {
        CType::Void
    } else if p.eat_kw("struct") {
        CType::Struct(p.expect_ident()?)
    } else if saw_sign {
        CType::Int { bits: 32, signed }
    } else {
        return p.err("expected a type");
    };
    let mut ty = base;
    while p.eat("*") {
        ty = CType::Ptr(Box::new(ty));
    }
    Ok(ty)
}

fn parse_struct(p: &mut P) -> Result<StructDecl> {
    // 'struct' already consumed by the caller's lookahead decision.
    let name = p.expect_ident()?;
    p.expect("{")?;
    let mut fields = Vec::new();
    while !p.eat("}") {
        let ty = parse_type(p)?;
        let fname = p.expect_ident()?;
        let bit_width = if p.eat(":") {
            match p.next()? {
                Tok::Int(v, _) if v > 0 => Some(v as u32),
                _ => return p.err("expected a positive bit-field width"),
            }
        } else {
            None
        };
        p.expect(";")?;
        fields.push(FieldDecl {
            name: fname,
            ty,
            bit_width,
        });
    }
    p.expect(";")?;
    Ok(StructDecl { name, fields })
}

fn parse_params(p: &mut P) -> Result<Vec<ParamDecl>> {
    let mut params = Vec::new();
    if p.eat(")") {
        return Ok(params);
    }
    if p.eat_kw("void") && p.eat(")") {
        return Ok(params);
    }
    loop {
        let ty = parse_type(p)?;
        let name = p.expect_ident()?;
        params.push(ParamDecl { name, ty });
        if !p.eat(",") {
            break;
        }
    }
    p.expect(")")?;
    Ok(params)
}

fn parse_block(p: &mut P) -> Result<Vec<Stmt>> {
    p.expect("{")?;
    let mut out = Vec::new();
    while !p.eat("}") {
        out.push(parse_stmt(p)?);
    }
    Ok(out)
}

fn parse_block_or_stmt(p: &mut P) -> Result<Vec<Stmt>> {
    if p.peek() == Some(&Tok::Punct("{")) {
        parse_block(p)
    } else {
        Ok(vec![parse_stmt(p)?])
    }
}

fn parse_stmt(p: &mut P) -> Result<Stmt> {
    if is_type_start(p) {
        let ty = parse_type(p)?;
        let name = p.expect_ident()?;
        let init = if p.eat("=") {
            Some(parse_expr(p)?)
        } else {
            None
        };
        p.expect(";")?;
        return Ok(Stmt::Decl(name, ty, init));
    }
    if p.eat_kw("if") {
        p.expect("(")?;
        let cond = parse_expr(p)?;
        p.expect(")")?;
        let then = parse_block_or_stmt(p)?;
        let els = if p.eat_kw("else") {
            parse_block_or_stmt(p)?
        } else {
            Vec::new()
        };
        return Ok(Stmt::If(cond, then, els));
    }
    if p.eat_kw("while") {
        p.expect("(")?;
        let cond = parse_expr(p)?;
        p.expect(")")?;
        let body = parse_block_or_stmt(p)?;
        return Ok(Stmt::While(cond, body));
    }
    if p.eat_kw("for") {
        p.expect("(")?;
        let init = if p.peek() == Some(&Tok::Punct(";")) {
            p.expect(";")?;
            Stmt::Expr(Expr::IntLit(0, CType::int()))
        } else if is_type_start(p) {
            let ty = parse_type(p)?;
            let name = p.expect_ident()?;
            p.expect("=")?;
            let e = parse_expr(p)?;
            p.expect(";")?;
            Stmt::Decl(name, ty, Some(e))
        } else {
            let s = parse_simple_stmt(p)?;
            p.expect(";")?;
            s
        };
        let cond = if p.peek() == Some(&Tok::Punct(";")) {
            Expr::IntLit(1, CType::int())
        } else {
            parse_expr(p)?
        };
        p.expect(";")?;
        let step = if p.peek() == Some(&Tok::Punct(")")) {
            Stmt::Expr(Expr::IntLit(0, CType::int()))
        } else {
            parse_simple_stmt(p)?
        };
        p.expect(")")?;
        let body = parse_block_or_stmt(p)?;
        return Ok(Stmt::For(Box::new(init), cond, Box::new(step), body));
    }
    if p.eat_kw("return") {
        if p.eat(";") {
            return Ok(Stmt::Return(None));
        }
        let e = parse_expr(p)?;
        p.expect(";")?;
        return Ok(Stmt::Return(Some(e)));
    }
    let s = parse_simple_stmt(p)?;
    p.expect(";")?;
    Ok(s)
}

/// Assignment (including compound assignment and `x++`/`x--`) or a bare
/// expression.
fn parse_simple_stmt(p: &mut P) -> Result<Stmt> {
    let e = parse_expr(p)?;
    // Postfix ++/-- as a statement.
    if p.eat("++") || {
        if p.peek() == Some(&Tok::Punct("--")) {
            p.pos += 1;
            return to_compound(p, e, BinaryOp::Sub, Expr::IntLit(1, CType::int()));
        }
        false
    } {
        return to_compound(p, e, BinaryOp::Add, Expr::IntLit(1, CType::int()));
    }
    for (tok, op) in [
        ("+=", BinaryOp::Add),
        ("-=", BinaryOp::Sub),
        ("*=", BinaryOp::Mul),
        ("/=", BinaryOp::Div),
        ("%=", BinaryOp::Rem),
        ("&=", BinaryOp::And),
        ("|=", BinaryOp::Or),
        ("^=", BinaryOp::Xor),
        ("<<=", BinaryOp::Shl),
        (">>=", BinaryOp::Shr),
    ] {
        if p.eat(tok) {
            let rhs = parse_expr(p)?;
            return to_compound(p, e, op, rhs);
        }
    }
    if p.eat("=") {
        let rhs = parse_expr(p)?;
        let lv = to_lvalue(p, e)?;
        return Ok(Stmt::Assign(lv, rhs));
    }
    Ok(Stmt::Expr(e))
}

fn to_compound(p: &P, e: Expr, op: BinaryOp, rhs: Expr) -> Result<Stmt> {
    let lv = to_lvalue(p, e.clone())?;
    Ok(Stmt::Assign(
        lv,
        Expr::Binary(op, Box::new(e), Box::new(rhs)),
    ))
}

fn to_lvalue(p: &P, e: Expr) -> Result<LValue> {
    match e {
        Expr::Var(n) => Ok(LValue::Var(n)),
        Expr::Index(b, i) => Ok(LValue::Index(*b, *i)),
        Expr::Arrow(b, f) => Ok(LValue::Arrow(*b, f)),
        other => p.err(format!("not assignable: {other:?}")),
    }
}

fn parse_expr(p: &mut P) -> Result<Expr> {
    parse_ternary(p)
}

fn parse_ternary(p: &mut P) -> Result<Expr> {
    let c = parse_bin(p, 0)?;
    if p.eat("?") {
        let t = parse_expr(p)?;
        p.expect(":")?;
        let f = parse_ternary(p)?;
        return Ok(Expr::Ternary(Box::new(c), Box::new(t), Box::new(f)));
    }
    Ok(c)
}

/// Precedence-climbing over binary operators, `level` being the lowest
/// precedence to accept.
fn parse_bin(p: &mut P, level: usize) -> Result<Expr> {
    const LEVELS: &[&[(&str, BinaryOp)]] = &[
        &[("||", BinaryOp::LogicalOr)],
        &[("&&", BinaryOp::LogicalAnd)],
        &[("|", BinaryOp::Or)],
        &[("^", BinaryOp::Xor)],
        &[("&", BinaryOp::And)],
        &[("==", BinaryOp::Eq), ("!=", BinaryOp::Ne)],
        &[
            ("<=", BinaryOp::Le),
            (">=", BinaryOp::Ge),
            ("<", BinaryOp::Lt),
            (">", BinaryOp::Gt),
        ],
        &[("<<", BinaryOp::Shl), (">>", BinaryOp::Shr)],
        &[("+", BinaryOp::Add), ("-", BinaryOp::Sub)],
        &[
            ("*", BinaryOp::Mul),
            ("/", BinaryOp::Div),
            ("%", BinaryOp::Rem),
        ],
    ];
    if level >= LEVELS.len() {
        return parse_unary(p);
    }
    let mut lhs = parse_bin(p, level + 1)?;
    'outer: loop {
        for (tok, op) in LEVELS[level] {
            if p.eat(tok) {
                let rhs = parse_bin(p, level + 1)?;
                lhs = Expr::Binary(*op, Box::new(lhs), Box::new(rhs));
                continue 'outer;
            }
        }
        return Ok(lhs);
    }
}

fn parse_unary(p: &mut P) -> Result<Expr> {
    if p.eat("-") {
        return Ok(Expr::Unary(UnaryOp::Neg, Box::new(parse_unary(p)?)));
    }
    if p.eat("!") {
        return Ok(Expr::Unary(UnaryOp::Not, Box::new(parse_unary(p)?)));
    }
    if p.eat("~") {
        return Ok(Expr::Unary(UnaryOp::BitNot, Box::new(parse_unary(p)?)));
    }
    // Cast: '(' type ')' unary.
    if p.peek() == Some(&Tok::Punct("(")) {
        let save = p.pos;
        p.pos += 1;
        if is_type_start(p) {
            let ty = parse_type(p)?;
            if p.eat(")") {
                let inner = parse_unary(p)?;
                return Ok(Expr::Cast(ty, Box::new(inner)));
            }
        }
        p.pos = save;
    }
    parse_postfix(p)
}

fn parse_postfix(p: &mut P) -> Result<Expr> {
    let mut e = parse_primary(p)?;
    loop {
        if p.eat("[") {
            let idx = parse_expr(p)?;
            p.expect("]")?;
            e = Expr::Index(Box::new(e), Box::new(idx));
        } else if p.eat("->") {
            let f = p.expect_ident()?;
            e = Expr::Arrow(Box::new(e), f);
        } else {
            return Ok(e);
        }
    }
}

fn parse_primary(p: &mut P) -> Result<Expr> {
    match p.next()? {
        Tok::Int(v, is_long) => Ok(Expr::IntLit(
            v,
            if is_long { CType::long() } else { CType::int() },
        )),
        Tok::Ident(name) => {
            if p.peek() == Some(&Tok::Punct("(")) {
                p.pos += 1;
                let mut args = Vec::new();
                if !p.eat(")") {
                    loop {
                        args.push(parse_expr(p)?);
                        if !p.eat(",") {
                            break;
                        }
                    }
                    p.expect(")")?;
                }
                Ok(Expr::Call(name, args))
            } else {
                Ok(Expr::Var(name))
            }
        }
        Tok::Punct("(") => {
            let e = parse_expr(p)?;
            p.expect(")")?;
            Ok(e)
        }
        other => {
            p.pos -= 1;
            p.err(format!("unexpected token {other:?}"))
        }
    }
}

/// Parses a mini-C translation unit.
///
/// # Errors
///
/// Returns a [`CParseError`] with the offending line.
pub fn parse_program(src: &str) -> Result<Program> {
    let toks = lex(src)?;
    let mut p = P { toks, pos: 0 };
    let mut prog = Program::default();
    while p.peek().is_some() {
        if matches!(p.peek(), Some(Tok::Ident(w)) if w == "struct")
            && matches!(p.peek2(), Some(Tok::Ident(_)))
            && matches!(p.toks.get(p.pos + 2).map(|t| &t.0), Some(Tok::Punct("{")))
        {
            p.pos += 1; // 'struct'
            prog.structs.push(parse_struct(&mut p)?);
            continue;
        }
        if p.eat_kw("extern") {
            let ret = parse_type(&mut p)?;
            let name = p.expect_ident()?;
            p.expect("(")?;
            let mut params = Vec::new();
            if !p.eat(")") {
                if p.eat_kw("void") && p.eat(")") {
                    // no params
                } else {
                    loop {
                        let ty = parse_type(&mut p)?;
                        // optional parameter name
                        if matches!(p.peek(), Some(Tok::Ident(_))) {
                            let _ = p.expect_ident();
                        }
                        params.push(ty);
                        if !p.eat(",") {
                            break;
                        }
                    }
                    p.expect(")")?;
                }
            }
            p.expect(";")?;
            prog.externs.push(ExternDecl { name, ret, params });
            continue;
        }
        let ret = parse_type(&mut p)?;
        let name = p.expect_ident()?;
        p.expect("(")?;
        let params = parse_params(&mut p)?;
        let body = parse_block(&mut p)?;
        prog.functions.push(FuncDef {
            name,
            ret,
            params,
            body,
        });
    }
    Ok(prog)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_small_function() {
        let prog = parse_program(
            r#"
int add(int a, int b) {
    int s = a + b;
    return s;
}
"#,
        )
        .unwrap();
        assert_eq!(prog.functions.len(), 1);
        let f = &prog.functions[0];
        assert_eq!(f.name, "add");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.body.len(), 2);
    }

    #[test]
    fn parses_control_flow_and_compound_assign() {
        let prog = parse_program(
            r#"
int sum(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        s += i;
    }
    while (s > 100) s -= 100;
    if (s == 0) { return 1; } else return s;
}
"#,
        )
        .unwrap();
        let f = &prog.functions[0];
        assert!(matches!(f.body[1], Stmt::For(..)));
        assert!(matches!(f.body[2], Stmt::While(..)));
        assert!(matches!(f.body[3], Stmt::If(..)));
    }

    #[test]
    fn parses_structs_with_bitfields() {
        let prog = parse_program(
            r#"
struct flags {
    unsigned a : 3;
    unsigned b : 5;
    int count;
};
void set(struct flags *f) {
    f->a = 5;
    f->count = f->count + 1;
}
"#,
        )
        .unwrap();
        assert_eq!(prog.structs.len(), 1);
        assert_eq!(prog.structs[0].fields[0].bit_width, Some(3));
        let f = &prog.functions[0];
        assert!(matches!(&f.body[0], Stmt::Assign(LValue::Arrow(_, name), _) if name == "a"));
    }

    #[test]
    fn parses_arrays_pointers_casts_and_calls() {
        let prog = parse_program(
            r#"
extern int ext(int, long);
long kernel(int *a, int n) {
    long acc = 0;
    for (int i = 0; i < n; i++) {
        acc += (long)a[i] * 2L;
    }
    ext(n, acc);
    return acc;
}
"#,
        )
        .unwrap();
        assert_eq!(prog.externs.len(), 1);
        assert_eq!(prog.externs[0].params.len(), 2);
        let f = &prog.functions[0];
        assert_eq!(f.params[0].ty, CType::Ptr(Box::new(CType::int())));
    }

    #[test]
    fn precedence_is_c_like() {
        let prog = parse_program("int f(int a, int b) { return a + b * 2 == a << 1; }").unwrap();
        let Stmt::Return(Some(e)) = &prog.functions[0].body[0] else {
            panic!()
        };
        // == at top; + on the left of it; << on the right.
        let Expr::Binary(BinaryOp::Eq, l, r) = e else {
            panic!("{e:?}")
        };
        assert!(matches!(**l, Expr::Binary(BinaryOp::Add, ..)));
        assert!(matches!(**r, Expr::Binary(BinaryOp::Shl, ..)));
    }

    #[test]
    fn comments_are_skipped() {
        let prog = parse_program("// leading\nint f(void) { /* inline */ return 1; } // trailing")
            .unwrap();
        assert_eq!(prog.functions.len(), 1);
    }

    #[test]
    fn ternary_and_logical_ops() {
        let prog = parse_program("int f(int a, int b) { return a && b ? a : b || 1; }").unwrap();
        let Stmt::Return(Some(Expr::Ternary(c, _, f))) = &prog.functions[0].body[0] else {
            panic!()
        };
        assert!(matches!(**c, Expr::Binary(BinaryOp::LogicalAnd, ..)));
        assert!(matches!(**f, Expr::Binary(BinaryOp::LogicalOr, ..)));
    }

    #[test]
    fn reports_errors_with_lines() {
        let err = parse_program("int f() {\n  return $;\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }
}
