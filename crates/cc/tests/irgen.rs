//! End-to-end frontend tests: compile mini-C, execute the resulting IR
//! with the frost-core interpreter, and check both values and
//! UB-mapping details (nsw, inbounds, the §5.3 bit-field freeze).

use frost_cc::{compile_source, CodegenOptions};
use frost_core::{
    enumerate_outcomes, run_concrete, uninit_fill, Limits, Memory, Outcome, Semantics, Val,
};
use frost_ir::function_to_string;

fn run_i32(src: &str, fname: &str, args: &[i64]) -> Option<i64> {
    let m = compile_source(src, &CodegenOptions::default()).expect("compiles");
    frost_ir::verify::verify_module(&m, frost_ir::VerifyMode::Proposed).expect("verifies");
    let vals: Vec<Val> = args.iter().map(|&a| Val::int(32, a as u128)).collect();
    let (o, _) = run_concrete(
        &m,
        fname,
        &vals,
        &Memory::zeroed(0),
        Semantics::proposed(),
        Limits {
            max_steps: 2_000_000,
            ..Limits::default()
        },
    )
    .expect("runs");
    match o {
        Outcome::Ret { val: Some(v), .. } => v.as_signed().map(|s| s as i64),
        _ => None,
    }
}

#[test]
fn arithmetic_and_locals() {
    let src = r#"
int f(int a, int b) {
    int s = a * 2 + b / 3 - 1;
    return s;
}
"#;
    assert_eq!(run_i32(src, "f", &[10, 9]), Some(22));
}

#[test]
fn factorial_with_while() {
    let src = r#"
int fact(int n) {
    int r = 1;
    while (n > 1) {
        r = r * n;
        n = n - 1;
    }
    return r;
}
"#;
    assert_eq!(run_i32(src, "fact", &[5]), Some(120));
    assert_eq!(run_i32(src, "fact", &[0]), Some(1));
}

#[test]
fn for_loops_and_compound_assignment() {
    let src = r#"
int sum(int n) {
    int s = 0;
    for (int i = 1; i <= n; i++) {
        s += i;
    }
    return s;
}
"#;
    assert_eq!(run_i32(src, "sum", &[100]), Some(5050));
}

#[test]
fn nested_if_else_and_ternary() {
    let src = r#"
int clas(int x) {
    int k = x < 0 ? 0 - x : x;
    if (k > 100) { return 3; }
    else if (k > 10) { return 2; }
    else { return 1; }
}
"#;
    assert_eq!(run_i32(src, "clas", &[-500]), Some(3));
    assert_eq!(run_i32(src, "clas", &[50]), Some(2));
    assert_eq!(run_i32(src, "clas", &[-5]), Some(1));
}

#[test]
fn short_circuit_evaluation_guards_division() {
    // With non-short-circuit evaluation this would trap at n == 0.
    let src = r#"
int safe(int a, int n) {
    if (n != 0 && a / n > 2) { return 1; }
    return 0;
}
"#;
    assert_eq!(run_i32(src, "safe", &[9, 3]), Some(1));
    assert_eq!(run_i32(src, "safe", &[9, 0]), Some(0));
}

#[test]
fn signed_arithmetic_emits_nsw_and_unsigned_does_not() {
    let src = r#"
int s(int a, int b) { return a + b; }
unsigned u(unsigned a, unsigned b) { return a + b; }
"#;
    let m = compile_source(src, &CodegenOptions::default()).unwrap();
    let st = function_to_string(m.function("s").unwrap());
    let ut = function_to_string(m.function("u").unwrap());
    assert!(st.contains("add nsw i32"), "{st}");
    assert!(ut.contains("add i32"), "{ut}");
    assert!(!ut.contains("nsw"), "{ut}");
}

#[test]
fn swift_style_masked_add_shape() {
    // §2.1's example: (a & 0xffff) + (b & 0xffff) — the adds carry nsw.
    let src = "long add(long a, long b) { return (a & 0xffff) + (b & 0xffff); }";
    let m = compile_source(src, &CodegenOptions::default()).unwrap();
    let t = function_to_string(m.function("add").unwrap());
    assert!(t.contains("and i64"), "{t}");
    assert!(t.contains("add nsw i64"), "{t}");
}

#[test]
fn array_kernels_read_and_write_memory() {
    let src = r#"
void scale(int *a, int n, int k) {
    for (int i = 0; i < n; i++) {
        a[i] = a[i] * k;
    }
}
"#;
    let m = compile_source(src, &CodegenOptions::default()).unwrap();
    let mut mem = Memory::zeroed(16);
    // Initialize a[0..4] = 1,2,3,4.
    for i in 0..4u32 {
        let bits = frost_core::lower(&frost_ir::Ty::i32(), &Val::int(32, u128::from(i + 1)));
        assert!(mem.store(Memory::BASE + i * 4, &bits));
    }
    let (o, _) = run_concrete(
        &m,
        "scale",
        &[Val::ptr(Memory::BASE), Val::int(32, 4), Val::int(32, 3)],
        &mem,
        Semantics::proposed(),
        Limits::default(),
    )
    .unwrap();
    let Outcome::Ret { mem: final_mem, .. } = o else {
        panic!("UB")
    };
    let v0 = frost_core::raise(&frost_ir::Ty::i32(), &final_mem[0..32]);
    let v3 = frost_core::raise(&frost_ir::Ty::i32(), &final_mem[96..128]);
    assert_eq!(v0, Val::int(32, 3));
    assert_eq!(v3, Val::int(32, 12));
}

#[test]
fn gep_is_inbounds_by_default() {
    let src = "int get(int *a, int i) { return a[i]; }";
    let m = compile_source(src, &CodegenOptions::default()).unwrap();
    let t = function_to_string(m.function("get").unwrap());
    assert!(t.contains("getelementptr inbounds"), "{t}");
}

const BITFIELD_SRC: &str = r#"
struct flags {
    unsigned a : 3;
    unsigned b : 5;
    int c : 8;
};
void seta(struct flags *f, int v) {
    f->a = v;
}
int getb(struct flags *f) {
    return f->b;
}
int getc(struct flags *f) {
    return f->c;
}
"#;

#[test]
fn bitfield_store_freezes_the_loaded_unit() {
    let m = compile_source(BITFIELD_SRC, &CodegenOptions::default()).unwrap();
    let t = function_to_string(m.function("seta").unwrap());
    assert!(t.contains("freeze i32"), "§5.3 lowering: {t}");
    // The legacy lowering omits it.
    let m2 = compile_source(
        BITFIELD_SRC,
        &CodegenOptions {
            freeze_bitfields: false,
            ..CodegenOptions::default()
        },
    )
    .unwrap();
    let t2 = function_to_string(m2.function("seta").unwrap());
    assert!(!t2.contains("freeze"), "{t2}");
}

#[test]
fn bitfield_semantics_store_then_read_adjacent() {
    // Store to a, then read b from a *fully initialized* unit: exact.
    let m = compile_source(BITFIELD_SRC, &CodegenOptions::default()).unwrap();
    let mut mem = Memory::zeroed(4);
    let unit: u128 = (9 << 3) | 5; // b = 9, a = 5
    let bits = frost_core::lower(&frost_ir::Ty::i32(), &Val::int(32, unit));
    assert!(mem.store(Memory::BASE, &bits));
    let (o, _) = run_concrete(
        &m,
        "seta",
        &[Val::ptr(Memory::BASE), Val::int(32, 2)],
        &mem,
        Semantics::proposed(),
        Limits::default(),
    )
    .unwrap();
    let Outcome::Ret { mem: fm, .. } = o else {
        panic!("UB")
    };
    let v = frost_core::raise(&frost_ir::Ty::i32(), &fm[0..32]);
    assert_eq!(v, Val::int(32, (9 << 3) | 2), "a updated, b preserved");
}

#[test]
fn first_bitfield_store_to_uninitialized_unit_is_not_poison_with_freeze() {
    // §5.3's whole point: the first store to a bit-field must not
    // poison the unit. With freeze, the stored field reads back
    // exactly; without freeze the unit stays poison.
    let m = compile_source(BITFIELD_SRC, &CodegenOptions::default()).unwrap();
    let sem = Semantics::proposed();
    let mem = Memory::uninit(4, uninit_fill(&sem));
    let outcomes = enumerate_outcomes(
        &m,
        "seta",
        &[Val::ptr(Memory::BASE), Val::int(32, 5)],
        &mem,
        sem,
        Limits::default(),
    );
    // The freeze of a poison i32 fans out over 2^32 values: far beyond
    // the enumeration fanout limit — which is itself evidence the
    // freeze is there. Run concretely instead and check the field
    // reads back.
    assert!(
        matches!(outcomes, Err(frost_core::ExecError::FanoutTooLarge(_))),
        "freeze of a poison unit cannot be enumerated: {outcomes:?}"
    );
    let (o, _) = run_concrete(
        &m,
        "seta",
        &[Val::ptr(Memory::BASE), Val::int(32, 5)],
        &mem,
        sem,
        Limits::default(),
    )
    .unwrap();
    let Outcome::Ret { mem: fm, .. } = o else {
        panic!("UB")
    };
    let unit = frost_core::raise(&frost_ir::Ty::i32(), &fm[0..32]);
    let Val::Int { v, .. } = unit else {
        panic!("unit is poison: {unit}")
    };
    assert_eq!(v & 0b111, 5, "field a holds 5");

    // Legacy lowering (no freeze): the whole unit is poison after the
    // first store.
    let m2 = compile_source(
        BITFIELD_SRC,
        &CodegenOptions {
            freeze_bitfields: false,
            ..CodegenOptions::default()
        },
    )
    .unwrap();
    let (o, _) = run_concrete(
        &m2,
        "seta",
        &[Val::ptr(Memory::BASE), Val::int(32, 5)],
        &mem,
        sem,
        Limits::default(),
    )
    .unwrap();
    let Outcome::Ret { mem: fm, .. } = o else {
        panic!("UB")
    };
    let unit = frost_core::raise(&frost_ir::Ty::i32(), &fm[0..32]);
    assert_eq!(unit, Val::Poison, "without freeze the unit is poisoned");
}

#[test]
fn signed_bitfields_sign_extend_on_load() {
    let m = compile_source(BITFIELD_SRC, &CodegenOptions::default()).unwrap();
    let mut mem = Memory::zeroed(4);
    // c occupies bits 8..16; store 0xFF there (-1 as signed 8-bit field).
    let unit: u128 = 0xff << 8;
    let bits = frost_core::lower(&frost_ir::Ty::i32(), &Val::int(32, unit));
    assert!(mem.store(Memory::BASE, &bits));
    let (o, _) = run_concrete(
        &m,
        "getc",
        &[Val::ptr(Memory::BASE)],
        &mem,
        Semantics::proposed(),
        Limits::default(),
    )
    .unwrap();
    assert_eq!(o.ret_val().and_then(Val::as_signed), Some(-1));
}

#[test]
fn calls_between_functions_and_externs() {
    let src = r#"
extern void trace(int);
int helper(int x) { return x * x; }
int f(int x) {
    trace(x);
    return helper(x) + helper(x + 1);
}
"#;
    let m = compile_source(src, &CodegenOptions::default()).unwrap();
    let (o, _) = run_concrete(
        &m,
        "f",
        &[Val::int(32, 3)],
        &Memory::zeroed(0),
        Semantics::proposed(),
        Limits::default(),
    )
    .unwrap();
    assert_eq!(o.ret_val().and_then(Val::as_int), Some(25));
    let Outcome::Ret { trace, .. } = &o else {
        panic!()
    };
    assert_eq!(trace.len(), 1);
    assert_eq!(trace[0].callee, "trace");
}

#[test]
fn long_and_int_mix_with_conversions() {
    let src = r#"
long widen(int a, long b) {
    return a + b;
}
"#;
    let m = compile_source(src, &CodegenOptions::default()).unwrap();
    let t = function_to_string(m.function("widen").unwrap());
    assert!(t.contains("sext i32"), "int operand widened: {t}");
    let (o, _) = run_concrete(
        &m,
        "widen",
        &[Val::int(32, 0xffff_ffff), Val::int(64, 10)], // -1 + 10
        &Memory::zeroed(0),
        Semantics::proposed(),
        Limits::default(),
    )
    .unwrap();
    assert_eq!(o.ret_val().and_then(Val::as_signed), Some(9));
}

#[test]
fn signed_overflow_is_deferred_ub() {
    let src = "int inc(int x) { return x + 1; }";
    let m = compile_source(src, &CodegenOptions::default()).unwrap();
    let (o, _) = run_concrete(
        &m,
        "inc",
        &[Val::int(32, 0x7fff_ffff)],
        &Memory::zeroed(0),
        Semantics::proposed(),
        Limits::default(),
    )
    .unwrap();
    assert_eq!(o.ret_val(), Some(&Val::Poison), "INT_MAX + 1 is poison");
}

#[test]
fn uninitialized_locals_are_poison_until_assigned() {
    // Figure 2's shape: x is assigned on one path only; reading it on
    // the other would be poison, but cond2 == cond protects us.
    let src = r#"
extern void g(int);
void f(int cond) {
    int x;
    if (cond != 0) x = 42;
    if (cond != 0) g(x);
}
"#;
    let m = compile_source(src, &CodegenOptions::default()).unwrap();
    // cond = 1: g(42) is called; no UB.
    let set = enumerate_outcomes(
        &m,
        "f",
        &[Val::int(32, 1)],
        &Memory::zeroed(0),
        Semantics::proposed(),
        Limits::default(),
    )
    .unwrap();
    assert!(!set.may_ub());
    // cond = 0: x stays poison but is never passed to g.
    let set = enumerate_outcomes(
        &m,
        "f",
        &[Val::int(32, 0)],
        &Memory::zeroed(0),
        Semantics::proposed(),
        Limits::default(),
    )
    .unwrap();
    assert!(!set.may_ub());
}
