//! # frost-telemetry
//!
//! The observability layer of the frost workspace: one zero-dependency
//! crate through which every component reports cost. It has three
//! pieces, each usable alone:
//!
//! * **[`trace`]** — a structured-event tracing facade: RAII spans
//!   named `crate.component.action` with start/stop timestamps, thread
//!   id, and key=value fields, collected into a bounded ring buffer.
//!   Off by default; the disabled fast path is a single relaxed atomic
//!   load, so instrumentation stays in hot code. Enabled via the
//!   `FROST_TRACE` env var ([`init_from_env`]) or programmatically
//!   ([`enable`]).
//! * **[`counters`]** — a process-wide registry of named atomic
//!   [`Counter`]s, [`Gauge`]s, and latency-bucket [`Histogram`]s.
//!   Always on (a relaxed add per update); [`snapshot`] and
//!   [`Snapshot::delta`] meter a region of work.
//! * **[`sink`]** — JSONL and human-readable renderers for drained
//!   events, an env-var-directed [`flush_env`] (`FROST_TRACE_FILE`),
//!   and [`validate_jsonl`], which checks a `telemetry.jsonl` artifact
//!   against the schema and aggregates per-span totals.
//!
//! The full telemetry contract — event schema, naming conventions,
//! env vars, overhead budget — is documented in `docs/OBSERVABILITY.md`
//! at the workspace root.
//!
//! ## Example
//!
//! ```
//! use frost_telemetry as telemetry;
//!
//! // Counters are always on.
//! let checked = telemetry::counter("docs.demo.checked");
//! checked.add(10);
//!
//! // Tracing is opt-in.
//! telemetry::enable(telemetry::TraceFormat::Jsonl);
//! telemetry::drain(); // discard anything recorded earlier
//! {
//!     let _span = telemetry::span("docs.demo.step").field("items", 10u64);
//!     // ... the work being measured ...
//! }
//! let events = telemetry::drain();
//! telemetry::disable();
//!
//! // Render and validate the JSONL artifact.
//! let jsonl = telemetry::render_jsonl(&events);
//! let stats = telemetry::validate_jsonl(&jsonl).unwrap();
//! assert_eq!(stats.stops, 1);
//! assert_eq!(stats.unmatched, 0);
//! assert!(checked.get() >= 10);
//! ```

#![warn(missing_docs)]

pub mod counters;
pub mod sink;
pub mod trace;

pub use counters::{
    counter, gauge, histogram, reset_metrics, snapshot, Counter, Gauge, Histogram,
    HistogramSummary, Snapshot,
};
pub use sink::{
    flush_env, render_human, render_jsonl, validate_jsonl, write_events, JsonlStats, SpanStats,
};
pub use trace::{
    disable, drain, dropped_events, enable, enabled, init_from_env, now_ns, point, set_capacity,
    span, thread_id, FieldValue, Point, Span, TraceEvent, TraceEventKind, TraceFormat,
};
