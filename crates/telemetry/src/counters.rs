//! The process-wide metric registry: named atomic [`Counter`]s,
//! [`Gauge`]s, and latency-bucket [`Histogram`]s.
//!
//! Metrics are *always on*: recording is a relaxed atomic add, cheap
//! enough to leave enabled in production paths (see the overhead budget
//! in `docs/OBSERVABILITY.md`). Handles are interned for the life of
//! the process — resolve a name once with [`counter`]/[`gauge`]/
//! [`histogram`] and keep the `&'static` reference on hot paths; the
//! lookup itself takes a registry lock and must not sit inside a hot
//! loop.
//!
//! Naming convention: `frost.<crate>.<component>.<metric>`, e.g.
//! `frost.fuzz.campaign.checked`. See `docs/OBSERVABILITY.md` for the
//! registered names.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Counter {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins (or running-max) atomic gauge.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge starting at zero.
    pub const fn new() -> Gauge {
        Gauge {
            value: AtomicU64::new(0),
        }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (peak tracking).
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Number of power-of-two buckets in a [`Histogram`].
pub const HISTOGRAM_BUCKETS: usize = 40;

/// A histogram-lite: power-of-two buckets plus count and sum.
///
/// Bucket `i` holds samples `v` with `2^(i-1) <= v < 2^i` (bucket 0
/// holds `v == 0`); the last bucket absorbs everything larger. Designed
/// for nanosecond latencies: 40 buckets cover up to ~9 minutes.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Histogram {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [ZERO; HISTOGRAM_BUCKETS],
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        let idx = (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean sample, or 0 with no samples.
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() as f64 / c as f64
        }
    }

    /// A point-in-time copy of the whole distribution.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count(),
            sum: self.sum(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// A frozen copy of one [`Histogram`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Per-bucket counts (see [`Histogram`] for the bucket layout).
    pub buckets: Vec<u64>,
}

impl HistogramSummary {
    /// Mean sample, or 0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An approximate quantile (`q` in 0..=1): the upper bound of the
    /// bucket containing the `q`-th sample.
    pub fn approx_quantile(&self, q: f64) -> u64 {
        let target = (self.count as f64 * q).ceil() as u64;
        let mut seen = 0;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target && seen > 0 {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        0
    }
}

struct Registry {
    counters: Mutex<BTreeMap<String, &'static Counter>>,
    gauges: Mutex<BTreeMap<String, &'static Gauge>>,
    histograms: Mutex<BTreeMap<String, &'static Histogram>>,
}

fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        counters: Mutex::new(BTreeMap::new()),
        gauges: Mutex::new(BTreeMap::new()),
        histograms: Mutex::new(BTreeMap::new()),
    })
}

fn intern<T: Default>(map: &Mutex<BTreeMap<String, &'static T>>, name: &str) -> &'static T {
    let mut m = map.lock().expect("metric registry poisoned");
    if let Some(v) = m.get(name) {
        return v;
    }
    let leaked: &'static T = Box::leak(Box::default());
    m.insert(name.to_string(), leaked);
    leaked
}

/// Resolves (registering on first use) the counter named `name`.
///
/// The returned reference lives for the whole process; resolve once and
/// reuse it on hot paths.
///
/// ```
/// let c = frost_telemetry::counter("doc.example.widgets");
/// c.add(2);
/// c.incr();
/// assert!(c.get() >= 3);
/// ```
pub fn counter(name: &str) -> &'static Counter {
    intern(&registry().counters, name)
}

/// Resolves (registering on first use) the gauge named `name`.
pub fn gauge(name: &str) -> &'static Gauge {
    intern(&registry().gauges, name)
}

/// Resolves (registering on first use) the histogram named `name`.
pub fn histogram(name: &str) -> &'static Histogram {
    intern(&registry().histograms, name)
}

/// A point-in-time copy of every registered metric.
///
/// Snapshots subtract ([`Snapshot::delta`]) so callers can meter one
/// region of work:
///
/// ```
/// use frost_telemetry::{counter, snapshot};
/// let before = snapshot();
/// counter("doc.example.delta").add(5);
/// let spent = snapshot().delta(&before);
/// assert_eq!(spent.counter("doc.example.delta"), 5);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl Snapshot {
    /// The counter's value in this snapshot (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Counters whose value changed since `earlier`, with gauges and
    /// histogram count/sum taken as differences too (gauge deltas
    /// saturate at zero; gauges are last-write-wins, so a delta only
    /// means "the gauge rose").
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let mut out = Snapshot::default();
        for (k, &v) in &self.counters {
            let d = v.saturating_sub(earlier.counter(k));
            if d > 0 {
                out.counters.insert(k.clone(), d);
            }
        }
        for (k, &v) in &self.gauges {
            let d = v.saturating_sub(earlier.gauges.get(k).copied().unwrap_or(0));
            if d > 0 {
                out.gauges.insert(k.clone(), d);
            }
        }
        for (k, h) in &self.histograms {
            let e = earlier.histograms.get(k);
            let count = h.count - e.map_or(0, |e| e.count);
            if count == 0 {
                continue;
            }
            let sum = h.sum - e.map_or(0, |e| e.sum);
            let buckets = h
                .buckets
                .iter()
                .enumerate()
                .map(|(i, &b)| b - e.and_then(|e| e.buckets.get(i)).copied().unwrap_or(0))
                .collect();
            out.histograms.insert(
                k.clone(),
                HistogramSummary {
                    count,
                    sum,
                    buckets,
                },
            );
        }
        out
    }
}

/// Copies every registered metric into a [`Snapshot`].
pub fn snapshot() -> Snapshot {
    let r = registry();
    Snapshot {
        counters: r
            .counters
            .lock()
            .expect("metric registry poisoned")
            .iter()
            .map(|(k, c)| (k.clone(), c.get()))
            .collect(),
        gauges: r
            .gauges
            .lock()
            .expect("metric registry poisoned")
            .iter()
            .map(|(k, g)| (k.clone(), g.get()))
            .collect(),
        histograms: r
            .histograms
            .lock()
            .expect("metric registry poisoned")
            .iter()
            .map(|(k, h)| (k.clone(), h.summary()))
            .collect(),
    }
}

/// Zeroes every registered metric. Intended for tests; racing writers
/// keep their handles and simply start counting from zero again.
pub fn reset_metrics() {
    let r = registry();
    for c in r
        .counters
        .lock()
        .expect("metric registry poisoned")
        .values()
    {
        c.reset();
    }
    for g in r.gauges.lock().expect("metric registry poisoned").values() {
        g.reset();
    }
    for h in r
        .histograms
        .lock()
        .expect("metric registry poisoned")
        .values()
    {
        h.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_intern_and_accumulate() {
        let a = counter("test.counters.a");
        let b = counter("test.counters.a");
        assert!(std::ptr::eq(a, b), "same name must intern to same handle");
        let before = a.get();
        a.add(3);
        b.incr();
        assert_eq!(a.get(), before + 4);
    }

    #[test]
    fn gauge_tracks_peak() {
        let g = gauge("test.gauge.peak");
        g.set(5);
        g.record_max(3);
        assert_eq!(g.get(), 5);
        g.record_max(9);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = histogram("test.hist.latency");
        for v in [0u64, 1, 1, 2, 1000, 1_000_000] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 6);
        assert_eq!(s.sum, 1_001_004);
        assert_eq!(s.buckets[0], 1, "zero lands in bucket 0");
        assert_eq!(s.buckets[1], 2, "ones land in bucket 1");
        assert!(s.approx_quantile(0.5) <= 1 << 2);
        assert!(s.approx_quantile(1.0) >= 1_000_000);
    }

    #[test]
    fn snapshot_delta_isolates_a_region() {
        let c = counter("test.snapshot.region");
        let before = snapshot();
        c.add(7);
        histogram("test.snapshot.hist").record(42);
        let d = snapshot().delta(&before);
        assert_eq!(d.counter("test.snapshot.region"), 7);
        assert_eq!(d.histograms["test.snapshot.hist"].count, 1);
        assert!(!d.counters.contains_key("test.snapshot.never-touched"));
    }
}
