//! The structured-event tracing facade: RAII [`Span`]s and one-shot
//! [`Point`] events, recorded into a bounded in-process ring buffer.
//!
//! Tracing is **off by default** and the disabled fast path is one
//! relaxed atomic load plus a branch — cheap enough that every hot
//! layer of frost calls [`span`] unconditionally. Turn it on with
//! [`enable`] (programmatic) or [`init_from_env`] (the `FROST_TRACE`
//! env var), then [`drain`] the collected events and hand them to a
//! sink in [`crate::sink`].
//!
//! Span names follow the `crate.component.action` convention
//! (`opt.pass.run`, `fuzz.campaign.shard`, …); key=value fields ride on
//! the *stop* event of a span. Every span records a `start` event when
//! created and a `stop` event (with `dur_ns`) when dropped, sharing a
//! process-unique span id. Spans are `!Send`: they start and stop on
//! one thread, so per-thread events nest like a stack.
//!
//! ```
//! use frost_telemetry::{drain, enable, span, TraceEventKind, TraceFormat};
//!
//! enable(TraceFormat::Jsonl);
//! drain(); // discard whatever earlier code recorded
//! {
//!     let _sp = span("docs.example.work").field("items", 3u64);
//! } // dropped: stop event recorded
//! let events = drain();
//! frost_telemetry::disable();
//! assert_eq!(events.len(), 2);
//! assert_eq!(events[0].kind, TraceEventKind::Start);
//! assert_eq!(events[1].kind, TraceEventKind::Stop);
//! assert_eq!(events[1].fields[0].0, "items");
//! ```

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// How drained events should be rendered by the env-var sink.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceFormat {
    /// One human-readable line per event.
    Human,
    /// One JSON object per line (the `telemetry.jsonl` contract).
    Jsonl,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static FORMAT: AtomicU8 = AtomicU8::new(0); // 0 = Human, 1 = Jsonl
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

/// Returns `true` if tracing is on. This is the whole disabled fast
/// path: a relaxed load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns tracing on, recording events into the ring buffer.
pub fn enable(format: TraceFormat) {
    FORMAT.store(
        matches!(format, TraceFormat::Jsonl) as u8,
        Ordering::Relaxed,
    );
    ENABLED.store(true, Ordering::Relaxed);
}

/// Turns tracing off. Already-recorded events stay in the buffer until
/// [`drain`]ed; spans alive across the switch still record their stop
/// event so starts stay matched.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// The format selected by the last [`enable`]/[`init_from_env`].
pub fn format() -> TraceFormat {
    if FORMAT.load(Ordering::Relaxed) == 1 {
        TraceFormat::Jsonl
    } else {
        TraceFormat::Human
    }
}

/// Configures tracing from the `FROST_TRACE` environment variable and
/// returns whether tracing ended up enabled.
///
/// * unset, empty, or `0` — tracing off;
/// * `json` or `jsonl` — on, JSONL rendering;
/// * anything else (`1`, `human`, …) — on, human-readable rendering.
pub fn init_from_env() -> bool {
    match std::env::var("FROST_TRACE").ok().as_deref() {
        None | Some("") | Some("0") => {
            disable();
            false
        }
        Some("json") | Some("jsonl") => {
            enable(TraceFormat::Jsonl);
            true
        }
        Some(_) => {
            enable(TraceFormat::Human);
            true
        }
    }
}

/// A stable small integer identifying the calling thread in trace
/// events (assigned on first use, starting at 1).
pub fn thread_id() -> u64 {
    THREAD_ID.with(|t| *t)
}

/// Nanoseconds since the process's trace epoch (first use of the
/// telemetry crate's clock). All event timestamps share this epoch.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// A field value attached to a trace event.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl std::fmt::Display for FieldValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! impl_from_field {
    ($($t:ty => $variant:ident via $conv:expr),* $(,)?) => {
        $(impl From<$t> for FieldValue {
            fn from(v: $t) -> FieldValue {
                #[allow(clippy::redundant_closure_call)]
                FieldValue::$variant(($conv)(v))
            }
        })*
    };
}

impl_from_field! {
    u64 => U64 via |v| v,
    u32 => U64 via u64::from,
    usize => U64 via |v| v as u64,
    i64 => I64 via |v| v,
    i32 => I64 via i64::from,
    f64 => F64 via |v| v,
    bool => Bool via |v| v,
    String => Str via |v| v,
    &str => Str via str::to_string,
}

/// What a [`TraceEvent`] marks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceEventKind {
    /// A span began.
    Start,
    /// A span ended (carries `dur_ns` and the span's fields).
    Stop,
    /// A one-shot event with no duration.
    Point,
}

impl TraceEventKind {
    /// The event kind as it appears in the JSONL `ev` key.
    pub fn as_str(self) -> &'static str {
        match self {
            TraceEventKind::Start => "start",
            TraceEventKind::Stop => "stop",
            TraceEventKind::Point => "point",
        }
    }
}

/// One structured trace event.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Start / stop / point.
    pub kind: TraceEventKind,
    /// Process-unique span id shared by a start/stop pair; 0 for
    /// points.
    pub span: u64,
    /// Span name (`crate.component.action`).
    pub name: &'static str,
    /// Recording thread (see [`thread_id`]).
    pub tid: u64,
    /// Nanoseconds since the trace epoch.
    pub ts_ns: u64,
    /// Span duration; present on stop events only.
    pub dur_ns: Option<u64>,
    /// Key=value payload (stop and point events).
    pub fields: Vec<(&'static str, FieldValue)>,
}

struct Collector {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

fn collector() -> &'static Mutex<Collector> {
    static COLLECTOR: OnceLock<Mutex<Collector>> = OnceLock::new();
    COLLECTOR.get_or_init(|| {
        Mutex::new(Collector {
            buf: VecDeque::new(),
            capacity: 1 << 16,
            dropped: 0,
        })
    })
}

fn record(ev: TraceEvent) {
    let mut c = collector().lock().expect("trace collector poisoned");
    if c.buf.len() >= c.capacity {
        c.buf.pop_front();
        c.dropped += 1;
    }
    c.buf.push_back(ev);
}

/// Removes and returns every buffered event, oldest first.
pub fn drain() -> Vec<TraceEvent> {
    let mut c = collector().lock().expect("trace collector poisoned");
    c.buf.drain(..).collect()
}

/// Events evicted (oldest-first) because the ring buffer was full.
pub fn dropped_events() -> u64 {
    collector()
        .lock()
        .expect("trace collector poisoned")
        .dropped
}

/// Resizes the ring buffer (default 65536 events). Existing overflow is
/// evicted immediately.
pub fn set_capacity(capacity: usize) {
    let mut c = collector().lock().expect("trace collector poisoned");
    c.capacity = capacity.max(1);
    while c.buf.len() > c.capacity {
        c.buf.pop_front();
        c.dropped += 1;
    }
}

/// An RAII span: records a start event when created (if tracing is on)
/// and a stop event — carrying `dur_ns` and the accumulated fields —
/// when dropped.
///
/// Created with [`span`]. A span made while tracing is disabled is
/// inert: every method is a no-op and nothing records on drop.
#[must_use = "a span measures the scope it lives in; dropping it immediately records nothing useful"]
pub struct Span {
    id: u64,
    name: &'static str,
    start_ns: u64,
    active: bool,
    fields: Vec<(&'static str, FieldValue)>,
    // Spans must start and stop on the same thread for per-thread
    // nesting to hold.
    _not_send: PhantomData<*const ()>,
}

/// Opens a span named `name`. The disabled fast path is one atomic
/// load; when tracing is on this records the start event.
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span {
            id: 0,
            name,
            start_ns: 0,
            active: false,
            fields: Vec::new(),
            _not_send: PhantomData,
        };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let ts = now_ns();
    record(TraceEvent {
        kind: TraceEventKind::Start,
        span: id,
        name,
        tid: thread_id(),
        ts_ns: ts,
        dur_ns: None,
        fields: Vec::new(),
    });
    Span {
        id,
        name,
        start_ns: ts,
        active: true,
        fields: Vec::new(),
        _not_send: PhantomData,
    }
}

impl Span {
    /// Attaches a field (builder style); it is emitted on the stop
    /// event.
    pub fn field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Span {
        self.set(key, value);
        self
    }

    /// Attaches a field through a reference.
    pub fn set(&mut self, key: &'static str, value: impl Into<FieldValue>) {
        if self.active {
            self.fields.push((key, value.into()));
        }
    }

    /// `true` if this span is recording (tracing was on at creation).
    pub fn active(&self) -> bool {
        self.active
    }

    /// Nanoseconds since the span started (0 for inert spans).
    pub fn elapsed_ns(&self) -> u64 {
        if self.active {
            now_ns() - self.start_ns
        } else {
            0
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let ts = now_ns();
        record(TraceEvent {
            kind: TraceEventKind::Stop,
            span: self.id,
            name: self.name,
            tid: thread_id(),
            ts_ns: ts,
            dur_ns: Some(ts - self.start_ns),
            fields: std::mem::take(&mut self.fields),
        });
    }
}

/// A builder for a one-shot [`TraceEventKind::Point`] event, recorded
/// on drop. Created with [`point`].
#[must_use = "a point records when dropped; bind it or drop it explicitly after setting fields"]
pub struct Point {
    name: &'static str,
    active: bool,
    fields: Vec<(&'static str, FieldValue)>,
    _not_send: PhantomData<*const ()>,
}

/// Opens a point-event builder named `name` (inert when tracing is
/// off).
pub fn point(name: &'static str) -> Point {
    Point {
        name,
        active: enabled(),
        fields: Vec::new(),
        _not_send: PhantomData,
    }
}

impl Point {
    /// Attaches a field (builder style).
    pub fn field(mut self, key: &'static str, value: impl Into<FieldValue>) -> Point {
        if self.active {
            self.fields.push((key, value.into()));
        }
        self
    }

    /// Records the event now (equivalent to dropping the builder, but
    /// reads better at the end of a builder chain).
    pub fn emit(self) {}
}

impl Drop for Point {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        record(TraceEvent {
            kind: TraceEventKind::Point,
            span: 0,
            name: self.name,
            tid: thread_id(),
            ts_ns: now_ns(),
            dur_ns: None,
            fields: std::mem::take(&mut self.fields),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    // Trace tests share the global collector; serialize them.
    static GUARD: StdMutex<()> = StdMutex::new(());

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = GUARD.lock().unwrap();
        disable();
        drain();
        {
            let _sp = span("test.trace.disabled").field("k", 1u64);
            let _pt = point("test.trace.disabled_point").field("k", 2u64);
        }
        assert!(drain().is_empty());
    }

    #[test]
    fn spans_pair_and_nest() {
        let _g = GUARD.lock().unwrap();
        disable();
        drain();
        enable(TraceFormat::Jsonl);
        {
            let _outer = span("test.trace.outer");
            {
                let _inner = span("test.trace.inner").field("n", 7u64);
            }
        }
        let events = drain();
        disable();
        assert_eq!(events.len(), 4);
        // outer start, inner start, inner stop, outer stop.
        assert_eq!(events[0].name, "test.trace.outer");
        assert_eq!(events[1].name, "test.trace.inner");
        assert_eq!(events[2].name, "test.trace.inner");
        assert_eq!(events[3].name, "test.trace.outer");
        assert_eq!(events[1].span, events[2].span);
        assert_eq!(events[0].span, events[3].span);
        assert!(events[3].dur_ns.unwrap() >= events[2].dur_ns.unwrap());
        assert_eq!(events[2].fields, vec![("n", FieldValue::U64(7))]);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let _g = GUARD.lock().unwrap();
        disable();
        drain();
        set_capacity(4);
        enable(TraceFormat::Human);
        for _ in 0..4 {
            let _sp = span("test.trace.evict");
        }
        let events = drain();
        disable();
        set_capacity(1 << 16);
        assert_eq!(events.len(), 4, "capacity bounds the buffer");
        assert!(dropped_events() >= 4, "evictions are counted");
    }
}
