//! Sinks and the JSONL wire format: render drained [`TraceEvent`]s as
//! JSONL or human-readable text, write them where `FROST_TRACE_FILE`
//! points, and validate/aggregate a `telemetry.jsonl` artifact.
//!
//! ## JSONL schema (the telemetry contract)
//!
//! One JSON object per line. Reserved keys, always present:
//!
//! * `ev` — `"start"`, `"stop"`, or `"point"`;
//! * `span` — process-unique span id (0 for points);
//! * `name` — span name (`crate.component.action`);
//! * `tid` — small integer thread id;
//! * `ts_ns` — nanoseconds since the process trace epoch.
//!
//! Stop events additionally carry `dur_ns`. User fields are flattened
//! into the same object and must avoid the reserved keys. See
//! `docs/OBSERVABILITY.md` for the full contract.
//!
//! Benchmark records are the one non-event shape the validator
//! accepts: a line carrying `"kind":"bench"` plus a string
//! `experiment` key (e.g. the `BENCH_sweep.json` artifact `repro
//! --experiment sweep --bench-json` writes); its remaining fields are
//! experiment-defined and pass through unvalidated.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{self, Write};

use crate::trace::{drain, enabled, FieldValue, TraceEvent, TraceFormat};

fn escape_json(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn field_json(out: &mut String, v: &FieldValue) {
    match v {
        FieldValue::U64(n) => {
            let _ = write!(out, "{n}");
        }
        FieldValue::I64(n) => {
            let _ = write!(out, "{n}");
        }
        FieldValue::F64(n) if n.is_finite() => {
            let _ = write!(out, "{n}");
        }
        FieldValue::F64(_) => out.push_str("null"),
        FieldValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        FieldValue::Str(s) => {
            out.push('"');
            escape_json(out, s);
            out.push('"');
        }
    }
}

/// Renders events as JSONL, one event per line.
pub fn render_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for ev in events {
        let _ = write!(
            out,
            "{{\"ev\":\"{}\",\"span\":{},\"name\":\"",
            ev.kind.as_str(),
            ev.span
        );
        escape_json(&mut out, ev.name);
        let _ = write!(out, "\",\"tid\":{},\"ts_ns\":{}", ev.tid, ev.ts_ns);
        if let Some(d) = ev.dur_ns {
            let _ = write!(out, ",\"dur_ns\":{d}");
        }
        for (k, v) in &ev.fields {
            out.push_str(",\"");
            escape_json(&mut out, k);
            out.push_str("\":");
            field_json(&mut out, v);
        }
        out.push_str("}\n");
    }
    out
}

/// Renders events as human-readable lines (`ts tid kind name dur
/// fields…`).
pub fn render_human(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for ev in events {
        let _ = write!(
            out,
            "[{:>12.6}s] t{:<3} {:<5} {:<28}",
            ev.ts_ns as f64 / 1e9,
            ev.tid,
            ev.kind.as_str(),
            ev.name
        );
        if let Some(d) = ev.dur_ns {
            let _ = write!(out, " {:>10.3}us", d as f64 / 1e3);
        }
        for (k, v) in &ev.fields {
            let _ = write!(out, " {k}={v}");
        }
        out.push('\n');
    }
    out
}

/// Writes events to `w` in the given format.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_events(
    w: &mut impl Write,
    events: &[TraceEvent],
    format: TraceFormat,
) -> io::Result<()> {
    let text = match format {
        TraceFormat::Jsonl => render_jsonl(events),
        TraceFormat::Human => render_human(events),
    };
    w.write_all(text.as_bytes())
}

/// Drains the collector and writes everything to the env-selected
/// destination: the path in `FROST_TRACE_FILE` if set, else stderr.
/// The format is whatever [`crate::trace::enable`]/
/// [`crate::trace::init_from_env`] selected. Returns the number of
/// events written (0 without touching anything when tracing was never
/// enabled and the buffer is empty).
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn flush_env() -> io::Result<usize> {
    let events = drain();
    if events.is_empty() && !enabled() {
        return Ok(0);
    }
    let format = crate::trace::format();
    match std::env::var("FROST_TRACE_FILE")
        .ok()
        .filter(|p| !p.is_empty())
    {
        Some(path) => {
            let mut f = std::fs::File::create(path)?;
            write_events(&mut f, &events, format)?;
        }
        None => {
            let stderr = io::stderr();
            write_events(&mut stderr.lock(), &events, format)?;
        }
    }
    Ok(events.len())
}

/// Per-key aggregate over the stop events of a trace (the raw material
/// of a profile table).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// Spans completed.
    pub count: u64,
    /// Summed `dur_ns`.
    pub total_ns: u64,
    /// Largest single `dur_ns`.
    pub max_ns: u64,
}

/// The result of validating a `telemetry.jsonl` artifact.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct JsonlStats {
    /// Non-empty lines parsed.
    pub lines: usize,
    /// Start events.
    pub starts: usize,
    /// Stop events.
    pub stops: usize,
    /// Point events.
    pub points: usize,
    /// Benchmark records (`"kind":"bench"` lines).
    pub bench: usize,
    /// Stop events whose span id had no start, plus starts never
    /// stopped.
    pub unmatched: usize,
    /// Stop-event aggregates keyed by span name — refined to
    /// `name[pass]` when the event carries a `pass` field, so per-pass
    /// profiles fall out of the generic schema.
    pub by_key: BTreeMap<String, SpanStats>,
}

/// One parsed scalar from a JSONL line.
#[derive(Clone, Debug, PartialEq)]
enum JsonValue {
    Str(String),
    Num(f64),
    Bool(bool),
    Null,
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the raw bytes through.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or("truncated UTF-8 sequence")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8")?);
                    self.pos = start + len;
                }
            }
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => {
                let start = self.pos;
                self.pos += 1;
                while self.bytes.get(self.pos).is_some_and(|b| {
                    b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-')
                }) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
                text.parse::<f64>()
                    .map(JsonValue::Num)
                    .map_err(|_| format!("bad number '{text}'"))
            }
            other => Err(format!("unexpected value start {other:?}")),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("expected '{lit}' at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<BTreeMap<String, JsonValue>, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(map);
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            map.insert(key, self.value()?);
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    break;
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
        Ok(map)
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xf0 => 4,
        b if b >= 0xe0 => 3,
        _ => 2,
    }
}

/// Parses and validates a `telemetry.jsonl` artifact against the event
/// schema: every non-empty line must be a flat JSON object carrying the
/// reserved keys (`ev`/`span`/`name`/`tid`/`ts_ns`, `dur_ns` on stops),
/// and every stop must pair with a start. Lines carrying
/// `"kind":"bench"` are benchmark records instead: they need only a
/// string `experiment` key and are tallied in [`JsonlStats::bench`].
/// Returns aggregate [`JsonlStats`] on success.
///
/// ```
/// use frost_telemetry::validate_jsonl;
/// let text = "{\"ev\":\"start\",\"span\":1,\"name\":\"a.b.c\",\"tid\":1,\"ts_ns\":5}\n\
///             {\"ev\":\"stop\",\"span\":1,\"name\":\"a.b.c\",\"tid\":1,\"ts_ns\":9,\"dur_ns\":4}\n";
/// let stats = validate_jsonl(text).unwrap();
/// assert_eq!(stats.stops, 1);
/// assert_eq!(stats.unmatched, 0);
/// assert_eq!(stats.by_key["a.b.c"].total_ns, 4);
/// ```
///
/// # Errors
///
/// Returns a message naming the first offending line and why it is
/// malformed.
pub fn validate_jsonl(text: &str) -> Result<JsonlStats, String> {
    let mut stats = JsonlStats::default();
    let mut open_spans: BTreeMap<u64, String> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut p = Parser::new(line);
        let obj = p
            .object()
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("line {}: trailing garbage", lineno + 1));
        }
        let get_str = |k: &str| -> Result<String, String> {
            match obj.get(k) {
                Some(JsonValue::Str(s)) => Ok(s.clone()),
                _ => Err(format!("line {}: missing string key '{k}'", lineno + 1)),
            }
        };
        let get_num = |k: &str| -> Result<f64, String> {
            match obj.get(k) {
                Some(JsonValue::Num(n)) => Ok(*n),
                _ => Err(format!("line {}: missing numeric key '{k}'", lineno + 1)),
            }
        };
        if let Some(JsonValue::Str(kind)) = obj.get("kind") {
            if kind != "bench" {
                return Err(format!("line {}: unknown kind '{kind}'", lineno + 1));
            }
            get_str("experiment")?;
            stats.lines += 1;
            stats.bench += 1;
            continue;
        }
        let ev = get_str("ev")?;
        let name = get_str("name")?;
        let span = get_num("span")? as u64;
        get_num("tid")?;
        get_num("ts_ns")?;
        stats.lines += 1;
        match ev.as_str() {
            "start" => {
                stats.starts += 1;
                open_spans.insert(span, name);
            }
            "stop" => {
                stats.stops += 1;
                let dur = get_num("dur_ns")? as u64;
                if open_spans.remove(&span).is_none() {
                    stats.unmatched += 1;
                }
                let key = match obj.get("pass") {
                    Some(JsonValue::Str(p)) => format!("{name}[{p}]"),
                    _ => name,
                };
                let agg = stats.by_key.entry(key).or_default();
                agg.count += 1;
                agg.total_ns += dur;
                agg.max_ns = agg.max_ns.max(dur);
            }
            "point" => stats.points += 1,
            other => {
                return Err(format!("line {}: unknown ev '{other}'", lineno + 1));
            }
        }
    }
    stats.unmatched += open_spans.len();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEventKind;

    fn ev(
        kind: TraceEventKind,
        span: u64,
        name: &'static str,
        ts: u64,
        dur: Option<u64>,
        fields: Vec<(&'static str, FieldValue)>,
    ) -> TraceEvent {
        TraceEvent {
            kind,
            span,
            name,
            tid: 1,
            ts_ns: ts,
            dur_ns: dur,
            fields,
        }
    }

    #[test]
    fn jsonl_round_trips_through_the_validator() {
        let events = vec![
            ev(TraceEventKind::Start, 1, "opt.pass.run", 10, None, vec![]),
            ev(
                TraceEventKind::Stop,
                1,
                "opt.pass.run",
                30,
                Some(20),
                vec![
                    ("pass", FieldValue::Str("inst\"combine".into())),
                    ("changed", FieldValue::Bool(true)),
                    ("insts_before", FieldValue::U64(12)),
                ],
            ),
            ev(
                TraceEventKind::Point,
                0,
                "backend.sim.block",
                40,
                None,
                vec![("cycles", FieldValue::U64(99))],
            ),
        ];
        let text = render_jsonl(&events);
        let stats = validate_jsonl(&text).expect("round trip validates");
        assert_eq!(stats.lines, 3);
        assert_eq!(stats.starts, 1);
        assert_eq!(stats.stops, 1);
        assert_eq!(stats.points, 1);
        assert_eq!(stats.unmatched, 0);
        let agg = &stats.by_key["opt.pass.run[inst\"combine]"];
        assert_eq!(agg.count, 1);
        assert_eq!(agg.total_ns, 20);
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_jsonl("not json\n").is_err());
        assert!(
            validate_jsonl("{\"ev\":\"stop\"}\n").is_err(),
            "missing keys"
        );
        assert!(
            validate_jsonl(
                "{\"ev\":\"start\",\"span\":1,\"name\":\"x\",\"tid\":1,\"ts_ns\":0} tail\n"
            )
            .is_err(),
            "trailing garbage"
        );
    }

    #[test]
    fn validator_accepts_bench_records_and_rejects_other_kinds() {
        let text = "{\"ev\":\"point\",\"span\":0,\"name\":\"a.b.c\",\"tid\":1,\"ts_ns\":5}\n\
                    {\"kind\":\"bench\",\"experiment\":\"sweep\",\"insts\":3,\
                     \"space\":\"23270607245376\",\"fns_per_sec\":135000.0,\"complete\":false}\n";
        let stats = validate_jsonl(text).unwrap();
        assert_eq!(stats.lines, 2);
        assert_eq!(stats.bench, 1);
        assert_eq!(stats.points, 1);
        assert!(
            validate_jsonl("{\"kind\":\"bench\"}\n").is_err(),
            "bench records must name their experiment"
        );
        assert!(
            validate_jsonl("{\"kind\":\"checkpoint\",\"experiment\":\"x\"}\n").is_err(),
            "only bench records are exempt from the event schema"
        );
    }

    #[test]
    fn validator_counts_unmatched_spans() {
        let text =
            "{\"ev\":\"stop\",\"span\":9,\"name\":\"x\",\"tid\":1,\"ts_ns\":1,\"dur_ns\":1}\n\
                    {\"ev\":\"start\",\"span\":10,\"name\":\"y\",\"tid\":1,\"ts_ns\":2}\n";
        let stats = validate_jsonl(text).unwrap();
        assert_eq!(stats.unmatched, 2, "orphan stop + dangling start");
    }

    #[test]
    fn human_rendering_mentions_fields() {
        let events = vec![ev(
            TraceEventKind::Stop,
            3,
            "fuzz.campaign.shard",
            1_500,
            Some(500),
            vec![("shard", FieldValue::U64(4))],
        )];
        let h = render_human(&events);
        assert!(h.contains("fuzz.campaign.shard"));
        assert!(h.contains("shard=4"));
        assert!(h.contains("stop"));
    }
}
