//! A tiny, dependency-free hasher for hot in-process cache maps.
//!
//! The standard library's default hasher (SipHash-1-3) is keyed and
//! DoS-resistant, which the campaign caches do not need: their keys are
//! structural fingerprints of generated IR, never attacker-controlled,
//! and the maps live for one process. [`FastHasher`] is an FxHash-style
//! multiply-rotate fold — a few cycles per word — which matters when
//! every cache probe on the §6 hot path pays for hashing.
//!
//! Not suitable for persisted or cross-process hashes: the function is
//! unkeyed and makes no collision-resistance promises beyond bucket
//! spreading.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasher, Hasher};

const SEED: u64 = 0x243f_6a88_85a3_08d3; // pi
const M: u64 = 0x9e37_79b9_7f4a_7c15; // golden ratio

/// An FxHash-style word-folding hasher. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct FastHasher(u64);

impl FastHasher {
    #[inline]
    fn fold(&mut self, w: u64) {
        self.0 = (self.0.rotate_left(5) ^ w).wrapping_mul(M);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // One final avalanche so low-entropy folds still spread over
        // the table's bucket bits.
        let mut x = self.0;
        x ^= x >> 32;
        x = x.wrapping_mul(M);
        x ^ (x >> 29)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.fold(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut w = 0u64;
            for (i, &b) in rest.iter().enumerate() {
                w |= (b as u64) << (8 * i);
            }
            // Tag the tail with its length so "ab" and "ab\0" differ.
            self.fold(w | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.fold(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.fold(n);
    }

    #[inline]
    fn write_u128(&mut self, n: u128) {
        self.fold(n as u64);
        self.fold((n >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.fold(n as u64);
    }
}

/// [`BuildHasher`] producing [`FastHasher`]s; plugs into
/// `HashMap`/`HashSet` via [`FastHashMap`]/[`FastHashSet`].
#[derive(Clone, Default, Debug)]
pub struct FastBuildHasher;

impl BuildHasher for FastBuildHasher {
    type Hasher = FastHasher;

    #[inline]
    fn build_hasher(&self) -> FastHasher {
        FastHasher(SEED)
    }
}

/// A `HashMap` using [`FastHasher`].
pub type FastHashMap<K, V> = HashMap<K, V, FastBuildHasher>;

/// A `HashSet` using [`FastHasher`].
pub type FastHashSet<T> = HashSet<T, FastBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FastBuildHasher.hash_one(v)
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&"hello"), hash_of(&"hello"));
        assert_eq!(hash_of(&(1u32, "a", 3u64)), hash_of(&(1u32, "a", 3u64)));
    }

    #[test]
    fn nearby_values_spread() {
        let hashes: FastHashSet<u64> = (0..1000u64).map(|v| hash_of(&v)).collect();
        assert_eq!(hashes.len(), 1000, "sequential keys must not collide");
    }

    #[test]
    fn tail_length_is_significant() {
        assert_ne!(hash_of(&b"ab".as_slice()), hash_of(&b"ab\0".as_slice()));
    }

    #[test]
    fn works_as_a_map() {
        let mut m: FastHashMap<String, u32> = FastHashMap::default();
        m.insert("one".into(), 1);
        m.insert("two".into(), 2);
        assert_eq!(m.get("one"), Some(&1));
        assert_eq!(m.len(), 2);
    }
}
