//! The reference tree-walk interpreter (Figure 5, executed directly on
//! the [`Function`] tree).
//!
//! This is the original implementation of the operational semantics: a
//! recursive walk over blocks and instructions that re-resolves every
//! [`Value`] operand and re-consults the [`Semantics`] table on each
//! visit, restarting from scratch for every choice script. The fast
//! path lives in [`crate::plan`], which compiles the function once and
//! resumes enumeration from snapshots; this module is deliberately
//! retained as the *executable specification* the plan engine is
//! differentially tested against (`tests/exec_plan.rs` and the ci.sh
//! smoke gate compare outcome sets byte-for-byte). Keep it simple: any
//! optimization applied here weakens the oracle.
//!
//! Two hot-path fixes are shared with the plan engine because they do
//! not change observable behavior:
//!
//! * enumeration drives a single shared script buffer (truncate to the
//!   fork point and push the sibling's choice) instead of cloning the
//!   full script per fork — same DFS order, same state accounting, no
//!   O(depth²) copying;
//! * each run borrows the caller's initial [`Memory`] and clones it
//!   only on the first store, so read-only runs never copy memory.

use frost_ir::{
    BinOp, BlockId, Cond, Flags, Function, Inst, InstId, Module, Terminator, Ty, Value,
};

use crate::exec::{ExecError, Limits, RunResult};
use crate::mem::Memory;
use crate::ops::{eval_binop, eval_cast, eval_icmp, ScalarResult};
use crate::outcome::{Event, Outcome, OutcomeSet};
use crate::sem::{PoisonAction, Semantics};
use crate::val::{lower, poison_of, raise, Ptr, Val};

/// Reasons to abort the current run.
enum Stop {
    NeedChoice(u64),
    Err(ExecError),
}

/// Non-local exits of instruction evaluation.
enum Exc {
    Ub,
    Stop(Stop),
}

impl From<Stop> for Exc {
    fn from(s: Stop) -> Exc {
        Exc::Stop(s)
    }
}

enum FlowResult {
    Ret(Option<Val>),
    Ub,
}

/// How choices are resolved.
#[derive(Clone, Copy, Debug)]
enum Policy<'s> {
    Script(&'s [u64]),
    Concrete,
}

struct Interp<'a, 's> {
    module: &'a Module,
    sem: Semantics,
    limits: Limits,
    policy: Policy<'s>,
    next_choice: usize,
    steps: u64,
    /// The run's initial memory, owned by the caller.
    init_mem: &'a Memory,
    /// Copy-on-write working memory: `None` until the first store.
    mem: Option<Memory>,
    trace: Vec<Event>,
}

impl<'a> Interp<'a, '_> {
    fn choose(&mut self, n: u64) -> Result<u64, Stop> {
        if n == 0 {
            return Err(Stop::Err(ExecError::Unsupported(
                "empty choice domain".into(),
            )));
        }
        if n == 1 {
            return Ok(0);
        }
        match self.policy {
            Policy::Concrete => Ok(0),
            Policy::Script(script) => {
                if n > self.limits.max_fanout {
                    return Err(Stop::Err(ExecError::FanoutTooLarge(n)));
                }
                match script.get(self.next_choice) {
                    Some(&v) => {
                        self.next_choice += 1;
                        debug_assert!(v < n, "script entry within domain");
                        Ok(v)
                    }
                    None => Err(Stop::NeedChoice(n)),
                }
            }
        }
    }

    /// Chooses an arbitrary defined value of a scalar type (freeze of
    /// poison, use of undef).
    fn choose_scalar(&mut self, ty: &Ty) -> Result<Val, Stop> {
        match ty {
            Ty::Int(bits) => {
                let n = if *bits >= 63 { u64::MAX } else { 1u64 << *bits };
                let idx = self.choose(n)?;
                Ok(Val::int(*bits, u128::from(idx)))
            }
            Ty::Ptr(_) => {
                // The pointer domain is 2^32 addresses; enumerating it is
                // never feasible, but a concrete run can pick null.
                let idx = self.choose(1u64 << 32)?;
                Ok(Val::ptr(idx as u32))
            }
            other => Err(Stop::Err(ExecError::Unsupported(format!(
                "cannot choose a value of type {other}"
            )))),
        }
    }

    /// Resolves `undef` at a *use*: each use of an undef register may
    /// yield a different value (§3.1). Element-wise for vectors. Poison
    /// and defined values pass through.
    fn resolve_use(&mut self, v: Val) -> Result<Val, Stop> {
        match v {
            Val::Undef(ty) => self.choose_scalar(&ty),
            Val::Vec(elems) => {
                let mut out = Vec::with_capacity(elems.len());
                for e in elems {
                    out.push(self.resolve_use(e)?);
                }
                Ok(Val::Vec(out))
            }
            other => Ok(other),
        }
    }

    fn exec_function(
        &mut self,
        func: &'a Function,
        args: &[Val],
        depth: u32,
    ) -> Result<FlowResult, Stop> {
        if args.len() != func.params.len() {
            return Err(Stop::Err(ExecError::BadFunction(format!(
                "@{} expects {} arguments, got {}",
                func.name,
                func.params.len(),
                args.len()
            ))));
        }
        let mut regs: Vec<Option<Val>> = vec![None; func.insts.len()];
        let mut cur = BlockId::ENTRY;
        let mut prev: Option<BlockId> = None;

        'blocks: loop {
            // Charge a step per block visit so empty infinite loops
            // (e.g. `bb: br label %bb`) still exhaust fuel.
            self.steps += 1;
            if self.steps > self.limits.max_steps {
                return Err(Stop::Err(ExecError::Fuel));
            }
            let block = func.block(cur);

            // Evaluate all phis simultaneously against the incoming edge.
            let mut phi_updates: Vec<(InstId, Val)> = Vec::new();
            for &id in &block.insts {
                let Inst::Phi { incoming, .. } = func.inst(id) else {
                    break;
                };
                let from = prev.expect("phi in entry block rejected by verifier");
                let (v, _) = incoming
                    .iter()
                    .find(|(_, bb)| *bb == from)
                    .expect("verifier guarantees an incoming value per predecessor");
                phi_updates.push((id, self.operand(func, &regs, args, v)));
            }
            for (id, v) in phi_updates {
                self.steps += 1;
                regs[id.index()] = Some(v);
            }

            for &id in &block.insts {
                if matches!(func.inst(id), Inst::Phi { .. }) {
                    continue;
                }
                self.steps += 1;
                if self.steps > self.limits.max_steps {
                    return Err(Stop::Err(ExecError::Fuel));
                }
                match self.eval_inst(func, &regs, args, id, depth) {
                    Ok(v) => regs[id.index()] = Some(v),
                    Err(Exc::Ub) => return Ok(FlowResult::Ub),
                    Err(Exc::Stop(s)) => return Err(s),
                }
            }

            match &block.term {
                Terminator::Ret(v) => {
                    let val = v.as_ref().map(|v| self.operand(func, &regs, args, v));
                    return Ok(FlowResult::Ret(val));
                }
                Terminator::Jmp(dest) => {
                    prev = Some(cur);
                    cur = *dest;
                }
                Terminator::Br {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let c = self.operand(func, &regs, args, cond);
                    let c = self.resolve_use(c)?;
                    let taken = match c {
                        Val::Int { v, .. } => v == 1,
                        Val::Poison => match self.sem.branch_on_poison {
                            PoisonAction::Ub => return Ok(FlowResult::Ub),
                            PoisonAction::Nondet | PoisonAction::Propagate => self.choose(2)? == 1,
                        },
                        other => {
                            return Err(Stop::Err(ExecError::Unsupported(format!(
                                "branch on {other}"
                            ))))
                        }
                    };
                    prev = Some(cur);
                    cur = if taken { *then_bb } else { *else_bb };
                }
                Terminator::Unreachable => return Ok(FlowResult::Ub),
            }
            continue 'blocks;
        }
    }

    fn operand(&self, _func: &Function, regs: &[Option<Val>], args: &[Val], v: &Value) -> Val {
        match v {
            Value::Inst(id) => regs[id.index()]
                .clone()
                .expect("SSA dominance guarantees the register is written"),
            Value::Arg(i) => args[*i as usize].clone(),
            Value::Const(c) => Val::from_const(c),
        }
    }

    fn eval_inst(
        &mut self,
        func: &'a Function,
        regs: &[Option<Val>],
        args: &[Val],
        id: InstId,
        depth: u32,
    ) -> Result<Val, Exc> {
        let inst = func.inst(id);
        match inst {
            Inst::Bin {
                op,
                flags,
                ty,
                lhs,
                rhs,
            } => {
                let a = self.resolve_use(self.operand(func, regs, args, lhs))?;
                let b = self.resolve_use(self.operand(func, regs, args, rhs))?;
                self.eval_bin_val(*op, *flags, ty, a, b)
            }
            Inst::Icmp { cond, ty, lhs, rhs } => {
                let a = self.resolve_use(self.operand(func, regs, args, lhs))?;
                let b = self.resolve_use(self.operand(func, regs, args, rhs))?;
                self.eval_icmp_val(*cond, ty, a, b)
            }
            Inst::Select {
                cond,
                ty,
                tval,
                fval,
            } => {
                let c = self.resolve_use(self.operand(func, regs, args, cond))?;
                let tv = self.operand(func, regs, args, tval);
                let fv = self.operand(func, regs, args, fval);
                let taken = match c {
                    Val::Int { v, .. } => v == 1,
                    Val::Poison => match self.sem.select.poison_cond {
                        PoisonAction::Propagate => return Ok(poison_of(ty)),
                        PoisonAction::Ub => return Err(Exc::Ub),
                        PoisonAction::Nondet => self.choose(2)? == 1,
                    },
                    other => {
                        return Err(Exc::Stop(Stop::Err(ExecError::Unsupported(format!(
                            "select on {other}"
                        )))))
                    }
                };
                if self.sem.select.propagate_unselected
                    && (tv.contains_poison() || fv.contains_poison())
                {
                    return Ok(poison_of(ty));
                }
                Ok(if taken { tv } else { fv })
            }
            Inst::Phi { .. } => unreachable!("phis are evaluated at block entry"),
            Inst::Freeze { ty, val } => {
                let v = self.operand(func, regs, args, val);
                self.freeze_val(ty, v)
            }
            Inst::Cast {
                kind,
                from_ty,
                to_ty,
                val,
            } => {
                let v = self.resolve_use(self.operand(func, regs, args, val))?;
                let from_bits = from_ty.scalar_ty().int_bits().expect("verified int cast");
                let to_bits = to_ty.scalar_ty().int_bits().expect("verified int cast");
                Ok(map_elements(&v, to_ty, |e| match e.as_int() {
                    Some(x) => Val::int(to_bits, eval_cast(*kind, from_bits, to_bits, x)),
                    None => Val::Poison,
                }))
            }
            Inst::Bitcast {
                from_ty,
                to_ty,
                val,
            } => {
                let v = self.operand(func, regs, args, val);
                Ok(raise(to_ty, &lower(from_ty, &v)))
            }
            Inst::Gep {
                elem_ty,
                base,
                idx,
                inbounds,
                idx_ty,
                ..
            } => {
                let b = self.resolve_use(self.operand(func, regs, args, base))?;
                let i = self.resolve_use(self.operand(func, regs, args, idx))?;
                let (Val::Ptr(p), Val::Int { .. }) = (&b, &i) else {
                    // Poison base or index -> poison pointer.
                    return Ok(Val::Poison);
                };
                let idx_bits = idx_ty.int_bits().expect("verified gep index");
                let offset = i.as_signed().expect("int");
                let _ = idx_bits;
                let stride = i128::from(elem_ty.byte_size());
                match *p {
                    Ptr::Addr(addr) => {
                        let full = i128::from(addr) + offset * stride;
                        if *inbounds && (full < 0 || full > i128::from(u32::MAX)) {
                            // Pointer arithmetic overflow is deferred UB (§2.4).
                            return Ok(Val::Poison);
                        }
                        Ok(Val::ptr(full.rem_euclid(1i128 << 32) as u32))
                    }
                    Ptr::Block { block, off } => {
                        let full = i128::from(off) + offset * stride;
                        if *inbounds {
                            let mem = self.mem.as_ref().unwrap_or(self.init_mem);
                            // Deferred UB: an inbounds gep may only move
                            // within the block (one-past-the-end allowed).
                            if full < 0 || full > i128::from(mem.block_size(block)) {
                                return Ok(Val::Poison);
                            }
                        }
                        Ok(Val::Ptr(Ptr::Block {
                            block,
                            off: full.rem_euclid(1i128 << 32) as u32,
                        }))
                    }
                }
            }
            Inst::Load { ty, ptr } => {
                let p = self.resolve_use(self.operand(func, regs, args, ptr))?;
                let Val::Ptr(p) = p else {
                    return Err(Exc::Ub);
                };
                let mem = self.mem.as_ref().unwrap_or(self.init_mem);
                match mem.load_ptr(p, ty.bitwidth()) {
                    Some(bits) => Ok(raise(ty, &bits)),
                    None => Err(Exc::Ub),
                }
            }
            Inst::Store { ty, val, ptr } => {
                let v = self.operand(func, regs, args, val);
                let p = self.resolve_use(self.operand(func, regs, args, ptr))?;
                let Val::Ptr(p) = p else {
                    return Err(Exc::Ub);
                };
                let bits = lower(ty, &v);
                // First store of the run: fault in a private copy of the
                // initial memory.
                let mem = self.mem.get_or_insert_with(|| self.init_mem.clone());
                if !mem.store_ptr(p, &bits) {
                    return Err(Exc::Ub);
                }
                Ok(Val::int(1, 0)) // dummy; stores define no register
            }
            Inst::Alloca { ty } => {
                // Allocation mutates the (copy-on-write) memory even
                // though nothing is written yet: the block table grows.
                let fill = crate::exec::uninit_fill(&self.sem);
                let mem = self.mem.get_or_insert_with(|| self.init_mem.clone());
                let block = mem.alloca(ty.byte_size(), fill);
                Ok(Val::Ptr(Ptr::Block { block, off: 0 }))
            }
            Inst::PtrToInt { val, .. } => {
                let v = self.resolve_use(self.operand(func, regs, args, val))?;
                // Observing an address forces the finite phase even when
                // the operand is poison — the cast itself is the
                // observation, and the unconditional rule keeps both
                // executors trivially in agreement.
                let mem = self.mem.get_or_insert_with(|| self.init_mem.clone());
                mem.concretize();
                match v {
                    Val::Ptr(p) => {
                        let addr = mem.ptr_addr(p);
                        Ok(Val::int(frost_ir::PTR_BITS, u128::from(addr)))
                    }
                    _ => Ok(Val::Poison),
                }
            }
            Inst::IntToPtr { val, .. } => {
                let v = self.resolve_use(self.operand(func, regs, args, val))?;
                let mem = self.mem.get_or_insert_with(|| self.init_mem.clone());
                mem.concretize();
                match v.as_int() {
                    Some(x) => Ok(Val::ptr(x as u32)),
                    None => Ok(Val::Poison),
                }
            }
            Inst::Assume { cond } => {
                // The guard consumes its fact: a false *or poison*
                // fact is immediate UB (deferred UB is promoted here,
                // exactly as `br` does under the proposed semantics).
                // Freezing the condition first launders the poison
                // half away.
                let c = self.resolve_use(self.operand(func, regs, args, cond))?;
                match c {
                    Val::Poison => Err(Exc::Ub),
                    Val::Int { v, .. } => {
                        if v == 1 {
                            Ok(Val::int(1, 0)) // dummy; guards define no register
                        } else {
                            Err(Exc::Ub)
                        }
                    }
                    other => Err(Exc::Stop(Stop::Err(ExecError::Unsupported(format!(
                        "assume on {other}"
                    ))))),
                }
            }
            Inst::ExtractElement { vec, idx, len, .. } => {
                let v = self.operand(func, regs, args, vec);
                let i = idx.as_int_const().expect("verified constant lane") as usize;
                Ok(vector_elems(&v, *len as usize)[i].clone())
            }
            Inst::InsertElement {
                vec, elt, idx, len, ..
            } => {
                let v = self.operand(func, regs, args, vec);
                let e = self.operand(func, regs, args, elt);
                let i = idx.as_int_const().expect("verified constant lane") as usize;
                let mut elems = vector_elems(&v, *len as usize);
                elems[i] = e;
                Ok(Val::Vec(elems))
            }
            Inst::Call {
                ret_ty,
                callee,
                args: call_args,
                ..
            } => {
                let mut vals = Vec::with_capacity(call_args.len());
                for a in call_args {
                    vals.push(self.operand(func, regs, args, a));
                }
                self.eval_call(ret_ty, callee, vals, depth)
            }
        }
    }

    fn eval_call(
        &mut self,
        ret_ty: &Ty,
        callee: &str,
        vals: Vec<Val>,
        depth: u32,
    ) -> Result<Val, Exc> {
        if let Some(f) = self.module.function(callee) {
            if depth >= self.limits.max_call_depth {
                return Err(Exc::Stop(Stop::Err(ExecError::Fuel)));
            }
            return match self.exec_function(f, &vals, depth + 1)? {
                FlowResult::Ub => Err(Exc::Ub),
                FlowResult::Ret(Some(v)) => Ok(v),
                FlowResult::Ret(None) => Ok(Val::int(1, 0)),
            };
        }
        let Some(decl) = self.module.declaration(callee) else {
            return Err(Exc::Stop(Stop::Err(ExecError::BadFunction(format!(
                "unknown callee @{callee}"
            )))));
        };
        if decl.attrs.readnone {
            // A pure external function: poison in, poison out; otherwise
            // an arbitrary (environment-chosen) result. Not observable.
            if vals.iter().any(Val::contains_poison) {
                return Ok(poison_of(ret_ty));
            }
            if ret_ty.is_void() {
                return Ok(Val::int(1, 0));
            }
            return Ok(self.choose_scalar(ret_ty.scalar_ty())?);
        }
        // Side-effecting external call: poison reaching it is UB (§1:
        // poison "triggers immediate UB if it reaches a side-effecting
        // operation").
        if self.sem.poison_call_arg_is_ub && vals.iter().any(Val::contains_poison) {
            return Err(Exc::Ub);
        }
        let ret = if ret_ty.is_void() {
            None
        } else {
            Some(self.choose_scalar(ret_ty.scalar_ty())?)
        };
        self.trace.push(Event {
            callee: callee.to_string(),
            args: vals,
            ret: ret.clone(),
        });
        Ok(ret.unwrap_or(Val::int(1, 0)))
    }

    fn eval_bin_val(
        &mut self,
        op: BinOp,
        flags: Flags,
        ty: &Ty,
        a: Val,
        b: Val,
    ) -> Result<Val, Exc> {
        let bits = ty.scalar_ty().int_bits().expect("verified integer binop");
        let len = ty.vector_len();
        match len {
            None => self.bin_scalar(op, flags, bits, &a, &b),
            Some(n) => {
                let av = vector_elems(&a, n as usize);
                let bv = vector_elems(&b, n as usize);
                let mut out = Vec::with_capacity(n as usize);
                for (x, y) in av.iter().zip(&bv) {
                    out.push(self.bin_scalar(op, flags, bits, x, y)?);
                }
                Ok(Val::Vec(out))
            }
        }
    }

    fn bin_scalar(
        &mut self,
        op: BinOp,
        flags: Flags,
        bits: u32,
        a: &Val,
        b: &Val,
    ) -> Result<Val, Exc> {
        if op.may_have_immediate_ub() {
            // Division: a poison divisor, or zero, is immediate UB; a
            // poison dividend yields poison unless the divisor makes
            // the signed-overflow case reachable.
            let bv = match b {
                Val::Poison => return Err(Exc::Ub),
                Val::Int { v, .. } => *v,
                other => {
                    return Err(Exc::Stop(Stop::Err(ExecError::Unsupported(format!(
                        "divide by {other}"
                    )))))
                }
            };
            if bv == 0 {
                return Err(Exc::Ub);
            }
            if a.contains_poison() {
                let divisor_is_minus1 = Val::int(bits, bv).as_signed() == Some(-1);
                if matches!(op, BinOp::SDiv | BinOp::SRem) && divisor_is_minus1 {
                    // poison could be INT_MIN: the UB case is reachable.
                    return Err(Exc::Ub);
                }
                return Ok(Val::Poison);
            }
        } else if a.contains_poison() || b.contains_poison() {
            return Ok(Val::Poison);
        }
        let (Some(x), Some(y)) = (a.as_int(), b.as_int()) else {
            return Err(Exc::Stop(Stop::Err(ExecError::Unsupported(format!(
                "binop on {a} and {b}"
            )))));
        };
        match eval_binop(op, flags, bits, x, y) {
            ScalarResult::Val(v) => Ok(Val::int(bits, v)),
            ScalarResult::Poison => {
                // §2.4 strawman semantics: deferred binop UB yields
                // undef instead of poison.
                if self.sem.wrap_flags_produce_undef {
                    Ok(Val::Undef(Ty::Int(bits)))
                } else {
                    Ok(Val::Poison)
                }
            }
            ScalarResult::Ub => Err(Exc::Ub),
        }
    }

    fn eval_icmp_val(&mut self, cond: Cond, ty: &Ty, a: Val, b: Val) -> Result<Val, Exc> {
        let mem = self.mem.as_ref().unwrap_or(self.init_mem);
        let scalar = |x: &Val, y: &Val| -> Val {
            match (x, y) {
                (Val::Poison, _) | (_, Val::Poison) => Val::Poison,
                (Val::Int { bits, v: xa }, Val::Int { v: xb, .. }) => {
                    Val::bool(eval_icmp(cond, *bits, *xa, *xb))
                }
                // Pointers compare by concrete address. Layout is
                // deterministic, so this is well-defined even in the
                // infinite phase (and does not force the finite one).
                (Val::Ptr(pa), Val::Ptr(pb)) => Val::bool(eval_icmp(
                    cond,
                    frost_ir::PTR_BITS,
                    u128::from(mem.ptr_addr(*pa)),
                    u128::from(mem.ptr_addr(*pb)),
                )),
                _ => Val::Poison,
            }
        };
        match ty.vector_len() {
            None => Ok(scalar(&a, &b)),
            Some(n) => {
                let av = vector_elems(&a, n as usize);
                let bv = vector_elems(&b, n as usize);
                Ok(Val::Vec(
                    av.iter().zip(&bv).map(|(x, y)| scalar(x, y)).collect(),
                ))
            }
        }
    }

    /// Figure 5's freeze rules: identity on defined values; an arbitrary
    /// defined value for poison (and undef); element-wise for vectors.
    fn freeze_val(&mut self, ty: &Ty, v: Val) -> Result<Val, Exc> {
        match (ty, v) {
            (Ty::Vector { elems, elem }, v) => {
                let vals = vector_elems(&v, *elems as usize);
                let mut out = Vec::with_capacity(vals.len());
                for e in vals {
                    out.push(self.freeze_scalar(elem, e)?);
                }
                Ok(Val::Vec(out))
            }
            (_, v) => self.freeze_scalar(ty, v),
        }
    }

    fn freeze_scalar(&mut self, ty: &Ty, v: Val) -> Result<Val, Exc> {
        match v {
            Val::Poison | Val::Undef(_) => Ok(self.choose_scalar(ty)?),
            defined => Ok(defined),
        }
    }

    /// The run's final memory image for an outcome: the private copy if
    /// a store faulted one in, the untouched initial memory otherwise.
    fn final_mem(&self) -> crate::val::Bits {
        match &self.mem {
            Some(m) => m.snapshot(),
            None => self.init_mem.snapshot(),
        }
    }
}

/// Splits a vector value into elements; scalar poison expands to
/// all-poison (defensive — constants are already element-wise).
fn vector_elems(v: &Val, len: usize) -> Vec<Val> {
    match v {
        Val::Vec(elems) => {
            debug_assert_eq!(elems.len(), len);
            elems.clone()
        }
        Val::Poison => vec![Val::Poison; len],
        other => vec![other.clone(); len],
    }
}

/// Maps a scalar function over a value that may be a vector.
fn map_elements(v: &Val, result_ty: &Ty, f: impl Fn(&Val) -> Val) -> Val {
    match result_ty.vector_len() {
        None => f(v),
        Some(n) => Val::Vec(vector_elems(v, n as usize).iter().map(f).collect()),
    }
}

/// Runs `name` on `args` with the given choice script — tree-walk
/// implementation.
///
/// # Errors
///
/// Returns an [`ExecError`] on resource exhaustion or unsupported
/// programs; UB is a *successful* run with [`Outcome::Ub`].
pub fn run_with_script(
    module: &Module,
    name: &str,
    args: &[Val],
    mem: &Memory,
    sem: Semantics,
    limits: Limits,
    script: &[u64],
) -> Result<RunResult, ExecError> {
    let Some(func) = module.function(name) else {
        return Err(ExecError::BadFunction(format!("no function @{name}")));
    };
    let mut interp = Interp {
        module,
        sem,
        limits,
        policy: Policy::Script(script),
        next_choice: 0,
        steps: 0,
        init_mem: mem,
        mem: None,
        trace: Vec::new(),
    };
    match interp.exec_function(func, args, 0) {
        Ok(FlowResult::Ub) => Ok(RunResult::Done(Outcome::Ub)),
        Ok(FlowResult::Ret(val)) => Ok(RunResult::Done(Outcome::Ret {
            mem: interp.final_mem(),
            trace: interp.trace,
            val,
        })),
        Err(Stop::NeedChoice(n)) => Ok(RunResult::NeedChoice(n)),
        Err(Stop::Err(e)) => Err(e),
    }
}

/// Enumerates *every* behavior of `name` on `args` by exploring all
/// choice scripts, restarting the interpreter per script (model-checker
/// style) — tree-walk implementation.
///
/// The scripts share one growable buffer: a fork records the buffer
/// length and counts its sibling choices down, and each exploration
/// truncates back to the fork point and pushes one value. This is the
/// same DFS (values `n-1..0`, deepest fork first) and the same state
/// accounting as the historical clone-per-fork driver, without the
/// quadratic script copying.
///
/// # Errors
///
/// Returns an [`ExecError`] if the search exceeds [`Limits`] or the
/// program draws from an unenumerable domain (e.g. freezing a pointer).
pub fn enumerate_outcomes(
    module: &Module,
    name: &str,
    args: &[Val],
    mem: &Memory,
    sem: Semantics,
    limits: Limits,
) -> Result<OutcomeSet, ExecError> {
    let mut outcomes = OutcomeSet::new();
    let mut script: Vec<u64> = Vec::new();
    /// One unexplored fork: the script length at the choice point and
    /// the sibling values still to try (counting down).
    struct Branch {
        fork_len: usize,
        next: u64,
    }
    let mut stack: Vec<Branch> = Vec::new();
    let mut states: u64 = 0;

    states += 1;
    if states > limits.max_states {
        return Err(ExecError::StateExplosion);
    }
    match run_with_script(module, name, args, mem, sem, limits, &script)? {
        RunResult::Done(outcome) => {
            outcomes.insert(outcome);
        }
        RunResult::NeedChoice(n) => stack.push(Branch {
            fork_len: 0,
            next: n,
        }),
    }

    while let Some(top) = stack.last_mut() {
        if top.next == 0 {
            stack.pop();
            continue;
        }
        top.next -= 1;
        let v = top.next;
        let fork_len = top.fork_len;
        states += 1;
        if states > limits.max_states {
            return Err(ExecError::StateExplosion);
        }
        script.truncate(fork_len);
        script.push(v);
        match run_with_script(module, name, args, mem, sem, limits, &script)? {
            RunResult::Done(outcome) => {
                outcomes.insert(outcome);
            }
            RunResult::NeedChoice(n) => stack.push(Branch {
                fork_len: script.len(),
                next: n,
            }),
        }
    }
    Ok(outcomes)
}

/// Runs `name` once, resolving every non-deterministic choice to 0 —
/// tree-walk implementation. Returns the behavior and the number of
/// steps executed.
///
/// # Errors
///
/// Returns an [`ExecError`] on resource exhaustion or unsupported
/// programs.
pub fn run_concrete(
    module: &Module,
    name: &str,
    args: &[Val],
    mem: &Memory,
    sem: Semantics,
    limits: Limits,
) -> Result<(Outcome, u64), ExecError> {
    let Some(func) = module.function(name) else {
        return Err(ExecError::BadFunction(format!("no function @{name}")));
    };
    let mut interp = Interp {
        module,
        sem,
        limits,
        policy: Policy::Concrete,
        next_choice: 0,
        steps: 0,
        init_mem: mem,
        mem: None,
        trace: Vec::new(),
    };
    match interp.exec_function(func, args, 0) {
        Ok(FlowResult::Ub) => Ok((Outcome::Ub, interp.steps)),
        Ok(FlowResult::Ret(val)) => Ok((
            Outcome::Ret {
                mem: interp.final_mem(),
                trace: interp.trace,
                val,
            },
            interp.steps,
        )),
        Err(Stop::NeedChoice(_)) => unreachable!("concrete policy never forks"),
        Err(Stop::Err(e)) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frost_ir::parse_module;

    /// The historical clone-per-fork enumeration driver, kept here as
    /// the oracle for the shared-prefix rewrite.
    fn enumerate_naive(
        module: &Module,
        name: &str,
        args: &[Val],
        mem: &Memory,
        sem: Semantics,
        limits: Limits,
    ) -> Result<OutcomeSet, ExecError> {
        let mut outcomes = OutcomeSet::new();
        let mut stack: Vec<Vec<u64>> = vec![Vec::new()];
        let mut states: u64 = 0;
        while let Some(script) = stack.pop() {
            states += 1;
            if states > limits.max_states {
                return Err(ExecError::StateExplosion);
            }
            match run_with_script(module, name, args, mem, sem, limits, &script)? {
                RunResult::Done(outcome) => {
                    outcomes.insert(outcome);
                }
                RunResult::NeedChoice(n) => {
                    for i in 0..n {
                        let mut s = script.clone();
                        s.push(i);
                        stack.push(s);
                    }
                }
            }
        }
        Ok(outcomes)
    }

    // A function with nested forks of different widths: freeze i2
    // (4-way) feeding a branch (taken/not), plus an independent freeze
    // i1 — deep enough to exercise truncation across fork levels.
    const FORKY: &str = "define i8 @f() {\nentry:\n  %a = freeze i2 poison\n  %b = freeze i1 poison\n  %c = icmp eq i2 %a, 2\n  br i1 %c, label %t, label %e\nt:\n  %za = zext i2 %a to i8\n  ret i8 %za\ne:\n  %zb = zext i1 %b to i8\n  ret i8 %zb\n}";

    #[test]
    fn shared_prefix_enumeration_matches_clone_per_fork() {
        let m = parse_module(FORKY).unwrap();
        for sem in [Semantics::proposed(), Semantics::legacy_gvn()] {
            let shared =
                enumerate_outcomes(&m, "f", &[], &Memory::zeroed(0), sem, Limits::default())
                    .unwrap();
            let naive =
                enumerate_naive(&m, "f", &[], &Memory::zeroed(0), sem, Limits::default()).unwrap();
            assert_eq!(shared, naive, "under {}", sem.name);
        }
    }

    #[test]
    fn shared_prefix_state_accounting_is_unchanged() {
        // The drivers must explode at exactly the same budget.
        let m = parse_module(FORKY).unwrap();
        let mem = Memory::zeroed(0);
        let sem = Semantics::proposed();
        let mut boundary = None;
        for max_states in 1..64 {
            let limits = Limits {
                max_states,
                ..Limits::default()
            };
            let shared = enumerate_outcomes(&m, "f", &[], &mem, sem, limits);
            let naive = enumerate_naive(&m, "f", &[], &mem, sem, limits);
            assert_eq!(
                shared.is_ok(),
                naive.is_ok(),
                "divergent state accounting at max_states = {max_states}"
            );
            if shared.is_ok() && boundary.is_none() {
                boundary = Some(max_states);
            }
        }
        assert!(boundary.is_some(), "enumeration fits in the sweep");
    }

    #[test]
    fn read_only_runs_return_the_initial_memory_image() {
        let m =
            parse_module("define i8 @f(i8* %p) {\nentry:\n  %v = load i8, i8* %p\n  ret i8 %v\n}")
                .unwrap();
        let mut init = Memory::zeroed(2);
        assert!(init.store(Memory::BASE, &lower(&Ty::i8(), &Val::int(8, 0x5a))));
        let set = enumerate_outcomes(
            &m,
            "f",
            &[Val::ptr(Memory::BASE)],
            &init,
            Semantics::proposed(),
            Limits::default(),
        )
        .unwrap();
        let Outcome::Ret { val, mem, .. } = set.iter().next().unwrap() else {
            panic!("run returns");
        };
        assert_eq!(val.as_ref(), Some(&Val::int(8, 0x5a)));
        assert_eq!(
            mem,
            &init.snapshot(),
            "no store: outcome mem is the input image"
        );
    }

    #[test]
    fn stores_copy_on_write_and_never_leak_into_the_callers_memory() {
        let m =
            parse_module("define void @f(i8* %p) {\nentry:\n  store i8 9, i8* %p\n  ret void\n}")
                .unwrap();
        let init = Memory::zeroed(1);
        let before = init.snapshot();
        let set = enumerate_outcomes(
            &m,
            "f",
            &[Val::ptr(Memory::BASE)],
            &init,
            Semantics::proposed(),
            Limits::default(),
        )
        .unwrap();
        let Outcome::Ret { mem, .. } = set.iter().next().unwrap() else {
            panic!("run returns");
        };
        assert_ne!(mem, &before, "the store is visible in the outcome");
        assert_eq!(init.snapshot(), before, "the caller's memory is untouched");
    }
}
