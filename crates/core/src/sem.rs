//! Pluggable undefined-behavior semantics.
//!
//! The paper's central observation (§3) is that LLVM's passes assumed
//! *different* deferred-UB semantics — GVN needs branch-on-poison to be
//! immediate UB, loop unswitching needs it to be a non-deterministic
//! choice — and that both coexisting enables end-to-end miscompilation.
//! [`Semantics`] makes every such choice an explicit knob, with three
//! presets:
//!
//! * [`Semantics::proposed`] — the paper's §4 proposal;
//! * [`Semantics::legacy_gvn`] — undef + poison, branch-on-poison is UB;
//! * [`Semantics::legacy_unswitch`] — undef + poison, branch-on-poison
//!   is a non-deterministic choice.

/// What executing an operation on a poison input does.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PoisonAction {
    /// Immediate undefined behavior.
    Ub,
    /// A non-deterministic choice among the defined possibilities.
    Nondet,
    /// The result is poison.
    Propagate,
}

/// How `select` treats poison (§3.4 catalogues the inconsistent options
/// LLVM implemented simultaneously).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SelectSemantics {
    /// Behavior when the *condition* is poison.
    pub poison_cond: PoisonAction,
    /// If `true`, a poison value in the *not-selected* arm also poisons
    /// the result ("select as arithmetic", what the LangRef implied);
    /// if `false`, only the chosen arm matters (matching `phi`, the
    /// paper's choice).
    pub propagate_unselected: bool,
}

/// A complete undefined-behavior model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Semantics {
    /// Whether the `undef` value exists (legacy) or not (proposed).
    pub has_undef: bool,
    /// Behavior of `br` on a poison condition.
    pub branch_on_poison: PoisonAction,
    /// Behavior of `select`.
    pub select: SelectSemantics,
    /// What a load of uninitialized memory yields: `true` → poison
    /// (proposed, §5.3), `false` → undef (legacy).
    pub uninit_is_poison: bool,
    /// Whether passing poison to an external (side-effecting) call is
    /// immediate UB. The paper treats poison reaching a side-effecting
    /// operation as triggering UB.
    pub poison_call_arg_is_ub: bool,
    /// Historical variant discussed in §2.4: deferred-UB results of
    /// binary operations (nsw/nuw/exact violations, shift past width)
    /// yield `undef` instead of poison. Under this semantics
    /// induction-variable widening is *not* justified — `sext(undef)`
    /// has correlated high bits.
    pub wrap_flags_produce_undef: bool,
    /// A short human-readable name for reports.
    pub name: &'static str,
}

impl Semantics {
    /// The paper's proposed semantics (§4):
    ///
    /// * no `undef`;
    /// * all operations propagate poison except `phi`, `select`,
    ///   `freeze`;
    /// * `select` with poison condition yields poison, and only the
    ///   *chosen* arm's poison matters (Figure 5);
    /// * branching on poison is immediate UB;
    /// * loads of uninitialized memory yield poison.
    pub fn proposed() -> Semantics {
        Semantics {
            has_undef: false,
            branch_on_poison: PoisonAction::Ub,
            select: SelectSemantics {
                poison_cond: PoisonAction::Propagate,
                propagate_unselected: false,
            },
            uninit_is_poison: true,
            poison_call_arg_is_ub: true,
            wrap_flags_produce_undef: false,
            name: "proposed",
        }
    }

    /// The legacy semantics as *GVN* assumes it (§3.3): branch on poison
    /// is UB (so replacing a value by an equal-comparing one is sound).
    /// `select` follows the LangRef reading: poison in either arm
    /// poisons the result.
    pub fn legacy_gvn() -> Semantics {
        Semantics {
            has_undef: true,
            branch_on_poison: PoisonAction::Ub,
            select: SelectSemantics {
                poison_cond: PoisonAction::Propagate,
                propagate_unselected: true,
            },
            uninit_is_poison: false,
            poison_call_arg_is_ub: true,
            wrap_flags_produce_undef: false,
            name: "legacy-gvn",
        }
    }

    /// The legacy semantics as *loop unswitching* assumes it (§3.3):
    /// branch on poison is a non-deterministic choice (hoisting a branch
    /// out of a possibly-never-running loop is then sound).
    pub fn legacy_unswitch() -> Semantics {
        Semantics {
            has_undef: true,
            branch_on_poison: PoisonAction::Nondet,
            select: SelectSemantics {
                poison_cond: PoisonAction::Nondet,
                propagate_unselected: false,
            },
            uninit_is_poison: false,
            poison_call_arg_is_ub: true,
            wrap_flags_produce_undef: false,
            name: "legacy-unswitch",
        }
    }

    /// The §2.4 strawman: like the legacy-GVN semantics, but deferred
    /// UB of arithmetic yields `undef` rather than poison. Used to show
    /// mechanically that induction-variable widening needs poison.
    pub fn legacy_undef_overflow() -> Semantics {
        Semantics::legacy_gvn()
            .with_wrap_flags_produce_undef(true)
            .named("legacy-undef-overflow")
    }

    /// All three presets, for matrix-style experiments (§3 / E6).
    pub fn all_presets() -> [Semantics; 3] {
        [
            Semantics::proposed(),
            Semantics::legacy_gvn(),
            Semantics::legacy_unswitch(),
        ]
    }

    // Knob builders: start from a preset and flip individual choices,
    // instead of hand-assembling the whole struct. Every §3-style
    // "what if pass X assumed Y" experiment is one chained call:
    // `Semantics::proposed().with_branch_on_poison(PoisonAction::Nondet)`.

    /// Returns this model with the `undef` value enabled or disabled.
    #[must_use]
    pub fn with_undef(self, has_undef: bool) -> Semantics {
        Semantics { has_undef, ..self }
    }

    /// Returns this model with the given branch-on-poison behavior
    /// (the §3.3 GVN ↔ loop-unswitching crux).
    #[must_use]
    pub fn with_branch_on_poison(self, action: PoisonAction) -> Semantics {
        Semantics {
            branch_on_poison: action,
            ..self
        }
    }

    /// Returns this model with the given `select` semantics (§3.4).
    #[must_use]
    pub fn with_select(self, select: SelectSemantics) -> Semantics {
        Semantics { select, ..self }
    }

    /// Returns this model with loads of uninitialized memory yielding
    /// poison (`true`, §5.3) or undef (`false`, legacy).
    #[must_use]
    pub fn with_uninit_is_poison(self, uninit_is_poison: bool) -> Semantics {
        Semantics {
            uninit_is_poison,
            ..self
        }
    }

    /// Returns this model with deferred arithmetic UB yielding `undef`
    /// instead of poison (the §2.4 strawman).
    #[must_use]
    pub fn with_wrap_flags_produce_undef(self, wrap_flags_produce_undef: bool) -> Semantics {
        Semantics {
            wrap_flags_produce_undef,
            ..self
        }
    }

    /// Returns this model under a new report name. Cache keys include
    /// the name, so derived models should be renamed.
    #[must_use]
    pub fn named(self, name: &'static str) -> Semantics {
        Semantics { name, ..self }
    }
}

impl Default for Semantics {
    fn default() -> Semantics {
        Semantics::proposed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_the_paper_says() {
        let p = Semantics::proposed();
        let g = Semantics::legacy_gvn();
        let u = Semantics::legacy_unswitch();
        // The §3.3 conflict in one line:
        assert_eq!(p.branch_on_poison, PoisonAction::Ub);
        assert_eq!(g.branch_on_poison, PoisonAction::Ub);
        assert_eq!(u.branch_on_poison, PoisonAction::Nondet);
        // undef removal:
        assert!(!p.has_undef);
        assert!(g.has_undef && u.has_undef);
        // §5.3: uninitialized loads.
        assert!(p.uninit_is_poison);
        assert!(!g.uninit_is_poison);
        // Figure 5: select only propagates the chosen arm under the
        // proposal; the LangRef reading propagates both.
        assert!(!p.select.propagate_unselected);
        assert!(g.select.propagate_unselected);
    }

    #[test]
    fn default_is_proposed() {
        assert_eq!(Semantics::default().name, "proposed");
    }

    #[test]
    fn knob_builders_flip_exactly_one_choice() {
        let base = Semantics::proposed();
        let nondet = base.with_branch_on_poison(PoisonAction::Nondet);
        assert_eq!(nondet.branch_on_poison, PoisonAction::Nondet);
        assert_eq!(
            Semantics {
                branch_on_poison: base.branch_on_poison,
                ..nondet
            },
            base
        );

        // The §2.4 strawman is expressible as a two-knob derivation.
        let strawman = Semantics::legacy_gvn()
            .with_wrap_flags_produce_undef(true)
            .named("legacy-undef-overflow");
        assert_eq!(strawman, Semantics::legacy_undef_overflow());

        // A pass-local legacy model: proposed, but select nondet on a
        // poison condition (what §3.4 says SimplifyCFG assumed).
        let local = Semantics::proposed()
            .with_select(SelectSemantics {
                poison_cond: PoisonAction::Nondet,
                propagate_unselected: false,
            })
            .named("simplifycfg-local");
        assert_eq!(local.select.poison_cond, PoisonAction::Nondet);
        assert!(!local.has_undef);
    }
}
