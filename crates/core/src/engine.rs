//! Unified selection of the execution backend.
//!
//! Three evaluators can enumerate a function's behaviors: the retained
//! tree-walk ([`crate::exec::reference`]), the compiled plan machine
//! ([`crate::plan`]), and the bit-sliced backend ([`crate::bitslice`]).
//! All three produce byte-identical [`OutcomeSet`](crate::OutcomeSet)s on the programs
//! they support; they differ only in cost. Downstream code (the
//! refinement checker, campaigns, benches) selects one with [`Engine`]
//! and calls [`enumerate_function`] — never a concrete evaluator.

use frost_ir::Module;

use crate::bitslice::BitslicePlan;
use crate::cache::EnumeratedOutcomes;
use crate::exec::{reference, ExecError, Limits};
use crate::mem::Memory;
use crate::plan::{Machine, ModulePlan};
use crate::sem::Semantics;
use crate::val::Val;

/// Which evaluator enumerates function behaviors.
///
/// The default is [`Engine::Auto`]: bit-sliced whenever the (function,
/// inputs, limits) combination is eligible (straight-line all-i2-ish
/// scalar code — the §6 corpus shape), the plan machine otherwise.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum Engine {
    /// The tree-walk interpreter retained for differential testing.
    /// Slowest; supports everything.
    Reference,
    /// The compiled step-stream machine with prefix-resuming
    /// enumeration. Supports everything.
    Plan,
    /// The bit-sliced backend: every input tuple evaluated at once as
    /// lanes of word-wide plane operations. *Strict*: inputs it cannot
    /// slice report [`ExecError::Unsupported`] rather than falling
    /// back — useful for tests and benches that must not silently
    /// change engines.
    BitSliced,
    /// Bit-sliced when eligible, plan otherwise.
    #[default]
    Auto,
}

/// Enumerates every behavior of `name` on each input tuple using the
/// chosen `engine`. One entry per tuple, in order; failures stay
/// per-tuple so callers reproduce the sequential checker's verdicts
/// exactly.
///
/// This is the single entry point behind `frost_refine::check` and
/// `frost_fuzz` validation — the concrete evaluators are
/// implementation detail.
pub fn enumerate_function(
    module: &Module,
    name: &str,
    inputs: &[Vec<Val>],
    mem: &Memory,
    sem: Semantics,
    limits: Limits,
    engine: Engine,
) -> EnumeratedOutcomes {
    if engine == Engine::Reference {
        return inputs
            .iter()
            .map(|args| reference::enumerate_outcomes(module, name, args, mem, sem, limits))
            .collect();
    }
    let plan = ModulePlan::compile(module, sem);
    let Some(idx) = plan.function_index(name) else {
        return inputs
            .iter()
            .map(|_| Err(ExecError::BadFunction(format!("no function @{name}"))))
            .collect();
    };
    run_compiled(&plan, idx, inputs, mem, limits, engine)
}

/// Runs an already-compiled plan over every input under a plan-backed
/// engine ([`Engine::Plan`], [`Engine::BitSliced`], or [`Engine::Auto`]
/// — never [`Engine::Reference`], which has no compiled form).
pub(crate) fn run_compiled(
    plan: &ModulePlan,
    idx: usize,
    inputs: &[Vec<Val>],
    mem: &Memory,
    limits: Limits,
    engine: Engine,
) -> EnumeratedOutcomes {
    match engine {
        Engine::Reference => unreachable!("reference engine has no compiled form"),
        Engine::Plan => plan_loop(plan, idx, inputs, mem, limits),
        Engine::BitSliced => match BitslicePlan::compile(plan, idx, inputs, limits) {
            Ok(bp) => bp.evaluate(mem).into_iter().map(Ok).collect(),
            Err(e) => inputs.iter().map(|_| Err(e.clone())).collect(),
        },
        Engine::Auto => match BitslicePlan::compile(plan, idx, inputs, limits) {
            Ok(bp) => bp.evaluate(mem).into_iter().map(Ok).collect(),
            Err(_) => plan_loop(plan, idx, inputs, mem, limits),
        },
    }
}

fn plan_loop(
    plan: &ModulePlan,
    idx: usize,
    inputs: &[Vec<Val>],
    mem: &Memory,
    limits: Limits,
) -> EnumeratedOutcomes {
    let mut machine = Machine::new();
    inputs
        .iter()
        .map(|args| plan.enumerate(idx, args, mem, limits, &mut machine))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use frost_ir::{parse_module, Ty};

    fn i2_space() -> Vec<Vec<Val>> {
        let mut vals: Vec<Val> = (0..4).map(|v| Val::int(2, v)).collect();
        vals.push(Val::Poison);
        vals.push(Val::Undef(Ty::Int(2)));
        vals.iter().map(|v| vec![v.clone()]).collect()
    }

    #[test]
    fn all_engines_agree_on_an_eligible_function() {
        let m = parse_module(
            "define i2 @f(i2 %x) {\nentry:\n  %a = add nsw i2 %x, 1\n  %b = freeze i2 %a\n  ret i2 %b\n}",
        )
        .unwrap();
        let run = |engine| {
            enumerate_function(
                &m,
                "f",
                &i2_space(),
                &Memory::zeroed(0),
                Semantics::legacy_gvn(),
                Limits::default(),
                engine,
            )
        };
        let reference = run(Engine::Reference);
        for engine in [Engine::Plan, Engine::BitSliced, Engine::Auto] {
            assert_eq!(reference, run(engine), "{engine:?} diverged");
        }
    }

    #[test]
    fn strict_bitsliced_reports_ineligibility_while_auto_falls_back() {
        let m = parse_module(
            "define i2 @f(i1 %c) {\nentry:\n  br i1 %c, label %a, label %b\na:\n  ret i2 1\nb:\n  ret i2 0\n}",
        )
        .unwrap();
        let inputs = vec![vec![Val::int(1, 0)], vec![Val::int(1, 1)]];
        let run = |engine| {
            enumerate_function(
                &m,
                "f",
                &inputs,
                &Memory::zeroed(0),
                Semantics::proposed(),
                Limits::default(),
                engine,
            )
        };
        assert!(run(Engine::BitSliced)
            .iter()
            .all(|r| matches!(r, Err(ExecError::Unsupported(_)))));
        assert_eq!(run(Engine::Auto), run(Engine::Plan));
    }
}
