//! Bit-sliced exhaustive evaluation: the third execution backend.
//!
//! The plan engine ([`crate::plan`]) runs one input tuple at a time;
//! §6-scale sweeps run the same tiny function on *every* tuple of its
//! input space, so even a compiled plan pays the interpreter loop once
//! per tuple. This module transposes that loop: each SSA value becomes
//! a set of **bitplanes** — one 64-bit word per possible concrete value
//! (a one-hot indicator: bit `l` of plane `v` says "in lane `l` this
//! value is `v`"), plus a poison plane and an undef plane — and each
//! input tuple becomes one *lane* of those words. Every `Step` of a
//! straight-line `FnPlan` lowers to a handful of AND/OR combinations
//! over the planes (binops become compile-time truth tables applied
//! plane-by-plane, so division UB, `nsw`-poison, and shift-overflow all
//! fall out of the same table walk), and a single pass evaluates the
//! function on all ≤64 tuples at once.
//!
//! ## Nondeterminism: plane-set enumeration
//!
//! Undef resolution, freeze, and nondeterministic select are *choice
//! points*. The plan engine demands choices lazily per run; here every
//! static choice site gets a variable with a compile-time domain, and
//! the bitplane program is evaluated once per point of the joint domain
//! (an odometer over the variables). Per lane this is a superset of the
//! lazily-demanded enumeration: a lane that never demands a variable
//! produces the same outcome at every value of it, and the sorted
//! deduplicating `OutcomeSet` absorbs the repeats — so the per-lane
//! union over all scripts equals the plan engine's per-tuple set
//! exactly. Eligibility (see [`BitslicePlan::compile`]) caps the joint
//! domain and rules out every limit error either engine could hit, so
//! agreement is byte-identical, not merely observational.
//!
//! The reference tree-walk and the plan machine survive as differential
//! oracles; `tests/exec_bitslice.rs` gates all three engines against
//! each other over the §6 corpus.

use std::cell::RefCell;
use std::sync::{Arc, OnceLock};

use frost_ir::{BinOp, CastKind, Cond, Flags, Ty};

use crate::exec::{ExecError, Limits};
use crate::fasthash::FastHashMap;
use crate::mem::Memory;
use crate::ops::{eval_binop, eval_cast, eval_icmp, ScalarResult};
use crate::outcome::{Outcome, OutcomeSet};
use crate::plan::{FnPlan, ModulePlan, Opnd, Step};
use crate::sem::PoisonAction;
use crate::val::Val;

/// Widest integer the backend slices: `1 << MAX_BITS` value planes.
const MAX_BITS: u32 = 3;
/// Value planes per register (`1 << MAX_BITS`).
const NVALS: usize = 1 << MAX_BITS;
/// Cap on the joint choice domain (scripts per pass); programs beyond
/// it fall back to the plan engine under [`Engine::Auto`].
///
/// [`Engine::Auto`]: crate::engine::Engine::Auto
const SCRIPT_CAP: u64 = 4096;

/// Outcome codes accumulated across scripts. Codes `0..NVALS` are the
/// concrete return values; the rest are below. Accumulation is itself
/// plane-sliced: one lane-mask word per code, OR-merged per script.
const CODE_POISON: u32 = 8;
const CODE_UNDEF: u32 = 9;
const CODE_UB: u32 = 10;
const CODE_RET_VOID: u32 = 11;
const NCODES: usize = 12;

/// One SSA value across every lane: one-hot value-indicator planes plus
/// a poison plane and an undef plane. Invariant: for each live lane
/// exactly one of `val[0..n]`, `poison`, `undef` has the lane bit set.
#[derive(Clone, Copy, Default)]
struct Planes {
    val: [u64; NVALS],
    poison: u64,
    undef: u64,
}

/// Output class of one truth-table entry.
#[derive(Clone, Copy)]
enum Class {
    Val(u8),
    Poison,
    Undef,
    Ub,
}

/// Memoization key for a truth table: tables depend only on the
/// opcode, its attributes, and the operand width — never on the
/// function being lowered — so each worker thread computes each one
/// once per process instead of once per compiled function.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
enum TabKey {
    Bin {
        op: BinOp,
        flags: Flags,
        bits: u32,
        undef_on_wrap: bool,
    },
    Icmp {
        cond: Cond,
        bits: u32,
    },
    Cast {
        kind: CastKind,
        from_bits: u32,
        to_bits: u32,
    },
}

thread_local! {
    static TABLES: RefCell<FastHashMap<TabKey, Arc<[Class]>>> =
        RefCell::new(FastHashMap::default());
    static TABLE_MRU: RefCell<Vec<(TabKey, Arc<[Class]>)>> = const { RefCell::new(Vec::new()) };
}

/// Entries kept in the move-to-front probe line in front of [`TABLES`].
/// A §6 sweep compiles millions of near-identically shaped functions,
/// so consecutive compiles request the same handful of tables over and
/// over; eight slots cover a whole op/width family and turn the common
/// lookup into a short scan of `Copy` keys instead of a hash probe.
const TABLE_MRU_CAP: usize = 8;

/// Returns the memoized truth table for `key`, building it on first
/// use. `Arc`-shared so cached compiles stay `Send`.
fn memo_table(key: TabKey, build: impl FnOnce() -> Vec<Class>) -> Arc<[Class]> {
    TABLE_MRU.with(|mru| {
        let mut mru = mru.borrow_mut();
        if let Some(i) = mru.iter().position(|(k, _)| *k == key) {
            if i > 0 {
                let entry = mru.remove(i);
                mru.insert(0, entry);
            }
            return mru[0].1.clone();
        }
        let table = TABLES.with(|t| {
            t.borrow_mut()
                .entry(key)
                .or_insert_with(|| build().into())
                .clone()
        });
        mru.insert(0, (key, Arc::clone(&table)));
        mru.truncate(TABLE_MRU_CAP);
        table
    })
}

/// One lowered operation over the register file of [`Planes`].
enum SOp {
    /// Resolve undef at a use (§3.1): lanes with the undef bit set
    /// collapse to the value chosen by `var`; everything else copies.
    Resolve { src: u32, dst: u32, var: u32 },
    /// Binary op or icmp via a `(n+1)²` truth table; row/column `n`
    /// is the poison class. Entries may be UB (division).
    Table2 {
        table: Arc<[Class]>,
        n: usize,
        lhs: u32,
        rhs: u32,
        dst: u32,
    },
    /// Unary op (casts) via a `n+1` truth table; entry `n` is poison.
    Table1 {
        table: Arc<[Class]>,
        n: usize,
        val: u32,
        dst: u32,
    },
    Select {
        poison_cond: PoisonAction,
        propagate_unselected: bool,
        /// Present iff the condition may be poison under `Nondet`.
        nondet_var: Option<u32>,
        cond: u32,
        tval: u32,
        fval: u32,
        dst: u32,
    },
    Freeze {
        /// Present iff the operand may be poison or undef.
        var: Option<u32>,
        n: usize,
        val: u32,
        dst: u32,
    },
}

/// What the final `ret` returns.
enum RetSpec {
    Void,
    Reg(u32),
}

/// A register-file checkpoint taken just before a choice site: the
/// machine state there depends only on earlier variables, so suffix
/// re-execution resumes from it when a later variable advances.
#[derive(Default)]
struct Snap {
    regs: Vec<Planes>,
    ub: u64,
}

/// Per-thread evaluation arena, reused across [`BitslicePlan::evaluate`]
/// calls: generated §6 functions are near-identically shaped, so the
/// buffers reach steady-state capacity after the first few functions
/// and the hot loop stops allocating entirely. (The inner `Snap`
/// register vectors keep their capacity across reuse too.)
#[derive(Default)]
struct Scratch {
    regs: Vec<Planes>,
    snaps: Vec<Snap>,
    choice: Vec<u64>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Plane-word operations one execution of `op` performs (telemetry:
/// `frost.core.bitslice.plane_ops` counts operations actually
/// executed, so suffix re-execution is visible as a reduction).
fn op_weight(op: &SOp) -> u64 {
    match op {
        SOp::Resolve { .. } | SOp::Freeze { .. } => NVALS as u64 + 2,
        SOp::Table2 { n, .. } => ((n + 1) * (n + 1)) as u64,
        SOp::Table1 { n, .. } => *n as u64 + 1,
        SOp::Select { .. } => NVALS as u64 + 8,
    }
}

/// A function compiled to a bitplane program over a fixed input-tuple
/// list. Build with [`BitslicePlan::compile`]; run every tuple at once
/// with [`BitslicePlan::evaluate`].
pub struct BitslicePlan {
    ops: Vec<SOp>,
    /// Register-file template: parameter and constant planes filled in,
    /// instruction/scratch registers zeroed (each is written before it
    /// is read — straight-line SSA).
    regs_init: Vec<Planes>,
    reg_bits: Vec<u32>,
    /// Choice-variable domains, in static demand order.
    vars: Vec<u64>,
    /// For each variable, the index of the (unique) op consuming it.
    /// Strictly ascending: variables are allocated in op order.
    var_op: Vec<u32>,
    lanes: usize,
    ret: RetSpec,
}

/// Always-on counters (`frost.core.bitslice.*`; see
/// docs/OBSERVABILITY.md).
struct BitsliceCounters {
    compiles: &'static frost_telemetry::Counter,
    plane_ops: &'static frost_telemetry::Counter,
    tuples_per_pass: &'static frost_telemetry::Counter,
    mem_rejects: &'static frost_telemetry::Counter,
    guard_rejects: &'static frost_telemetry::Counter,
}

fn bitslice_counters() -> &'static BitsliceCounters {
    static COUNTERS: OnceLock<BitsliceCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| BitsliceCounters {
        compiles: frost_telemetry::counter("frost.core.bitslice.compiles"),
        plane_ops: frost_telemetry::counter("frost.core.bitslice.plane_ops"),
        tuples_per_pass: frost_telemetry::counter("frost.core.bitslice.tuples_per_pass"),
        mem_rejects: frost_telemetry::counter("frost.core.bitslice.mem_rejects"),
        guard_rejects: frost_telemetry::counter("frost.core.bitslice.guard_rejects"),
    })
}

fn ineligible(why: impl Into<String>) -> ExecError {
    ExecError::Unsupported(format!("bitslice: {}", why.into()))
}

/// Compile-time state while lowering one `FnPlan`.
struct Lowerer {
    ops: Vec<SOp>,
    regs_init: Vec<Planes>,
    reg_bits: Vec<u32>,
    may_poison: Vec<bool>,
    may_undef: Vec<bool>,
    vars: Vec<u64>,
    var_op: Vec<u32>,
    num_params: usize,
    num_consts: usize,
}

impl Lowerer {
    /// Register index of a plan operand.
    fn reg(&self, o: Opnd) -> u32 {
        match o {
            Opnd::Slot(i) if (i as usize) < self.num_params => i,
            Opnd::Slot(i) => i + self.num_consts as u32,
            Opnd::Const(i) => self.num_params as u32 + i,
        }
    }

    /// Register index of a step's destination slot.
    fn dst_reg(&self, dst: u32) -> u32 {
        dst + self.num_consts as u32
    }

    fn push_reg(&mut self, planes: Planes, bits: u32, mp: bool, mu: bool) -> u32 {
        self.regs_init.push(planes);
        self.reg_bits.push(bits);
        self.may_poison.push(mp);
        self.may_undef.push(mu);
        (self.regs_init.len() - 1) as u32
    }

    fn set_dst(&mut self, reg: u32, bits: u32, mp: bool, mu: bool) {
        let r = reg as usize;
        self.reg_bits[r] = bits;
        self.may_poison[r] = mp;
        self.may_undef[r] = mu;
    }

    /// Allocates a choice variable. Must be called immediately before
    /// pushing the op that consumes it — the suffix re-execution in
    /// [`BitslicePlan::evaluate`] relies on `var_op` naming that op.
    fn push_var(&mut self, domain: u64) -> u32 {
        self.vars.push(domain);
        self.var_op.push(self.ops.len() as u32);
        (self.vars.len() - 1) as u32
    }

    /// Emits an undef-resolving copy for a use site if the operand may
    /// be undef (each *use* resolves independently, as in the plan
    /// engine's `resolve_use`). Returns the register to read instead.
    fn resolve(&mut self, reg: u32) -> Result<u32, ExecError> {
        if !self.may_undef[reg as usize] {
            return Ok(reg);
        }
        let bits = self.reg_bits[reg as usize];
        if bits == 0 || bits > MAX_BITS {
            return Err(ineligible(format!("cannot resolve undef of {bits} bits")));
        }
        let var = self.push_var(1u64 << bits);
        let mp = self.may_poison[reg as usize];
        let dst = self.push_reg(Planes::default(), bits, mp, false);
        self.ops.push(SOp::Resolve { src: reg, dst, var });
        Ok(dst)
    }
}

/// Classifies `eval_binop`'s verdict, applying the §2.4 strawman
/// (`undef_on_wrap`) exactly as the plan engine's `bin_scalar` does.
fn bin_class(op: BinOp, flags: frost_ir::Flags, bits: u32, uow: bool, x: u128, y: u128) -> Class {
    match eval_binop(op, flags, bits, x, y) {
        ScalarResult::Val(v) => Class::Val(v as u8),
        ScalarResult::Poison => {
            if uow {
                Class::Undef
            } else {
                Class::Poison
            }
        }
        ScalarResult::Ub => Class::Ub,
    }
}

impl BitslicePlan {
    /// Lowers function `idx` of `plan` to a bitplane program over
    /// `inputs` (one lane per tuple).
    ///
    /// # Eligibility
    ///
    /// Returns [`ExecError::Unsupported`] unless the function is
    /// straight-line (a single block of `Bin`/`Icmp`/`Select`/`Freeze`/
    /// `Cast` steps ending in `ret`), all values are scalar integers of
    /// ≤ 3 bits, there are at most 64 input tuples (all integers,
    /// poison, or undef), the joint choice domain is small, and
    /// `limits` are generous enough that neither this backend nor the
    /// plan engine could hit a fuel/state/fanout error — which is what
    /// makes the two engines' outcome sets *byte-identical* rather than
    /// merely equivalent.
    ///
    /// # Errors
    ///
    /// All failures are eligibility failures, reported as
    /// [`ExecError::Unsupported`].
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn compile(
        plan: &ModulePlan,
        idx: usize,
        inputs: &[Vec<Val>],
        limits: Limits,
    ) -> Result<BitslicePlan, ExecError> {
        let fp: &FnPlan = plan.fn_plan(idx);
        let lanes = inputs.len();
        if lanes == 0 || lanes > 64 {
            return Err(ineligible(format!("{lanes} input tuples (need 1..=64)")));
        }
        if inputs.iter().any(|t| t.len() != fp.num_params) {
            return Err(ineligible("argument-count mismatch"));
        }

        let mut lo = Lowerer {
            ops: Vec::with_capacity(fp.steps.len() * 2),
            regs_init: Vec::new(),
            reg_bits: Vec::new(),
            may_poison: Vec::new(),
            may_undef: Vec::new(),
            vars: Vec::new(),
            var_op: Vec::new(),
            num_params: fp.num_params,
            num_consts: fp.consts.len(),
        };

        // Parameter planes: transpose the tuple list into lane masks.
        for p in 0..fp.num_params {
            let mut planes = Planes::default();
            let mut bits: Option<u32> = None;
            for (l, tuple) in inputs.iter().enumerate() {
                let lane = 1u64 << l;
                match &tuple[p] {
                    Val::Int { bits: b, v } if *b <= MAX_BITS => {
                        if *bits.get_or_insert(*b) != *b {
                            return Err(ineligible("mixed widths for one parameter"));
                        }
                        planes.val[*v as usize] |= lane;
                    }
                    Val::Poison => planes.poison |= lane,
                    Val::Undef(Ty::Int(b)) if *b <= MAX_BITS => {
                        if *bits.get_or_insert(*b) != *b {
                            return Err(ineligible("mixed widths for one parameter"));
                        }
                        planes.undef |= lane;
                    }
                    other => return Err(ineligible(format!("argument {other}"))),
                }
            }
            let Some(bits) = bits else {
                return Err(ineligible("parameter with no defined input value"));
            };
            let (mp, mu) = (planes.poison != 0, planes.undef != 0);
            lo.push_reg(planes, bits, mp, mu);
        }

        // Constant planes: the same class in every lane.
        let all = if lanes == 64 {
            u64::MAX
        } else {
            (1u64 << lanes) - 1
        };
        for c in &fp.consts {
            match c {
                Val::Int { bits, v } if *bits <= MAX_BITS => {
                    let mut planes = Planes::default();
                    planes.val[*v as usize] = all;
                    lo.push_reg(planes, *bits, false, false);
                }
                Val::Poison => {
                    let planes = Planes {
                        poison: all,
                        ..Planes::default()
                    };
                    lo.push_reg(planes, 0, true, false);
                }
                Val::Undef(Ty::Int(bits)) if *bits <= MAX_BITS => {
                    let planes = Planes {
                        undef: all,
                        ..Planes::default()
                    };
                    lo.push_reg(planes, *bits, false, true);
                }
                other => return Err(ineligible(format!("constant {other}"))),
            }
        }
        // Instruction registers: sized to the highest slot any step
        // names (instruction ids may be sparse), poison-filled like the
        // plan's frame — SSA writes every live slot before its first
        // read, so the filler is only ever visible to malformed input.
        let mut max_slot_excl = fp.num_params as u32;
        for step in &fp.steps {
            let mut touch = |o: &Opnd| {
                if let Opnd::Slot(i) = o {
                    max_slot_excl = max_slot_excl.max(i + 1);
                }
            };
            match step {
                Step::Bin { lhs, rhs, dst, .. } | Step::Icmp { lhs, rhs, dst, .. } => {
                    touch(lhs);
                    touch(rhs);
                    max_slot_excl = max_slot_excl.max(dst + 1);
                }
                Step::Select {
                    cond,
                    tval,
                    fval,
                    dst,
                    ..
                } => {
                    touch(cond);
                    touch(tval);
                    touch(fval);
                    max_slot_excl = max_slot_excl.max(dst + 1);
                }
                Step::Freeze { val, dst, .. } | Step::Cast { val, dst, .. } => {
                    touch(val);
                    max_slot_excl = max_slot_excl.max(dst + 1);
                }
                Step::Ret { val: Some(o) } => touch(o),
                Step::Ret { val: None } => {}
                _ => {} // rejected by lower_step below
            }
        }
        let poison_fill = Planes {
            poison: all,
            ..Planes::default()
        };
        for _ in fp.num_params as u32..max_slot_excl {
            lo.push_reg(poison_fill, 0, true, false);
        }

        // Guards are categorically ineligible, like memory: `assume`
        // and `unreachable` turn per-lane facts into *immediate* UB,
        // but one shared pass evaluates all lanes together — a single
        // UB lane would have to poison-taint the whole register file.
        // The plan compiler flags them (via the descriptor table's
        // `UbClass::Guard`); reject before the trailing-ret shape check
        // so that `unreachable`-terminated bodies (which have no
        // trailing ret) still land on this counter, and bump it exactly
        // once per compile so `Engine::Auto` fallbacks are countable.
        if fp.has_guards {
            bitslice_counters().guard_rejects.incr();
            return Err(ineligible("guard instruction"));
        }

        let Some((Step::Ret { val: ret_val }, body)) = fp.steps.split_last() else {
            return Err(ineligible("no trailing ret"));
        };

        for step in body {
            lower_step(&mut lo, step)?;
        }

        let ret = match ret_val {
            None => RetSpec::Void,
            Some(o) => {
                let r = lo.reg(*o);
                let bits = lo.reg_bits[r as usize];
                if bits > MAX_BITS {
                    return Err(ineligible("wide return"));
                }
                RetSpec::Reg(r)
            }
        };

        // Joint choice domain and limit headroom: rule out every path
        // on which either engine could report a limit error, so set
        // equality is guaranteed, not sampled.
        let mut product: u64 = 1;
        for &d in &lo.vars {
            if d > limits.max_fanout {
                return Err(ineligible("choice domain exceeds fanout limit"));
            }
            product = product.saturating_mul(d);
            if product > SCRIPT_CAP {
                return Err(ineligible("joint choice domain too large"));
            }
        }
        // The plan engine charges one entry-block visit plus one step
        // per non-terminator instruction per run.
        if u64::try_from(fp.steps.len()).unwrap_or(u64::MAX) + 1 > limits.max_steps {
            return Err(ineligible("step limit too tight"));
        }
        // Worst-case states per tuple in the plan engine's DFS is
        // bounded by the full choice tree; `1 + depth·product` bounds
        // the prefix-product sum for any demand order.
        let states_bound = 1 + (lo.vars.len() as u64).saturating_mul(product);
        if states_bound > limits.max_states {
            return Err(ineligible("state limit too tight"));
        }

        bitslice_counters().compiles.incr();
        Ok(BitslicePlan {
            ops: lo.ops,
            regs_init: lo.regs_init,
            reg_bits: lo.reg_bits,
            vars: lo.vars,
            var_op: lo.var_op,
            lanes,
            ret,
        })
    }

    /// Number of input tuples (lanes) evaluated per pass.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Number of choice scripts one [`BitslicePlan::evaluate`] pass
    /// enumerates (the joint nondeterminism domain).
    pub fn scripts(&self) -> u64 {
        self.vars.iter().product::<u64>().max(1)
    }

    /// Evaluates every lane under every choice script and returns one
    /// [`OutcomeSet`] per input tuple, in input order — byte-identical
    /// to running [`ModulePlan::enumerate`] on each tuple.
    ///
    /// The odometer over the joint choice domain bumps the *last*
    /// variable fastest, and the register file is checkpointed just
    /// before each choice site — machine state there depends only on
    /// earlier variables — so the common step re-executes just the ops
    /// after the final choice site instead of the whole program.
    ///
    /// `mem` is the initial memory; eligible programs never touch it,
    /// so it only flows into the returned `Ret` outcomes' snapshots.
    pub fn evaluate(&self, mem: &Memory) -> Vec<OutcomeSet> {
        let ctrs = bitslice_counters();
        ctrs.tuples_per_pass.add(self.lanes as u64);

        // §6 sweeps call `evaluate` once per generated function; the
        // register file, the per-variable checkpoints, and the choice
        // odometer are all shaped alike across those calls, so each
        // worker thread reuses one scratch arena instead of paying a
        // malloc/free round-trip (and the allocator's trim churn) per
        // function.
        let seen = SCRATCH.with(|cell| {
            let scratch = &mut *cell.borrow_mut();
            let Scratch {
                regs,
                snaps,
                choice,
            } = scratch;
            regs.clear();
            regs.extend_from_slice(&self.regs_init);
            let nvars = self.vars.len();
            if snaps.len() < nvars {
                snaps.resize_with(nvars, Snap::default);
            }
            let snaps = &mut snaps[..nvars];
            choice.clear();
            choice.resize(nvars, 0);

            let mut seen = [0u64; NCODES];
            let mut executed: u64 = 0;
            let ub = self.run_range(0, regs, 0, choice, snaps, 0, &mut executed);
            self.record(regs, ub, &mut seen);
            'odometer: loop {
                // Find the last variable with room to advance;
                // everything after it wraps to zero.
                let mut d = nvars;
                loop {
                    if d == 0 {
                        break 'odometer;
                    }
                    d -= 1;
                    choice[d] += 1;
                    if choice[d] < self.vars[d] {
                        break;
                    }
                    choice[d] = 0;
                }
                // Restore the checkpoint taken before variable `d`'s op
                // and re-run the suffix (re-checkpointing later
                // variables).
                let start = self.var_op[d] as usize;
                let start_ub = snaps[d].ub;
                regs.clear();
                regs.extend_from_slice(&snaps[d].regs);
                let ub = self.run_range(start, regs, start_ub, choice, snaps, d + 1, &mut executed);
                self.record(regs, ub, &mut seen);
            }
            ctrs.plane_ops.add(executed);
            seen
        });
        self.build(&seen, mem)
    }

    /// Executes `ops[start..]` under the current choice script, taking
    /// a checkpoint just before each choice site from `next_var` on.
    /// Takes the accumulated UB mask at `start` and returns the final
    /// one; `executed` accrues plane-word operation counts (telemetry).
    #[allow(clippy::too_many_arguments)]
    fn run_range(
        &self,
        start: usize,
        regs: &mut [Planes],
        mut ub: u64,
        choice: &[u64],
        snaps: &mut [Snap],
        mut next_var: usize,
        executed: &mut u64,
    ) -> u64 {
        for (i, op) in self.ops.iter().enumerate().skip(start) {
            if next_var < self.var_op.len() && self.var_op[next_var] as usize == i {
                snaps[next_var].regs.clear();
                snaps[next_var].regs.extend_from_slice(regs);
                snaps[next_var].ub = ub;
                next_var += 1;
            }
            *executed += op_weight(op);
            match op {
                SOp::Resolve { src, dst, var } => {
                    let s = regs[*src as usize];
                    let k = choice[*var as usize] as usize;
                    let mut out = Planes {
                        val: s.val,
                        poison: s.poison,
                        undef: 0,
                    };
                    out.val[k] |= s.undef;
                    regs[*dst as usize] = out;
                }
                SOp::Table2 {
                    table,
                    n,
                    lhs,
                    rhs,
                    dst,
                } => {
                    let a = regs[*lhs as usize];
                    let b = regs[*rhs as usize];
                    let mut out = Planes::default();
                    let sel = |p: &Planes, i: usize| if i == *n { p.poison } else { p.val[i] };
                    for ai in 0..=*n {
                        let am = sel(&a, ai);
                        if am == 0 {
                            continue;
                        }
                        for bi in 0..=*n {
                            let m = am & sel(&b, bi);
                            if m == 0 {
                                continue;
                            }
                            match table[ai * (*n + 1) + bi] {
                                Class::Val(v) => out.val[v as usize] |= m,
                                Class::Poison => out.poison |= m,
                                Class::Undef => out.undef |= m,
                                Class::Ub => ub |= m,
                            }
                        }
                    }
                    regs[*dst as usize] = out;
                }
                SOp::Table1 { table, n, val, dst } => {
                    let s = regs[*val as usize];
                    let mut out = Planes::default();
                    let sel = |p: &Planes, i: usize| if i == *n { p.poison } else { p.val[i] };
                    for i in 0..=*n {
                        let m = sel(&s, i);
                        if m == 0 {
                            continue;
                        }
                        match table[i] {
                            Class::Val(v) => out.val[v as usize] |= m,
                            Class::Poison => out.poison |= m,
                            Class::Undef => out.undef |= m,
                            Class::Ub => ub |= m,
                        }
                    }
                    regs[*dst as usize] = out;
                }
                SOp::Select {
                    poison_cond,
                    propagate_unselected,
                    nondet_var,
                    cond,
                    tval,
                    fval,
                    dst,
                } => {
                    let c = regs[*cond as usize];
                    let t = regs[*tval as usize];
                    let f = regs[*fval as usize];
                    let mut out = Planes::default();
                    // `taken` iff the (resolved) condition is exactly 1,
                    // as in the plan's `v == 1` test.
                    let mut taken = c.val[1];
                    let mut not_taken = 0u64;
                    for (v, plane) in c.val.iter().enumerate() {
                        if v != 1 {
                            not_taken |= plane;
                        }
                    }
                    match poison_cond {
                        PoisonAction::Propagate => out.poison |= c.poison,
                        PoisonAction::Ub => ub |= c.poison,
                        PoisonAction::Nondet => {
                            let k = nondet_var.map_or(0, |v| choice[v as usize]);
                            if k == 1 {
                                taken |= c.poison;
                            } else {
                                not_taken |= c.poison;
                            }
                        }
                    }
                    if *propagate_unselected {
                        let arm_poison = (taken | not_taken) & (t.poison | f.poison);
                        out.poison |= arm_poison;
                        taken &= !arm_poison;
                        not_taken &= !arm_poison;
                    }
                    for v in 0..NVALS {
                        out.val[v] = (t.val[v] & taken) | (f.val[v] & not_taken);
                    }
                    out.poison |= (t.poison & taken) | (f.poison & not_taken);
                    out.undef = (t.undef & taken) | (f.undef & not_taken);
                    regs[*dst as usize] = out;
                }
                SOp::Freeze { var, n, val, dst } => {
                    let s = regs[*val as usize];
                    let k = var.map_or(0, |v| choice[v as usize]) as usize;
                    let mut out = Planes {
                        val: s.val,
                        poison: 0,
                        undef: 0,
                    };
                    debug_assert!(k < *n || (s.poison | s.undef) == 0);
                    out.val[k.min(n - 1)] |= s.poison | s.undef;
                    regs[*dst as usize] = out;
                }
            }
        }
        ub
    }

    /// Folds one script's final state into the per-code lane masks —
    /// a dozen OR-merges, independent of the lane count.
    fn record(&self, regs: &[Planes], ub: u64, seen: &mut [u64; NCODES]) {
        let live = !ub;
        match &self.ret {
            RetSpec::Void => {
                let all = if self.lanes == 64 {
                    u64::MAX
                } else {
                    (1u64 << self.lanes) - 1
                };
                seen[CODE_RET_VOID as usize] |= live & all;
            }
            RetSpec::Reg(r) => {
                let p = &regs[*r as usize];
                for (v, plane) in p.val.iter().enumerate() {
                    seen[v] |= plane & live;
                }
                seen[CODE_POISON as usize] |= p.poison & live;
                seen[CODE_UNDEF as usize] |= p.undef & live;
            }
        }
        seen[CODE_UB as usize] |= ub;
    }

    /// Transposes the per-code lane masks into concrete
    /// [`OutcomeSet`]s, one per lane.
    fn build(&self, seen: &[u64; NCODES], mem: &Memory) -> Vec<OutcomeSet> {
        let mem_snap = mem.snapshot();
        let ret_bits = match &self.ret {
            RetSpec::Void => 0,
            RetSpec::Reg(r) => self.reg_bits[*r as usize],
        };
        (0..self.lanes)
            .map(|l| {
                // Gather this lane's bit from each code mask.
                let mut s = 0u16;
                for (c, mask) in seen.iter().enumerate() {
                    s |= ((mask >> l & 1) as u16) << c;
                }
                // Emitted in ascending `Outcome` order (`Ub < Ret`,
                // `None < Some`, `Int < Poison < Undef`) with exact
                // capacity, so no sorting or insertion shifting.
                let mut outcomes = Vec::with_capacity(s.count_ones() as usize);
                if s >> CODE_UB & 1 == 1 {
                    outcomes.push(Outcome::Ub);
                }
                let mut ret = |val: Option<Val>| {
                    outcomes.push(Outcome::Ret {
                        val,
                        mem: mem_snap.clone(),
                        trace: Vec::new(),
                    });
                };
                if s >> CODE_RET_VOID & 1 == 1 {
                    ret(None);
                }
                for v in 0..NVALS as u32 {
                    if s >> v & 1 == 1 {
                        ret(Some(Val::int(ret_bits, u128::from(v))));
                    }
                }
                if s >> CODE_POISON & 1 == 1 {
                    ret(Some(Val::Poison));
                }
                if s >> CODE_UNDEF & 1 == 1 {
                    ret(Some(Val::Undef(Ty::Int(ret_bits))));
                }
                OutcomeSet::from_sorted(outcomes)
            })
            .collect()
    }
}

/// Lowers one non-terminator plan step, or reports ineligibility.
fn lower_step(lo: &mut Lowerer, step: &Step) -> Result<(), ExecError> {
    match step {
        Step::Bin {
            op,
            flags,
            bits,
            vlen: None,
            undef_on_wrap,
            lhs,
            rhs,
            dst,
        } => {
            if *bits > MAX_BITS {
                return Err(ineligible(format!("i{bits} binop")));
            }
            let l = lo.resolve(lo.reg(*lhs))?;
            let r = lo.resolve(lo.reg(*rhs))?;
            let n = 1usize << *bits;
            let key = TabKey::Bin {
                op: *op,
                flags: *flags,
                bits: *bits,
                undef_on_wrap: *undef_on_wrap,
            };
            let table = memo_table(key, || {
                let mut table = Vec::with_capacity((n + 1) * (n + 1));
                for ai in 0..=n {
                    for bi in 0..=n {
                        table.push(if op.may_have_immediate_ub() {
                            // Division (mirrors the plan's `bin_scalar`):
                            // poison or zero divisor is UB; a poison
                            // dividend is UB only when the signed-overflow
                            // case is reachable (divisor = -1), else poison.
                            if bi == n || bi == 0 {
                                Class::Ub
                            } else if ai == n {
                                let minus1 = Val::int(*bits, bi as u128).as_signed() == Some(-1);
                                if matches!(op, BinOp::SDiv | BinOp::SRem) && minus1 {
                                    Class::Ub
                                } else {
                                    Class::Poison
                                }
                            } else {
                                bin_class(
                                    *op,
                                    *flags,
                                    *bits,
                                    *undef_on_wrap,
                                    ai as u128,
                                    bi as u128,
                                )
                            }
                        } else if ai == n || bi == n {
                            Class::Poison
                        } else {
                            bin_class(*op, *flags, *bits, *undef_on_wrap, ai as u128, bi as u128)
                        });
                    }
                }
                table
            });
            let mp = table.iter().any(|c| matches!(c, Class::Poison));
            let mu = table.iter().any(|c| matches!(c, Class::Undef));
            let d = lo.dst_reg(*dst);
            lo.set_dst(d, *bits, mp, mu);
            lo.ops.push(SOp::Table2 {
                table,
                n,
                lhs: l,
                rhs: r,
                dst: d,
            });
            Ok(())
        }
        Step::Icmp {
            cond,
            vlen: None,
            lhs,
            rhs,
            dst,
        } => {
            let l = lo.resolve(lo.reg(*lhs))?;
            let r = lo.resolve(lo.reg(*rhs))?;
            let bits = lo.reg_bits[l as usize].max(lo.reg_bits[r as usize]);
            if bits > MAX_BITS {
                return Err(ineligible(format!("i{bits} icmp")));
            }
            let n = 1usize << bits;
            let table = memo_table(TabKey::Icmp { cond: *cond, bits }, || {
                let mut table = Vec::with_capacity((n + 1) * (n + 1));
                for ai in 0..=n {
                    for bi in 0..=n {
                        table.push(if ai == n || bi == n {
                            Class::Poison
                        } else {
                            Class::Val(u8::from(eval_icmp(*cond, bits, ai as u128, bi as u128)))
                        });
                    }
                }
                table
            });
            let d = lo.dst_reg(*dst);
            let mp = lo.may_poison[l as usize] || lo.may_poison[r as usize];
            lo.set_dst(d, 1, mp, false);
            lo.ops.push(SOp::Table2 {
                table,
                n,
                lhs: l,
                rhs: r,
                dst: d,
            });
            Ok(())
        }
        Step::Select {
            ty,
            poison_cond,
            propagate_unselected,
            cond,
            tval,
            fval,
            dst,
        } => {
            let Ty::Int(bits) = ty else {
                return Err(ineligible(format!("select of {ty}")));
            };
            if *bits > MAX_BITS {
                return Err(ineligible(format!("i{bits} select")));
            }
            let c = lo.resolve(lo.reg(*cond))?;
            let t = lo.reg(*tval);
            let f = lo.reg(*fval);
            let nondet_var = (matches!(poison_cond, PoisonAction::Nondet)
                && lo.may_poison[c as usize])
                .then(|| lo.push_var(2));
            let mp =
                lo.may_poison[t as usize] || lo.may_poison[f as usize] || lo.may_poison[c as usize];
            let mu = lo.may_undef[t as usize] || lo.may_undef[f as usize];
            let d = lo.dst_reg(*dst);
            lo.set_dst(d, *bits, mp, mu);
            lo.ops.push(SOp::Select {
                poison_cond: *poison_cond,
                propagate_unselected: *propagate_unselected,
                nondet_var,
                cond: c,
                tval: t,
                fval: f,
                dst: d,
            });
            Ok(())
        }
        Step::Freeze { ty, val, dst } => {
            let Ty::Int(bits) = ty else {
                return Err(ineligible(format!("freeze of {ty}")));
            };
            if *bits > MAX_BITS {
                return Err(ineligible(format!("i{bits} freeze")));
            }
            let v = lo.reg(*val);
            let var = (lo.may_poison[v as usize] || lo.may_undef[v as usize])
                .then(|| lo.push_var(1u64 << *bits));
            let d = lo.dst_reg(*dst);
            lo.set_dst(d, *bits, false, false);
            lo.ops.push(SOp::Freeze {
                var,
                n: 1usize << *bits,
                val: v,
                dst: d,
            });
            Ok(())
        }
        Step::Cast {
            kind,
            from_bits,
            to_bits,
            vlen: None,
            val,
            dst,
        } => {
            if *from_bits > MAX_BITS || *to_bits > MAX_BITS {
                return Err(ineligible("wide cast"));
            }
            let v = lo.resolve(lo.reg(*val))?;
            let n = 1usize << *from_bits;
            let key = TabKey::Cast {
                kind: *kind,
                from_bits: *from_bits,
                to_bits: *to_bits,
            };
            let table = memo_table(key, || {
                let mut table = Vec::with_capacity(n + 1);
                for x in 0..n {
                    table.push(Class::Val(
                        eval_cast(*kind, *from_bits, *to_bits, x as u128) as u8,
                    ));
                }
                table.push(Class::Poison);
                table
            });
            let d = lo.dst_reg(*dst);
            let mp = lo.may_poison[v as usize];
            lo.set_dst(d, *to_bits, mp, false);
            lo.ops.push(SOp::Table1 {
                table,
                n,
                val: v,
                dst: d,
            });
            Ok(())
        }
        // Memory operations are categorically ineligible: a bit-sliced
        // evaluation runs all lanes against one shared register file,
        // but each lane would need its own memory image (stores differ
        // per lane, alloca'd block ids and the two-phase flag are
        // per-execution state). Rejecting here — with its own counter —
        // is what routes `Engine::Auto` memory programs to the plan
        // machine.
        Step::Gep { .. }
        | Step::Load { .. }
        | Step::Store { .. }
        | Step::Alloca { .. }
        | Step::PtrToInt { .. }
        | Step::IntToPtr { .. } => {
            bitslice_counters().mem_rejects.incr();
            Err(ineligible("memory operation"))
        }
        other => Err(ineligible(format!("step {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Machine;
    use crate::sem::Semantics;
    use frost_ir::parse_module;

    /// Two i2 parameters: all defined values plus poison (and undef on
    /// request) — the §6 input shape.
    fn i2_tuples(with_undef: bool) -> Vec<Vec<Val>> {
        let mut vals: Vec<Val> = (0..4).map(|v| Val::int(2, v)).collect();
        vals.push(Val::Poison);
        if with_undef {
            vals.push(Val::Undef(Ty::Int(2)));
        }
        let mut out = Vec::new();
        for a in &vals {
            for b in &vals {
                out.push(vec![a.clone(), b.clone()]);
            }
        }
        out
    }

    fn assert_matches_plan(src: &str, sem: Semantics, tuples: &[Vec<Val>]) {
        let m = parse_module(src).expect("parses");
        let plan = ModulePlan::compile(&m, sem);
        let idx = plan.function_index("f").expect("f exists");
        let mem = Memory::zeroed(0);
        let bp = BitslicePlan::compile(&plan, idx, tuples, Limits::default())
            .expect("eligible for bit-slicing");
        let sliced = bp.evaluate(&mem);
        let mut machine = Machine::new();
        for (args, got) in tuples.iter().zip(&sliced) {
            let want = plan
                .enumerate(idx, args, &mem, Limits::default(), &mut machine)
                .expect("plan enumerates");
            assert_eq!(
                &want, got,
                "bitslice diverged from plan under {} on {args:?} for:\n{src}",
                sem.name
            );
        }
    }

    #[test]
    fn division_ub_matrix_matches_plan() {
        for op in ["udiv", "sdiv", "urem", "srem"] {
            let src = format!(
                "define i2 @f(i2 %a, i2 %b) {{\nentry:\n  %r = {op} i2 %a, %b\n  ret i2 %r\n}}"
            );
            assert_matches_plan(&src, Semantics::proposed(), &i2_tuples(false));
        }
    }

    #[test]
    fn undef_freeze_select_match_plan_under_both_semantics() {
        let srcs = [
            "define i2 @f(i2 %a, i2 %b) {\nentry:\n  %x = mul i2 %a, 2\n  %y = add i2 %x, %b\n  ret i2 %y\n}",
            "define i2 @f(i2 %a, i2 %b) {\nentry:\n  %x = freeze i2 %a\n  %y = sub nsw i2 %x, %b\n  ret i2 %y\n}",
            "define i1 @f(i2 %a, i2 %b) {\nentry:\n  %c = icmp slt i2 %a, %b\n  ret i1 %c\n}",
            "define i2 @f(i2 %a, i2 %b) {\nentry:\n  %c = icmp eq i2 %a, %b\n  %s = select i1 %c, i2 %a, i2 3\n  ret i2 %s\n}",
            "define i2 @f(i2 %a, i2 %b) {\nentry:\n  %x = add i2 undef, %a\n  %y = xor i2 %x, %b\n  ret i2 %y\n}",
        ];
        for sem in [Semantics::proposed(), Semantics::legacy_gvn()] {
            for src in srcs {
                assert_matches_plan(src, sem, &i2_tuples(sem.has_undef));
            }
        }
    }

    #[test]
    fn branching_functions_are_ineligible() {
        let src = "define i2 @f(i1 %c) {\nentry:\n  br i1 %c, label %a, label %b\na:\n  ret i2 1\nb:\n  ret i2 0\n}";
        let m = parse_module(src).unwrap();
        let plan = ModulePlan::compile(&m, Semantics::proposed());
        let idx = plan.function_index("f").unwrap();
        let tuples = vec![vec![Val::int(1, 0)], vec![Val::int(1, 1)]];
        let err = BitslicePlan::compile(&plan, idx, &tuples, Limits::default())
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, ExecError::Unsupported(_)), "{err}");
    }

    #[test]
    fn tight_limits_defer_to_the_plan_engine() {
        let src = "define i2 @f(i2 %a, i2 %b) {\nentry:\n  %x = freeze i2 %a\n  ret i2 %x\n}";
        let m = parse_module(src).unwrap();
        let plan = ModulePlan::compile(&m, Semantics::proposed());
        let idx = plan.function_index("f").unwrap();
        let tight = Limits {
            max_states: 2,
            ..Limits::default()
        };
        assert!(BitslicePlan::compile(&plan, idx, &i2_tuples(false), tight).is_err());
    }
}
