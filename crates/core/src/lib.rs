//! # frost-core
//!
//! The executable semantics of the frost IR — a reproduction of §4 of
//! *"Taming Undefined Behavior in LLVM"* (Lee et al., PLDI 2017).
//!
//! The crate provides:
//!
//! * the semantic [value domain](val) `⟦ty⟧` with poison, legacy undef,
//!   and per-element vector values, plus the `ty↓`/`ty↑` bit-level
//!   lowering of §4.2 ([`val::lower`]/[`val::raise`]);
//! * the bit-wise [memory](mem) of §4.2;
//! * pluggable [undefined-behavior models](sem): the paper's
//!   [proposal](sem::Semantics::proposed) and the two mutually
//!   inconsistent legacy interpretations of §3.3
//!   ([`sem::Semantics::legacy_gvn`],
//!   [`sem::Semantics::legacy_unswitch`]);
//! * an [interpreter](exec) implementing Figure 5, with exhaustive
//!   enumeration of all non-deterministic behaviors
//!   ([`exec::enumerate_outcomes`]) — the engine behind the Alive-style
//!   refinement checker in `frost-refine`;
//! * [execution plans](plan): functions compiled once into a dense
//!   slot-indexed program ([`plan::ModulePlan`]) and executed on a
//!   reusable [`plan::Machine`] with prefix-resuming enumeration;
//!   the tree-walk survives as [`exec::reference`] for differential
//!   testing;
//! * [bit-sliced evaluation](bitslice): straight-line §6-shaped
//!   functions lowered to bitplane programs that evaluate every input
//!   tuple in one pass ([`bitslice::BitslicePlan`]);
//! * a unified [engine selector](engine): downstream code names an
//!   [`engine::Engine`] (default [`engine::Engine::Auto`]) and calls
//!   [`engine::enumerate_function`] instead of a concrete evaluator.
//!
//! ## Example: freeze stops poison
//!
//! ```
//! use frost_core::{enumerate_outcomes, Limits, Memory, Semantics, Val};
//! use frost_ir::parse_module;
//!
//! let m = parse_module(
//!     "define i2 @f() {\nentry:\n  %a = freeze i2 poison\n  ret i2 %a\n}",
//! )?;
//! let outcomes = enumerate_outcomes(
//!     &m, "f", &[], &Memory::zeroed(0), Semantics::proposed(), Limits::default(),
//! )?;
//! // freeze i2 poison can yield any of the four i2 values, never UB.
//! assert_eq!(outcomes.len(), 4);
//! assert!(!outcomes.may_ub());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod bitslice;
pub mod cache;
pub mod engine;
pub mod error;
pub mod exec;
pub mod fasthash;
pub mod mem;
pub mod ops;
pub mod outcome;
pub mod plan;
pub mod sem;
pub mod val;

pub use bitslice::BitslicePlan;
pub use cache::{enumerate_all_inputs, EnumeratedOutcomes, OutcomeCache};
pub use engine::{enumerate_function, Engine};
pub use error::FrostError;
pub use exec::{
    enumerate_outcomes, run_concrete, run_with_script, uninit_fill, ExecError, Limits, RunResult,
};
pub use fasthash::{FastBuildHasher, FastHashMap, FastHashSet, FastHasher};
pub use mem::Memory;
pub use outcome::{Event, Outcome, OutcomeSet};
pub use plan::{Machine, ModulePlan, PlanCache};
pub use sem::{PoisonAction, SelectSemantics, Semantics};
pub use val::{enumerate_scalar, lower, poison_of, raise, undef_of, Bit, Bits, Ptr, Val};
