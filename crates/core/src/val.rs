//! The semantic value domain of §4.2.
//!
//! ```text
//! ⟦isz⟧   = Num(sz) ⊎ { poison }           (plus undef in legacy mode)
//! ⟦ty*⟧   = Num(32) ⊎ { poison }
//! ⟦<sz×ty>⟧ = {0..sz-1} → ⟦ty⟧             (element-wise)
//! ```
//!
//! plus the *low-level bit representation* `⟦<8·sz × i1>⟧` used by memory
//! and `bitcast`, with the two meta operations `ty↓` ([`lower`]) and
//! `ty↑` ([`raise`]).

use std::fmt;

use frost_ir::value::{to_signed, truncate};
use frost_ir::{Constant, Ty};

/// A pointer value under the two-phase block-based memory model.
///
/// In the *infinite* phase pointers are logical `(block, offset)`
/// pairs with no concrete address; `ptrtoint`/`inttoptr` force the
/// *finite* phase, in which every block has a deterministic concrete
/// base address and raw-address pointers become meaningful.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Ptr {
    /// A pointer into logical block `block` at byte `off`, carrying
    /// provenance. `off` may equal the block size (one-past-the-end).
    Block {
        /// Index into [`crate::mem::MemState`]'s block table.
        block: u32,
        /// Byte offset from the block base (wraps modulo 2³² on
        /// non-inbounds `gep`).
        off: u32,
    },
    /// A raw 32-bit address with no provenance (`null` is `Addr(0)`;
    /// `inttoptr` always produces this form). Access through it
    /// resolves against concrete block layout.
    Addr(u32),
}

/// A run-time value.
#[derive(Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Val {
    /// A defined integer of the given width.
    Int {
        /// Width in bits.
        bits: u32,
        /// Payload, truncated to `bits` bits.
        v: u128,
    },
    /// A defined pointer (block-relative or raw address).
    Ptr(Ptr),
    /// The poison value.
    Poison,
    /// The legacy `undef` value of the given type: *every use* may
    /// resolve to a different arbitrary value. Only produced under the
    /// legacy semantics.
    Undef(Ty),
    /// A vector value, one [`Val`] per element (each element is
    /// independently poison/undef/defined, per §4.2).
    Vec(Vec<Val>),
}

impl Val {
    /// A defined integer, truncating to width.
    pub fn int(bits: u32, v: u128) -> Val {
        Val::Int {
            bits,
            v: truncate(v, bits),
        }
    }

    /// An `i1` boolean.
    pub fn bool(b: bool) -> Val {
        Val::int(1, b as u128)
    }

    /// A raw-address pointer (the pre-block-model pointer shape; also
    /// what `inttoptr` produces).
    pub fn ptr(addr: u32) -> Val {
        Val::Ptr(Ptr::Addr(addr))
    }

    /// Returns the payload if this is a defined integer.
    pub fn as_int(&self) -> Option<u128> {
        match self {
            Val::Int { v, .. } => Some(*v),
            _ => None,
        }
    }

    /// Returns the signed payload if this is a defined integer.
    pub fn as_signed(&self) -> Option<i128> {
        match self {
            Val::Int { bits, v } => Some(to_signed(*v, *bits)),
            _ => None,
        }
    }

    /// Returns the pointer if this is a defined pointer.
    pub fn as_ptr(&self) -> Option<Ptr> {
        match self {
            Val::Ptr(p) => Some(*p),
            _ => None,
        }
    }

    /// Returns `true` if the value is (or contains) poison.
    pub fn contains_poison(&self) -> bool {
        match self {
            Val::Poison => true,
            Val::Vec(elems) => elems.iter().any(Val::contains_poison),
            _ => false,
        }
    }

    /// Returns `true` if the value is (or contains) undef.
    pub fn contains_undef(&self) -> bool {
        match self {
            Val::Undef(_) => true,
            Val::Vec(elems) => elems.iter().any(Val::contains_undef),
            _ => false,
        }
    }

    /// Returns `true` if the value is fully defined (no poison, no
    /// undef, element-wise for vectors).
    pub fn is_defined(&self) -> bool {
        match self {
            Val::Int { .. } | Val::Ptr(_) => true,
            Val::Poison | Val::Undef(_) => false,
            Val::Vec(elems) => elems.iter().all(Val::is_defined),
        }
    }

    /// The type of this value (`Undef` carries one; others are
    /// reconstructed).
    pub fn ty(&self) -> Ty {
        match self {
            Val::Int { bits, .. } => Ty::Int(*bits),
            // The pointee is not recoverable from a raw address; use i8*.
            Val::Ptr(_) => Ty::ptr_to(Ty::i8()),
            Val::Poison => Ty::Void, // poison is typed by context
            Val::Undef(ty) => ty.clone(),
            Val::Vec(elems) => {
                let elem = elems.first().map(Val::ty).unwrap_or(Ty::Void);
                Ty::vector(elems.len() as u32, elem)
            }
        }
    }

    /// Converts an IR constant to a semantic value.
    pub fn from_const(c: &Constant) -> Val {
        match c {
            Constant::Int { bits, value } => Val::int(*bits, *value),
            Constant::Null(_) => Val::ptr(0),
            Constant::Poison(ty) => poison_of(ty),
            Constant::Undef(ty) => undef_of(ty),
            Constant::Vector(elems) => Val::Vec(elems.iter().map(Val::from_const).collect()),
        }
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Int { bits, v } => write!(f, "i{bits} {v}"),
            Val::Ptr(Ptr::Block { block, off }) => write!(f, "ptr b{block}+{off}"),
            Val::Ptr(Ptr::Addr(a)) => write!(f, "ptr {a:#x}"),
            Val::Poison => write!(f, "poison"),
            Val::Undef(_) => write!(f, "undef"),
            Val::Vec(elems) => {
                write!(f, "<")?;
                for (i, e) in elems.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, ">")
            }
        }
    }
}

/// The poison value of a given type: scalar poison, or a vector of
/// poison elements (per-element poison, §4.2).
pub fn poison_of(ty: &Ty) -> Val {
    match ty {
        Ty::Vector { elems, elem } => Val::Vec((0..*elems).map(|_| poison_of(elem)).collect()),
        _ => Val::Poison,
    }
}

/// The undef value of a given type (element-wise for vectors).
pub fn undef_of(ty: &Ty) -> Val {
    match ty {
        Ty::Vector { elems, elem } => Val::Vec((0..*elems).map(|_| undef_of(elem)).collect()),
        _ => Val::Undef(ty.clone()),
    }
}

/// One bit of the low-level representation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Bit {
    /// A defined 0 bit.
    Zero,
    /// A defined 1 bit.
    One,
    /// A poison bit.
    Poison,
    /// An undef bit (legacy semantics only).
    Undef,
    /// Bit `idx` of a block-relative pointer's representation: the
    /// provenance survives a store/load roundtrip at pointer type, but
    /// raising any provenance bit at a *non-pointer* type (or a
    /// shuffled/partial set of them at pointer type) yields poison —
    /// reading provenance as data requires an explicit `ptrtoint`.
    Ptr {
        /// The logical block the pointer refers to.
        block: u32,
        /// The pointer's byte offset within the block.
        off: u32,
        /// Which of the 32 representation bits this is (LSB first).
        idx: u8,
    },
}

impl Bit {
    /// The defined bit for a boolean.
    pub fn of(b: bool) -> Bit {
        if b {
            Bit::One
        } else {
            Bit::Zero
        }
    }
}

/// A low-level bit representation (LSB first).
pub type Bits = Vec<Bit>;

/// `ty↓`: lowers a value to its bit representation.
///
/// Base types: poison lowers to all-poison bits, undef to all-undef
/// bits, defined values to their binary representation. Vectors lower
/// element-wise with concatenation.
///
/// # Panics
///
/// Panics if the value does not inhabit `ty`.
pub fn lower(ty: &Ty, v: &Val) -> Bits {
    let width = ty.bitwidth() as usize;
    match (ty, v) {
        (_, Val::Poison) => vec![Bit::Poison; width],
        (_, Val::Undef(_)) => vec![Bit::Undef; width],
        (Ty::Int(bits), Val::Int { bits: vb, v }) => {
            assert_eq!(bits, vb, "integer width mismatch in lower");
            (0..*bits).map(|i| Bit::of((v >> i) & 1 == 1)).collect()
        }
        (Ty::Ptr(_), Val::Ptr(Ptr::Addr(a))) => (0..frost_ir::PTR_BITS)
            .map(|i| Bit::of((a >> i) & 1 == 1))
            .collect(),
        (Ty::Ptr(_), Val::Ptr(Ptr::Block { block, off })) => (0..frost_ir::PTR_BITS)
            .map(|i| Bit::Ptr {
                block: *block,
                off: *off,
                idx: i as u8,
            })
            .collect(),
        (Ty::Vector { elems, elem }, Val::Vec(vs)) => {
            assert_eq!(*elems as usize, vs.len(), "vector length mismatch in lower");
            vs.iter().flat_map(|e| lower(elem, e)).collect()
        }
        _ => panic!("value {v} does not inhabit type {ty}"),
    }
}

/// `ty↑`: raises a bit representation back to a value.
///
/// Base types: any poison bit makes the value poison; otherwise any
/// undef bit makes it undef; otherwise the defined value. Vectors raise
/// element-wise (so a poison element does not contaminate its
/// neighbours — the property §5.3/§5.4 rely on).
///
/// # Panics
///
/// Panics if `bits.len() != ty.bitwidth()`.
pub fn raise(ty: &Ty, bits: &[Bit]) -> Val {
    assert_eq!(
        bits.len(),
        ty.bitwidth() as usize,
        "bit width mismatch in raise"
    );
    match ty {
        Ty::Vector { elems, elem } => {
            let w = elem.bitwidth() as usize;
            Val::Vec(
                (0..*elems as usize)
                    .map(|i| raise(elem, &bits[i * w..(i + 1) * w]))
                    .collect(),
            )
        }
        _ => {
            if bits.contains(&Bit::Poison) {
                return Val::Poison;
            }
            // An intact set of provenance bits raises back to the same
            // block-relative pointer; any other appearance of a
            // provenance bit (at integer type, shuffled, or mixed with
            // data bits) is poison — provenance cannot be read as data.
            if let Some(Bit::Ptr { block, off, .. }) =
                bits.iter().find(|b| matches!(b, Bit::Ptr { .. })).copied()
            {
                let intact = ty.is_ptr()
                    && bits.len() == frost_ir::PTR_BITS as usize
                    && bits.iter().enumerate().all(|(i, b)| {
                        matches!(b, Bit::Ptr { block: b2, off: o2, idx }
                            if *b2 == block && *o2 == off && *idx as usize == i)
                    });
                return if intact {
                    Val::Ptr(Ptr::Block { block, off })
                } else {
                    Val::Poison
                };
            }
            if bits.contains(&Bit::Undef) {
                return undef_of(ty);
            }
            let mut v: u128 = 0;
            for (i, b) in bits.iter().enumerate() {
                if *b == Bit::One {
                    v |= 1 << i;
                }
            }
            match ty {
                Ty::Int(w) => Val::int(*w, v),
                Ty::Ptr(_) => Val::Ptr(Ptr::Addr(v as u32)),
                _ => unreachable!("vector handled above; void has no bits"),
            }
        }
    }
}

/// Enumerates every defined value of a *scalar* type, for resolving
/// nondeterministic choices exhaustively.
///
/// Returns `None` if the domain is too large to enumerate (more than
/// `cap` values) — callers must then fall back to sampling or report
/// the check as inconclusive.
pub fn enumerate_scalar(ty: &Ty, cap: usize) -> Option<Vec<Val>> {
    match ty {
        Ty::Int(bits) => {
            if *bits >= 64 || (1u128 << *bits) > cap as u128 {
                return None;
            }
            Some((0..(1u128 << *bits)).map(|v| Val::int(*bits, v)).collect())
        }
        // Pointer domains are never exhaustively enumerable.
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_raise_round_trips_defined_values() {
        let ty = Ty::Int(5);
        for v in 0..32u128 {
            let val = Val::int(5, v);
            assert_eq!(raise(&ty, &lower(&ty, &val)), val);
        }
    }

    #[test]
    fn lower_raise_round_trips_poison() {
        let ty = Ty::Int(8);
        assert_eq!(raise(&ty, &lower(&ty, &Val::Poison)), Val::Poison);
        let vty = Ty::vector(2, Ty::Int(4));
        let v = Val::Vec(vec![Val::Poison, Val::int(4, 9)]);
        assert_eq!(raise(&vty, &lower(&vty, &v)), v);
    }

    #[test]
    fn one_poison_bit_poisons_base_type() {
        let ty = Ty::Int(4);
        let mut bits = lower(&ty, &Val::int(4, 0b1010));
        bits[2] = Bit::Poison;
        assert_eq!(raise(&ty, &bits), Val::Poison);
    }

    #[test]
    fn poison_element_does_not_contaminate_vector_neighbours() {
        // §5.4: a vector raise keeps poison per-element.
        let vty = Ty::vector(2, Ty::Int(8));
        let mut bits = lower(&vty, &Val::Vec(vec![Val::int(8, 7), Val::int(8, 9)]));
        bits[3] = Bit::Poison; // poison one bit of element 0
        let raised = raise(&vty, &bits);
        assert_eq!(raised, Val::Vec(vec![Val::Poison, Val::int(8, 9)]));
    }

    #[test]
    fn bitcast_vector_to_scalar_spreads_poison() {
        // Raising the same bits at scalar type poisons everything —
        // exactly why §5.4 uses vector loads for widening.
        let vty = Ty::vector(2, Ty::Int(8));
        let sty = Ty::Int(16);
        let mut bits = lower(&vty, &Val::Vec(vec![Val::int(8, 7), Val::int(8, 9)]));
        bits[3] = Bit::Poison;
        assert_eq!(raise(&sty, &bits), Val::Poison);
    }

    #[test]
    fn undef_bits_raise_to_undef_unless_poisoned() {
        let ty = Ty::Int(4);
        let mut bits = vec![Bit::Zero, Bit::Undef, Bit::Zero, Bit::Zero];
        assert_eq!(raise(&ty, &bits), Val::Undef(Ty::Int(4)));
        bits[0] = Bit::Poison;
        assert_eq!(raise(&ty, &bits), Val::Poison, "poison dominates undef");
    }

    #[test]
    fn pointer_lowering_uses_32_bits() {
        let ty = Ty::ptr_to(Ty::i8());
        let bits = lower(&ty, &Val::ptr(0x1234));
        assert_eq!(bits.len(), 32);
        assert_eq!(raise(&ty, &bits), Val::ptr(0x1234));
    }

    #[test]
    fn block_pointer_provenance_roundtrips_at_pointer_type() {
        let ty = Ty::ptr_to(Ty::i8());
        let p = Val::Ptr(Ptr::Block { block: 3, off: 2 });
        let bits = lower(&ty, &p);
        assert_eq!(bits.len(), 32);
        assert_eq!(raise(&ty, &bits), p);
    }

    #[test]
    fn provenance_bits_poison_at_integer_type() {
        // Reinterpreting a block pointer's bytes as an integer (e.g.
        // via bitcast'd load) is poison — escaping provenance requires
        // an explicit ptrtoint.
        let pty = Ty::ptr_to(Ty::i8());
        let bits = lower(&pty, &Val::Ptr(Ptr::Block { block: 0, off: 0 }));
        assert_eq!(raise(&Ty::Int(32), &bits), Val::Poison);
    }

    #[test]
    fn shuffled_provenance_bits_poison_even_at_pointer_type() {
        let pty = Ty::ptr_to(Ty::i8());
        let mut bits = lower(&pty, &Val::Ptr(Ptr::Block { block: 1, off: 0 }));
        bits.swap(0, 1);
        assert_eq!(raise(&pty, &bits), Val::Poison);
        // Mixing provenance with data bits is also poison.
        let mut bits = lower(&pty, &Val::Ptr(Ptr::Block { block: 1, off: 0 }));
        bits[0] = Bit::Zero;
        assert_eq!(raise(&pty, &bits), Val::Poison);
        // ... and a poison bit still dominates.
        let mut bits = lower(&pty, &Val::Ptr(Ptr::Block { block: 1, off: 0 }));
        bits[5] = Bit::Poison;
        assert_eq!(raise(&pty, &bits), Val::Poison);
    }

    #[test]
    fn enumerate_scalar_respects_cap() {
        assert_eq!(enumerate_scalar(&Ty::Int(2), 16).unwrap().len(), 4);
        assert!(enumerate_scalar(&Ty::Int(8), 16).is_none());
        assert!(enumerate_scalar(&Ty::ptr_to(Ty::i8()), 1 << 20).is_none());
        assert_eq!(
            enumerate_scalar(&Ty::Int(1), 16).unwrap(),
            vec![Val::bool(false), Val::bool(true)]
        );
    }

    #[test]
    fn from_const_handles_all_constants() {
        assert_eq!(Val::from_const(&Constant::int(8, 300)), Val::int(8, 44));
        assert_eq!(Val::from_const(&Constant::Poison(Ty::i8())), Val::Poison);
        assert_eq!(
            Val::from_const(&Constant::Poison(Ty::vector(2, Ty::i8()))),
            Val::Vec(vec![Val::Poison, Val::Poison])
        );
        assert_eq!(
            Val::from_const(&Constant::Null(Ty::ptr_to(Ty::i8()))),
            Val::ptr(0)
        );
        assert_eq!(
            Val::from_const(&Constant::Undef(Ty::i1())),
            Val::Undef(Ty::i1())
        );
    }

    #[test]
    fn signed_view() {
        assert_eq!(Val::int(2, 0b11).as_signed(), Some(-1));
        assert_eq!(Val::int(8, 127).as_signed(), Some(127));
        assert_eq!(Val::Poison.as_signed(), None);
    }
}
