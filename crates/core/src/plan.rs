//! Compile-once execution plans: the interpreter's fast path.
//!
//! [`crate::exec::reference`] walks the [`Function`] tree on every run:
//! each instruction visit re-matches the `Inst` enum, re-resolves
//! `Value` operands through name/id indirection, and re-derives the
//! per-[`Semantics`] poison/UB decision. §6-scale campaigns execute the
//! same tiny function on hundreds of inputs and thousands of choice
//! scripts, so that per-run work dominates total throughput. This
//! module compiles a function **once** into a [`ModulePlan`] — a dense,
//! slot-indexed program — and executes it on a reusable [`Machine`]:
//!
//! * **Slots, not names.** Every operand is pre-resolved to either a
//!   flat frame-slot index (arguments first, then one slot per
//!   instruction id) or an index into a per-function constant pool
//!   materialized at compile time.
//! * **Semantics baked in.** The per-instruction poison action
//!   (branch-on-poison, select-on-poison, wrap-flags-produce-undef,
//!   poison-to-side-effecting-call) is decided while compiling, so the
//!   hot loop never consults the semantics table.
//! * **Flat control flow.** Block bodies are flattened into one
//!   contiguous `Step` stream; jump targets are patched to step
//!   indices, and each CFG edge carries its pre-resolved phi copies.
//! * **Prefix-resuming enumeration.** [`ModulePlan::enumerate`]
//!   snapshots the machine at every choice point and resumes siblings
//!   from the snapshot instead of re-executing the deterministic prefix
//!   (the reference driver restarts from scratch per script).
//!
//! Every observable behavior — outcome sets, step accounting, limit
//! errors, even the DFS order that decides *which* error an aborting
//! enumeration reports — is kept byte-identical to the reference
//! interpreter; `tests/exec_plan.rs` enforces this differentially over
//! the §6 corpus. The reference tree-walk survives precisely to make
//! that comparison possible.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use frost_ir::{
    BinOp, CastKind, Cond, Flags, Function, FunctionKey, Inst, Module, Terminator, Ty, Value,
};

use crate::exec::{ExecError, Limits, RunResult};
use crate::mem::Memory;
use crate::ops::{eval_binop, eval_cast, eval_icmp, ScalarResult};
use crate::outcome::{Event, Outcome, OutcomeSet};
use crate::sem::{PoisonAction, Semantics};
use crate::val::{lower, poison_of, raise, Bit, Ptr, Val};

/// A pre-resolved operand: a frame slot or a constant-pool entry.
#[derive(Clone, Copy, Debug)]
pub(crate) enum Opnd {
    /// `slots[frame_base + i]` — argument `i` for `i < num_params`,
    /// otherwise the result of instruction `i - num_params`.
    Slot(u32),
    /// `consts[i]` — a constant materialized at compile time.
    Const(u32),
}

/// One CFG edge: the phi copies it performs and the step index of the
/// successor's first non-phi step.
#[derive(Clone, Debug)]
struct Edge {
    /// `(destination slot, source operand)` per phi in the successor,
    /// in block order. Sources are read *before* any destination is
    /// written (phis evaluate simultaneously).
    copies: Vec<(u32, Opnd)>,
    /// Step index to jump to.
    target: u32,
}

/// One flattened instruction with its operands pre-resolved and its
/// semantics decisions pre-applied.
#[derive(Clone, Debug)]
pub(crate) enum Step {
    Bin {
        op: BinOp,
        flags: Flags,
        bits: u32,
        vlen: Option<u32>,
        undef_on_wrap: bool,
        lhs: Opnd,
        rhs: Opnd,
        dst: u32,
    },
    Icmp {
        cond: Cond,
        vlen: Option<u32>,
        lhs: Opnd,
        rhs: Opnd,
        dst: u32,
    },
    Select {
        ty: Ty,
        poison_cond: PoisonAction,
        propagate_unselected: bool,
        cond: Opnd,
        tval: Opnd,
        fval: Opnd,
        dst: u32,
    },
    Freeze {
        ty: Ty,
        val: Opnd,
        dst: u32,
    },
    Cast {
        kind: CastKind,
        from_bits: u32,
        to_bits: u32,
        vlen: Option<u32>,
        val: Opnd,
        dst: u32,
    },
    Bitcast {
        from_ty: Ty,
        to_ty: Ty,
        val: Opnd,
        dst: u32,
    },
    Gep {
        stride: i128,
        inbounds: bool,
        base: Opnd,
        idx: Opnd,
        dst: u32,
    },
    Load {
        ty: Ty,
        width: u32,
        ptr: Opnd,
        dst: u32,
    },
    Store {
        ty: Ty,
        val: Opnd,
        ptr: Opnd,
        dst: u32,
    },
    /// `assume i1 %c` — immediate UB when the fact is false *or*
    /// poison; otherwise a no-op that writes a dummy value to its slot
    /// (guards define no register, mirroring `Store`).
    Assume {
        cond: Opnd,
        dst: u32,
    },
    Alloca {
        /// Block size in bytes (from the allocated type).
        size: u32,
        /// Fill bit for fresh bytes, baked in from the semantics
        /// (poison under proposed, undef under legacy).
        fill: Bit,
        dst: u32,
    },
    PtrToInt {
        val: Opnd,
        dst: u32,
    },
    IntToPtr {
        val: Opnd,
        dst: u32,
    },
    Extract {
        len: u32,
        lane: u32,
        vec: Opnd,
        dst: u32,
    },
    Insert {
        len: u32,
        lane: u32,
        vec: Opnd,
        elt: Opnd,
        dst: u32,
    },
    /// Call to a function defined in the module, resolved to its plan
    /// index. `arity_err` carries a compile-detected argument-count
    /// mismatch; it is raised *after* the depth check, matching the
    /// reference's error order.
    CallPlan {
        callee: u32,
        args: Box<[Opnd]>,
        arity_err: Option<Box<str>>,
        dst: u32,
    },
    /// Call to an external declaration.
    CallExt {
        callee: Box<str>,
        ret_ty: Ty,
        readnone: bool,
        poison_arg_ub: bool,
        args: Box<[Opnd]>,
        dst: u32,
    },
    /// Call to a name that is neither defined nor declared: an error,
    /// but only if the step is actually reached.
    CallUnknown {
        callee: Box<str>,
    },
    Jmp {
        edge: u32,
    },
    Br {
        on_poison: PoisonAction,
        cond: Opnd,
        then_edge: u32,
        else_edge: u32,
    },
    Ret {
        val: Option<Opnd>,
    },
    Unreachable,
}

/// The compiled form of one function: a flat step stream plus its
/// constant pool and edge table.
#[derive(Clone, Debug)]
pub(crate) struct FnPlan {
    name: String,
    pub(crate) num_params: usize,
    /// Total frame size: arguments plus one slot per instruction id.
    num_slots: usize,
    pub(crate) consts: Vec<Val>,
    pub(crate) steps: Vec<Step>,
    edges: Vec<Edge>,
    /// Whether any instruction in the source function is a guard
    /// (`UbClass::Guard` per the descriptor table) or any block ends in
    /// `unreachable`. Computed from [`frost_ir::Inst::descriptor`] at
    /// compile time; the bit-sliced backend keys its categorical
    /// rejection off this instead of rediscovering guards per step.
    pub(crate) has_guards: bool,
}

/// A whole module compiled for execution under one [`Semantics`].
///
/// Compilation is a pure function of `(module, semantics)`; the plan is
/// immutable afterwards and can be shared across threads (campaign
/// workers run one plan on per-worker [`Machine`]s).
pub struct ModulePlan {
    plans: Vec<FnPlan>,
    by_name: HashMap<String, u32>,
    sem: Semantics,
}

/// Compile-time operand/constant collection for one function.
struct FnCompiler<'m> {
    func: &'m Function,
    consts: Vec<Val>,
}

impl<'m> FnCompiler<'m> {
    fn opnd(&mut self, v: &Value) -> Opnd {
        match v {
            Value::Arg(i) => Opnd::Slot(*i),
            Value::Inst(id) => Opnd::Slot(self.func.params.len() as u32 + id.0),
            Value::Const(c) => {
                let val = Val::from_const(c);
                // Pools are tiny (§6 functions have a handful of
                // constants); a linear dedup scan beats hashing.
                let idx = match self.consts.iter().position(|x| *x == val) {
                    Some(i) => i,
                    None => {
                        self.consts.push(val);
                        self.consts.len() - 1
                    }
                };
                Opnd::Const(idx as u32)
            }
        }
    }
}

impl ModulePlan {
    /// Compiles every function of `module` for execution under `sem`.
    pub fn compile(module: &Module, sem: Semantics) -> ModulePlan {
        let _span = frost_telemetry::span("core.plan.compile")
            .field("functions", module.functions.len() as u64);
        plan_counters().compiles.incr();
        let fn_index: HashMap<&str, u32> = module
            .functions
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.as_str(), i as u32))
            .collect();
        let plans = module
            .functions
            .iter()
            .map(|f| compile_function(f, module, sem, &fn_index))
            .collect();
        let by_name = module
            .functions
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), i as u32))
            .collect();
        ModulePlan {
            plans,
            by_name,
            sem,
        }
    }

    /// The semantics the plan was compiled under.
    pub fn sem(&self) -> Semantics {
        self.sem
    }

    /// The plan index of a function, for the `idx` parameter of the run
    /// entry points.
    pub fn function_index(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).map(|&i| i as usize)
    }

    /// Number of compiled functions.
    pub fn num_functions(&self) -> usize {
        self.plans.len()
    }

    /// The compiled plan of function `idx`, for the bit-sliced backend
    /// ([`crate::bitslice`]) to lower further.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub(crate) fn fn_plan(&self, idx: usize) -> &FnPlan {
        &self.plans[idx]
    }

    /// Enumerates *every* behavior of function `idx` on `args`,
    /// resuming each sibling branch from a snapshot taken at the choice
    /// point instead of re-executing the shared prefix.
    ///
    /// Byte-identical to
    /// [`reference::enumerate_outcomes`](crate::exec::reference::enumerate_outcomes)
    /// in results, state accounting, and abort order.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] if the search exceeds [`Limits`] or the
    /// program draws from an unenumerable domain.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn enumerate(
        &self,
        idx: usize,
        args: &[Val],
        mem: &Memory,
        limits: Limits,
        machine: &mut Machine,
    ) -> Result<OutcomeSet, ExecError> {
        let counters = plan_counters();
        machine.reset();
        let mut outcomes = OutcomeSet::new();
        let mut script: Vec<u64> = Vec::new();
        // Sibling choices still to explore at each forked choice point.
        // `next` counts *down*: the reference driver pushes scripts
        // `0..n` and pops LIFO, so `n-1` is explored first.
        struct Branch {
            snap: Snapshot,
            fork_len: usize,
            next: u64,
        }
        let mut stack: Vec<Branch> = Vec::new();
        let mut states: u64 = 0;

        let mut exec = Exec {
            mp: self,
            limits,
            init_mem: mem,
            m: &mut *machine,
            script: &script,
            concrete: false,
        };
        states += 1;
        if states > limits.max_states {
            return Err(ExecError::StateExplosion);
        }
        counters.runs.incr();
        match exec.start(idx, args)? {
            Flow::Done(o) => {
                outcomes.insert(o);
            }
            Flow::NeedChoice(n) => stack.push(Branch {
                snap: exec.m.snapshot(),
                fork_len: script.len(),
                next: n,
            }),
        }

        while let Some(top) = stack.last_mut() {
            if top.next == 0 {
                stack.pop();
                continue;
            }
            top.next -= 1;
            let v = top.next;
            states += 1;
            if states > limits.max_states {
                return Err(ExecError::StateExplosion);
            }
            script.truncate(top.fork_len);
            script.push(v);
            machine.restore(&top.snap);
            counters.runs.incr();
            counters.resumed_prefix_insts.add(top.snap.steps);
            let mut exec = Exec {
                mp: self,
                limits,
                init_mem: mem,
                m: &mut *machine,
                script: &script,
                concrete: false,
            };
            match exec.resume()? {
                Flow::Done(o) => {
                    outcomes.insert(o);
                }
                Flow::NeedChoice(n) => {
                    let snap = exec.m.snapshot();
                    stack.push(Branch {
                        snap,
                        fork_len: script.len(),
                        next: n,
                    });
                }
            }
        }
        Ok(outcomes)
    }

    /// Runs function `idx` once under the given choice script.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on resource exhaustion or unsupported
    /// programs; UB is a *successful* run with [`Outcome::Ub`].
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn run_with_script(
        &self,
        idx: usize,
        args: &[Val],
        mem: &Memory,
        limits: Limits,
        script: &[u64],
        machine: &mut Machine,
    ) -> Result<RunResult, ExecError> {
        plan_counters().runs.incr();
        machine.reset();
        let mut exec = Exec {
            mp: self,
            limits,
            init_mem: mem,
            m: &mut *machine,
            script,
            concrete: false,
        };
        match exec.start(idx, args)? {
            Flow::Done(o) => Ok(RunResult::Done(o)),
            Flow::NeedChoice(n) => Ok(RunResult::NeedChoice(n)),
        }
    }

    /// Runs function `idx` once, resolving every choice to 0. Returns
    /// the behavior and the number of steps executed.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecError`] on resource exhaustion or unsupported
    /// programs.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn run_concrete(
        &self,
        idx: usize,
        args: &[Val],
        mem: &Memory,
        limits: Limits,
        machine: &mut Machine,
    ) -> Result<(Outcome, u64), ExecError> {
        plan_counters().runs.incr();
        machine.reset();
        let mut exec = Exec {
            mp: self,
            limits,
            init_mem: mem,
            m: &mut *machine,
            script: &[],
            concrete: true,
        };
        match exec.start(idx, args)? {
            Flow::Done(o) => Ok((o, machine.steps)),
            Flow::NeedChoice(_) => unreachable!("concrete runs never fork"),
        }
    }
}

fn compile_function(
    func: &Function,
    module: &Module,
    sem: Semantics,
    fn_index: &HashMap<&str, u32>,
) -> FnPlan {
    let num_params = func.params.len();
    let mut c = FnCompiler {
        func,
        consts: Vec::new(),
    };
    let mut steps: Vec<Step> = Vec::new();
    let mut edges: Vec<Edge> = Vec::new();
    // Edges know their successor block; targets are patched to step
    // indices once every block's start offset is known.
    let mut edge_blocks: Vec<u32> = Vec::new();
    let mut block_start: Vec<u32> = Vec::with_capacity(func.blocks.len());
    let mut has_guards = false;

    for bb in func.block_ids() {
        let block = func.block(bb);
        block_start.push(steps.len() as u32);
        has_guards |= matches!(block.term, Terminator::Unreachable);
        for &id in &block.insts {
            has_guards |= func.inst(id).descriptor().is_guard();
            let dst = (num_params as u32) + id.0;
            let step = match func.inst(id) {
                Inst::Phi { .. } => continue, // applied on the incoming edge
                Inst::Bin {
                    op,
                    flags,
                    ty,
                    lhs,
                    rhs,
                } => Step::Bin {
                    op: *op,
                    flags: *flags,
                    bits: ty.scalar_ty().int_bits().expect("verified integer binop"),
                    vlen: ty.vector_len(),
                    undef_on_wrap: sem.wrap_flags_produce_undef,
                    lhs: c.opnd(lhs),
                    rhs: c.opnd(rhs),
                    dst,
                },
                Inst::Icmp { cond, ty, lhs, rhs } => Step::Icmp {
                    cond: *cond,
                    vlen: ty.vector_len(),
                    lhs: c.opnd(lhs),
                    rhs: c.opnd(rhs),
                    dst,
                },
                Inst::Select {
                    cond,
                    ty,
                    tval,
                    fval,
                } => Step::Select {
                    ty: ty.clone(),
                    poison_cond: sem.select.poison_cond,
                    propagate_unselected: sem.select.propagate_unselected,
                    cond: c.opnd(cond),
                    tval: c.opnd(tval),
                    fval: c.opnd(fval),
                    dst,
                },
                Inst::Freeze { ty, val } => Step::Freeze {
                    ty: ty.clone(),
                    val: c.opnd(val),
                    dst,
                },
                Inst::Cast {
                    kind,
                    from_ty,
                    to_ty,
                    val,
                } => Step::Cast {
                    kind: *kind,
                    from_bits: from_ty.scalar_ty().int_bits().expect("verified int cast"),
                    to_bits: to_ty.scalar_ty().int_bits().expect("verified int cast"),
                    vlen: to_ty.vector_len(),
                    val: c.opnd(val),
                    dst,
                },
                Inst::Bitcast {
                    from_ty,
                    to_ty,
                    val,
                } => Step::Bitcast {
                    from_ty: from_ty.clone(),
                    to_ty: to_ty.clone(),
                    val: c.opnd(val),
                    dst,
                },
                Inst::Gep {
                    elem_ty,
                    base,
                    idx,
                    inbounds,
                    ..
                } => Step::Gep {
                    stride: i128::from(elem_ty.byte_size()),
                    inbounds: *inbounds,
                    base: c.opnd(base),
                    idx: c.opnd(idx),
                    dst,
                },
                Inst::Load { ty, ptr } => Step::Load {
                    ty: ty.clone(),
                    width: ty.bitwidth(),
                    ptr: c.opnd(ptr),
                    dst,
                },
                Inst::Store { ty, val, ptr } => Step::Store {
                    ty: ty.clone(),
                    val: c.opnd(val),
                    ptr: c.opnd(ptr),
                    dst,
                },
                Inst::Assume { cond } => Step::Assume {
                    cond: c.opnd(cond),
                    dst,
                },
                Inst::Alloca { ty } => Step::Alloca {
                    size: ty.byte_size(),
                    fill: crate::exec::uninit_fill(&sem),
                    dst,
                },
                Inst::PtrToInt { val, .. } => Step::PtrToInt {
                    val: c.opnd(val),
                    dst,
                },
                Inst::IntToPtr { val, .. } => Step::IntToPtr {
                    val: c.opnd(val),
                    dst,
                },
                Inst::ExtractElement { vec, idx, len, .. } => Step::Extract {
                    len: *len,
                    lane: idx.as_int_const().expect("verified constant lane") as u32,
                    vec: c.opnd(vec),
                    dst,
                },
                Inst::InsertElement {
                    vec, elt, idx, len, ..
                } => Step::Insert {
                    len: *len,
                    lane: idx.as_int_const().expect("verified constant lane") as u32,
                    vec: c.opnd(vec),
                    elt: c.opnd(elt),
                    dst,
                },
                Inst::Call {
                    ret_ty,
                    callee,
                    args: call_args,
                    ..
                } => {
                    let args: Box<[Opnd]> = call_args.iter().map(|a| c.opnd(a)).collect();
                    if let Some(&ci) = fn_index.get(callee.as_str()) {
                        let f = &module.functions[ci as usize];
                        let arity_err = (call_args.len() != f.params.len()).then(|| {
                            format!(
                                "@{} expects {} arguments, got {}",
                                f.name,
                                f.params.len(),
                                call_args.len()
                            )
                            .into_boxed_str()
                        });
                        Step::CallPlan {
                            callee: ci,
                            args,
                            arity_err,
                            dst,
                        }
                    } else if let Some(decl) = module.declaration(callee) {
                        Step::CallExt {
                            callee: callee.clone().into_boxed_str(),
                            ret_ty: ret_ty.clone(),
                            readnone: decl.attrs.readnone,
                            poison_arg_ub: sem.poison_call_arg_is_ub,
                            args,
                            dst,
                        }
                    } else {
                        Step::CallUnknown {
                            callee: callee.clone().into_boxed_str(),
                        }
                    }
                }
            };
            steps.push(step);
        }
        // Terminator. Edges collect the successor's phi copies now;
        // their step targets are patched below.
        let add_edge = |c: &mut FnCompiler<'_>,
                        edges: &mut Vec<Edge>,
                        edge_blocks: &mut Vec<u32>,
                        dest: frost_ir::BlockId|
         -> u32 {
            let mut copies = Vec::new();
            for &id in &func.block(dest).insts {
                let Inst::Phi { incoming, .. } = func.inst(id) else {
                    break;
                };
                let (v, _) = incoming
                    .iter()
                    .find(|(_, from)| *from == bb)
                    .expect("verifier guarantees an incoming value per predecessor");
                copies.push(((num_params as u32) + id.0, c.opnd(v)));
            }
            edges.push(Edge { copies, target: 0 });
            edge_blocks.push(dest.0);
            (edges.len() - 1) as u32
        };
        let term = match &block.term {
            Terminator::Ret(v) => Step::Ret {
                val: v.as_ref().map(|v| c.opnd(v)),
            },
            Terminator::Jmp(dest) => Step::Jmp {
                edge: add_edge(&mut c, &mut edges, &mut edge_blocks, *dest),
            },
            Terminator::Br {
                cond,
                then_bb,
                else_bb,
            } => Step::Br {
                on_poison: sem.branch_on_poison,
                cond: c.opnd(cond),
                then_edge: add_edge(&mut c, &mut edges, &mut edge_blocks, *then_bb),
                else_edge: add_edge(&mut c, &mut edges, &mut edge_blocks, *else_bb),
            },
            Terminator::Unreachable => Step::Unreachable,
        };
        steps.push(term);
    }
    for (edge, &bb) in edges.iter_mut().zip(&edge_blocks) {
        edge.target = block_start[bb as usize];
    }
    FnPlan {
        name: func.name.clone(),
        num_params,
        num_slots: num_params + func.insts.len(),
        consts: c.consts,
        steps,
        edges,
        has_guards,
    }
}

/// One suspended call: the caller's execution context, restored on
/// `ret`.
#[derive(Clone, Debug)]
struct Frame {
    plan: u32,
    base: u32,
    ret_pc: u32,
    ret_dst: u32,
}

/// Reusable execution state: slot vector, call stack, and trace are
/// allocated once and reset (capacity retained) per run.
///
/// A `Machine` is tied to no particular plan; the same machine may run
/// any number of plans sequentially. It is deliberately `!Sync`-shaped
/// state: parallel campaign workers each own one.
#[derive(Default)]
pub struct Machine {
    slots: Vec<Val>,
    frames: Vec<Frame>,
    trace: Vec<Event>,
    /// Staging for simultaneous phi copies.
    phi_scratch: Vec<(u32, Val)>,
    /// Copy-on-write memory: `None` means "unchanged from the run's
    /// initial memory" — no clone until the first store.
    mem: Option<Memory>,
    /// Executing plan index, frame base slot, and step index.
    cur: u32,
    base: u32,
    pc: u32,
    steps: u64,
    next_choice: usize,
}

/// Everything [`Machine::restore`] needs to transport the machine back
/// to a choice point. Taken *between* steps (the step that demanded the
/// choice is re-executed on resume), so no mid-step state is captured.
struct Snapshot {
    slots: Vec<Val>,
    frames: Vec<Frame>,
    trace_len: usize,
    mem: Option<Memory>,
    cur: u32,
    base: u32,
    pc: u32,
    steps: u64,
    next_choice: usize,
}

impl Machine {
    /// A fresh machine.
    pub fn new() -> Machine {
        Machine::default()
    }

    fn reset(&mut self) {
        self.slots.clear();
        self.frames.clear();
        self.trace.clear();
        self.mem = None;
        self.cur = 0;
        self.base = 0;
        self.pc = 0;
        self.steps = 0;
        self.next_choice = 0;
    }

    fn snapshot(&self) -> Snapshot {
        Snapshot {
            slots: self.slots.clone(),
            frames: self.frames.clone(),
            trace_len: self.trace.len(),
            mem: self.mem.clone(),
            cur: self.cur,
            base: self.base,
            pc: self.pc,
            steps: self.steps,
            next_choice: self.next_choice,
        }
    }

    fn restore(&mut self, s: &Snapshot) {
        self.slots.clear();
        self.slots.extend_from_slice(&s.slots);
        self.frames.clear();
        self.frames.extend_from_slice(&s.frames);
        // The trace before the fork is shared by every sibling; it only
        // ever grows, so truncation restores it without a clone.
        self.trace.truncate(s.trace_len);
        self.mem = s.mem.clone();
        self.cur = s.cur;
        self.base = s.base;
        self.pc = s.pc;
        self.steps = s.steps;
        self.next_choice = s.next_choice;
    }
}

/// Reasons to abort the current run (mirrors the reference `Stop`).
enum Stop {
    NeedChoice(u64),
    Err(ExecError),
}

/// Non-local exits of step evaluation (mirrors the reference `Exc`).
enum Exc {
    Ub,
    Stop(Stop),
}

impl From<Stop> for Exc {
    fn from(s: Stop) -> Exc {
        Exc::Stop(s)
    }
}

enum Flow {
    Done(Outcome),
    NeedChoice(u64),
}

/// One run of a machine over a plan: borrows the immutable plan and
/// initial memory, owns the choice policy.
struct Exec<'a> {
    mp: &'a ModulePlan,
    limits: Limits,
    init_mem: &'a Memory,
    m: &'a mut Machine,
    script: &'a [u64],
    concrete: bool,
}

impl Exec<'_> {
    /// Initializes the machine for a fresh top-level run and executes.
    fn start(&mut self, idx: usize, args: &[Val]) -> Result<Flow, ExecError> {
        let plan = &self.mp.plans[idx];
        if args.len() != plan.num_params {
            return Err(ExecError::BadFunction(format!(
                "@{} expects {} arguments, got {}",
                plan.name,
                plan.num_params,
                args.len()
            )));
        }
        self.m.cur = idx as u32;
        self.m.slots.extend_from_slice(args);
        // SSA dominance guarantees every slot is written before it is
        // read; poison is an inert filler.
        self.m.slots.resize(plan.num_slots, Val::Poison);
        // Entry-block visit charge (the reference charges one step per
        // block visit so empty infinite loops still exhaust fuel).
        self.m.steps += 1;
        if self.m.steps > self.limits.max_steps {
            return Err(ExecError::Fuel);
        }
        self.run()
    }

    /// Continues a run restored from a snapshot: the pc still points at
    /// the step that demanded the choice; its earlier choices replay
    /// from the shared script prefix.
    fn resume(&mut self) -> Result<Flow, ExecError> {
        self.run()
    }

    fn run(&mut self) -> Result<Flow, ExecError> {
        loop {
            // Steps are transactional: state mutations land only when a
            // step completes, except the monotone step/choice cursors,
            // which are rolled back here so a resumed sibling replays
            // the step's charge and in-step choice prefix identically.
            let (steps0, choice0) = (self.m.steps, self.m.next_choice);
            match self.step() {
                Ok(None) => {}
                Ok(Some(o)) => return Ok(Flow::Done(o)),
                Err(Exc::Ub) => return Ok(Flow::Done(Outcome::Ub)),
                Err(Exc::Stop(Stop::NeedChoice(n))) => {
                    self.m.steps = steps0;
                    self.m.next_choice = choice0;
                    return Ok(Flow::NeedChoice(n));
                }
                Err(Exc::Stop(Stop::Err(e))) => return Err(e),
            }
        }
    }

    fn read(&self, plan: &FnPlan, o: Opnd) -> Val {
        match o {
            Opnd::Slot(i) => self.m.slots[self.m.base as usize + i as usize].clone(),
            Opnd::Const(i) => plan.consts[i as usize].clone(),
        }
    }

    fn write(&mut self, dst: u32, v: Val) {
        self.m.slots[self.m.base as usize + dst as usize] = v;
        self.m.pc += 1;
    }

    fn choose(&mut self, n: u64) -> Result<u64, Stop> {
        if n == 0 {
            return Err(Stop::Err(ExecError::Unsupported(
                "empty choice domain".into(),
            )));
        }
        if n == 1 {
            return Ok(0);
        }
        if self.concrete {
            return Ok(0);
        }
        if n > self.limits.max_fanout {
            return Err(Stop::Err(ExecError::FanoutTooLarge(n)));
        }
        match self.script.get(self.m.next_choice) {
            Some(&v) => {
                self.m.next_choice += 1;
                debug_assert!(v < n, "script entry within domain");
                Ok(v)
            }
            None => Err(Stop::NeedChoice(n)),
        }
    }

    fn choose_scalar(&mut self, ty: &Ty) -> Result<Val, Stop> {
        match ty {
            Ty::Int(bits) => {
                let n = if *bits >= 63 { u64::MAX } else { 1u64 << *bits };
                let idx = self.choose(n)?;
                Ok(Val::int(*bits, u128::from(idx)))
            }
            Ty::Ptr(_) => {
                let idx = self.choose(1u64 << 32)?;
                Ok(Val::ptr(idx as u32))
            }
            other => Err(Stop::Err(ExecError::Unsupported(format!(
                "cannot choose a value of type {other}"
            )))),
        }
    }

    /// Resolves `undef` at a *use* (§3.1), element-wise for vectors.
    fn resolve_use(&mut self, v: Val) -> Result<Val, Stop> {
        match v {
            Val::Undef(ty) => self.choose_scalar(&ty),
            Val::Vec(elems) => {
                let mut out = Vec::with_capacity(elems.len());
                for e in elems {
                    out.push(self.resolve_use(e)?);
                }
                Ok(Val::Vec(out))
            }
            other => Ok(other),
        }
    }

    /// Transfers control along an edge: block-visit charge, then the
    /// successor's phi copies (evaluated simultaneously against
    /// pre-copy slots, one uncapped step charge each, as in the
    /// reference), then the jump.
    fn take_edge(&mut self, plan: &FnPlan, e: u32) -> Result<(), Exc> {
        let edge = &plan.edges[e as usize];
        self.m.steps += 1;
        if self.m.steps > self.limits.max_steps {
            return Err(Exc::Stop(Stop::Err(ExecError::Fuel)));
        }
        if edge.copies.is_empty() {
            self.m.pc = edge.target;
            return Ok(());
        }
        let mut scratch = std::mem::take(&mut self.m.phi_scratch);
        scratch.clear();
        for &(dst, src) in &edge.copies {
            scratch.push((dst, self.read(plan, src)));
        }
        for (dst, v) in scratch.drain(..) {
            self.m.steps += 1;
            self.m.slots[self.m.base as usize + dst as usize] = v;
        }
        self.m.phi_scratch = scratch;
        self.m.pc = edge.target;
        Ok(())
    }

    /// Executes the step at `pc`. `Ok(None)` continues; `Ok(Some)` is a
    /// completed top-level run.
    #[allow(clippy::too_many_lines)]
    fn step(&mut self) -> Result<Option<Outcome>, Exc> {
        let mp = self.mp;
        let plan = &mp.plans[self.m.cur as usize];
        let step = &plan.steps[self.m.pc as usize];
        // Per-instruction charge; terminators charge nothing themselves
        // (edges charge the block visit).
        match step {
            Step::Jmp { .. } | Step::Br { .. } | Step::Ret { .. } | Step::Unreachable => {}
            _ => {
                self.m.steps += 1;
                if self.m.steps > self.limits.max_steps {
                    return Err(Exc::Stop(Stop::Err(ExecError::Fuel)));
                }
            }
        }
        match step {
            Step::Bin {
                op,
                flags,
                bits,
                vlen,
                undef_on_wrap,
                lhs,
                rhs,
                dst,
            } => {
                let a = self.resolve_use(self.read(plan, *lhs))?;
                let b = self.resolve_use(self.read(plan, *rhs))?;
                let v = match vlen {
                    None => bin_scalar(*op, *flags, *bits, *undef_on_wrap, &a, &b)?,
                    Some(n) => {
                        let av = vector_elems(&a, *n as usize);
                        let bv = vector_elems(&b, *n as usize);
                        let mut out = Vec::with_capacity(*n as usize);
                        for (x, y) in av.iter().zip(&bv) {
                            out.push(bin_scalar(*op, *flags, *bits, *undef_on_wrap, x, y)?);
                        }
                        Val::Vec(out)
                    }
                };
                self.write(*dst, v);
            }
            Step::Icmp {
                cond,
                vlen,
                lhs,
                rhs,
                dst,
            } => {
                let a = self.resolve_use(self.read(plan, *lhs))?;
                let b = self.resolve_use(self.read(plan, *rhs))?;
                let mem = self.m.mem.as_ref().unwrap_or(self.init_mem);
                let v = match vlen {
                    None => icmp_scalar(*cond, mem, &a, &b),
                    Some(n) => {
                        let av = vector_elems(&a, *n as usize);
                        let bv = vector_elems(&b, *n as usize);
                        Val::Vec(
                            av.iter()
                                .zip(&bv)
                                .map(|(x, y)| icmp_scalar(*cond, mem, x, y))
                                .collect(),
                        )
                    }
                };
                self.write(*dst, v);
            }
            Step::Select {
                ty,
                poison_cond,
                propagate_unselected,
                cond,
                tval,
                fval,
                dst,
            } => {
                let c = self.resolve_use(self.read(plan, *cond))?;
                let tv = self.read(plan, *tval);
                let fv = self.read(plan, *fval);
                let taken = match c {
                    Val::Int { v, .. } => v == 1,
                    Val::Poison => match poison_cond {
                        PoisonAction::Propagate => {
                            self.write(*dst, poison_of(ty));
                            return Ok(None);
                        }
                        PoisonAction::Ub => return Err(Exc::Ub),
                        PoisonAction::Nondet => self.choose(2)? == 1,
                    },
                    other => {
                        return Err(Exc::Stop(Stop::Err(ExecError::Unsupported(format!(
                            "select on {other}"
                        )))))
                    }
                };
                let v = if *propagate_unselected && (tv.contains_poison() || fv.contains_poison()) {
                    poison_of(ty)
                } else if taken {
                    tv
                } else {
                    fv
                };
                self.write(*dst, v);
            }
            Step::Freeze { ty, val, dst } => {
                let v = self.read(plan, *val);
                let frozen = match (ty, v) {
                    (Ty::Vector { elems, elem }, v) => {
                        let vals = vector_elems(&v, *elems as usize);
                        let mut out = Vec::with_capacity(vals.len());
                        for e in vals {
                            out.push(self.freeze_scalar(elem, e)?);
                        }
                        Val::Vec(out)
                    }
                    (_, v) => self.freeze_scalar(ty, v)?,
                };
                self.write(*dst, frozen);
            }
            Step::Cast {
                kind,
                from_bits,
                to_bits,
                vlen,
                val,
                dst,
            } => {
                let v = self.resolve_use(self.read(plan, *val))?;
                let scalar = |e: &Val| match e.as_int() {
                    Some(x) => Val::int(*to_bits, eval_cast(*kind, *from_bits, *to_bits, x)),
                    None => Val::Poison,
                };
                let v = match vlen {
                    None => scalar(&v),
                    Some(n) => Val::Vec(vector_elems(&v, *n as usize).iter().map(scalar).collect()),
                };
                self.write(*dst, v);
            }
            Step::Bitcast {
                from_ty,
                to_ty,
                val,
                dst,
            } => {
                let v = self.read(plan, *val);
                let v = raise(to_ty, &lower(from_ty, &v));
                self.write(*dst, v);
            }
            Step::Gep {
                stride,
                inbounds,
                base,
                idx,
                dst,
            } => {
                let b = self.resolve_use(self.read(plan, *base))?;
                let i = self.resolve_use(self.read(plan, *idx))?;
                let v = match (&b, &i) {
                    (Val::Ptr(Ptr::Addr(addr)), Val::Int { .. }) => {
                        let offset = i.as_signed().expect("int");
                        let full = i128::from(*addr) + offset * stride;
                        if *inbounds && (full < 0 || full > i128::from(u32::MAX)) {
                            // Pointer arithmetic overflow is deferred UB
                            // (§2.4).
                            Val::Poison
                        } else {
                            Val::ptr(full.rem_euclid(1i128 << 32) as u32)
                        }
                    }
                    (Val::Ptr(Ptr::Block { block, off }), Val::Int { .. }) => {
                        let offset = i.as_signed().expect("int");
                        let full = i128::from(*off) + offset * stride;
                        let mem = self.m.mem.as_ref().unwrap_or(self.init_mem);
                        // Deferred UB: an inbounds gep may only move
                        // within the block (one-past-the-end allowed).
                        if *inbounds && (full < 0 || full > i128::from(mem.block_size(*block))) {
                            Val::Poison
                        } else {
                            Val::Ptr(Ptr::Block {
                                block: *block,
                                off: full.rem_euclid(1i128 << 32) as u32,
                            })
                        }
                    }
                    // Poison base or index -> poison pointer.
                    _ => Val::Poison,
                };
                self.write(*dst, v);
            }
            Step::Load {
                ty,
                width,
                ptr,
                dst,
            } => {
                let p = self.resolve_use(self.read(plan, *ptr))?;
                let Val::Ptr(p) = p else {
                    return Err(Exc::Ub);
                };
                let mem = self.m.mem.as_ref().unwrap_or(self.init_mem);
                match mem.load_ptr(p, *width) {
                    Some(bits) => {
                        let v = raise(ty, &bits);
                        self.write(*dst, v);
                    }
                    None => return Err(Exc::Ub),
                }
            }
            Step::Store { ty, val, ptr, dst } => {
                let v = self.read(plan, *val);
                let p = self.resolve_use(self.read(plan, *ptr))?;
                let Val::Ptr(p) = p else {
                    return Err(Exc::Ub);
                };
                let bits = lower(ty, &v);
                // First store of the run: fault in a private copy of
                // the initial memory.
                let mem = self.m.mem.get_or_insert_with(|| self.init_mem.clone());
                if !mem.store_ptr(p, &bits) {
                    return Err(Exc::Ub);
                }
                self.write(*dst, Val::int(1, 0)); // dummy; stores define no register
            }
            Step::Assume { cond, dst } => {
                // The guard consumes its fact: a false *or poison* fact
                // is immediate UB (deferred UB is promoted here, exactly
                // as `br` does under the proposed semantics). Freezing
                // the condition first launders the poison half away.
                let c = self.resolve_use(self.read(plan, *cond))?;
                match c {
                    Val::Poison => return Err(Exc::Ub),
                    Val::Int { v, .. } => {
                        if v != 1 {
                            return Err(Exc::Ub);
                        }
                        self.write(*dst, Val::int(1, 0)); // dummy; guards define no register
                    }
                    other => {
                        return Err(Exc::Stop(Stop::Err(ExecError::Unsupported(format!(
                            "assume on {other}"
                        )))))
                    }
                }
            }
            Step::Alloca { size, fill, dst } => {
                // Allocation mutates the (copy-on-write) memory even
                // though nothing is written yet: the block table grows.
                let mem = self.m.mem.get_or_insert_with(|| self.init_mem.clone());
                let block = mem.alloca(*size, *fill);
                self.write(*dst, Val::Ptr(Ptr::Block { block, off: 0 }));
            }
            Step::PtrToInt { val, dst } => {
                let v = self.resolve_use(self.read(plan, *val))?;
                // Observing an address forces the finite phase even when
                // the operand is poison (matches the reference).
                let mem = self.m.mem.get_or_insert_with(|| self.init_mem.clone());
                mem.concretize();
                let v = match v {
                    Val::Ptr(p) => {
                        let addr = mem.ptr_addr(p);
                        Val::int(frost_ir::PTR_BITS, u128::from(addr))
                    }
                    _ => Val::Poison,
                };
                self.write(*dst, v);
            }
            Step::IntToPtr { val, dst } => {
                let v = self.resolve_use(self.read(plan, *val))?;
                let mem = self.m.mem.get_or_insert_with(|| self.init_mem.clone());
                mem.concretize();
                let v = match v.as_int() {
                    Some(x) => Val::ptr(x as u32),
                    None => Val::Poison,
                };
                self.write(*dst, v);
            }
            Step::Extract {
                len,
                lane,
                vec,
                dst,
            } => {
                let v = self.read(plan, *vec);
                let e = vector_elems(&v, *len as usize)[*lane as usize].clone();
                self.write(*dst, e);
            }
            Step::Insert {
                len,
                lane,
                vec,
                elt,
                dst,
            } => {
                let v = self.read(plan, *vec);
                let e = self.read(plan, *elt);
                let mut elems = vector_elems(&v, *len as usize);
                elems[*lane as usize] = e;
                self.write(*dst, Val::Vec(elems));
            }
            Step::CallPlan {
                callee,
                args,
                arity_err,
                dst,
            } => {
                let callee_plan = &mp.plans[*callee as usize];
                let vals: Vec<Val> = args.iter().map(|&a| self.read(plan, a)).collect();
                // Depth check precedes the arity check, matching the
                // reference (`eval_call` checks depth before
                // `exec_function` validates arguments).
                if self.m.frames.len() as u32 >= self.limits.max_call_depth {
                    return Err(Exc::Stop(Stop::Err(ExecError::Fuel)));
                }
                if let Some(msg) = arity_err {
                    return Err(Exc::Stop(Stop::Err(ExecError::BadFunction(
                        msg.to_string(),
                    ))));
                }
                self.m.frames.push(Frame {
                    plan: self.m.cur,
                    base: self.m.base,
                    ret_pc: self.m.pc + 1,
                    ret_dst: *dst,
                });
                self.m.cur = *callee;
                self.m.base = self.m.slots.len() as u32;
                self.m.slots.extend(vals);
                self.m
                    .slots
                    .resize(self.m.base as usize + callee_plan.num_slots, Val::Poison);
                self.m.pc = 0;
                // Callee entry-block visit charge.
                self.m.steps += 1;
                if self.m.steps > self.limits.max_steps {
                    return Err(Exc::Stop(Stop::Err(ExecError::Fuel)));
                }
            }
            Step::CallExt {
                callee,
                ret_ty,
                readnone,
                poison_arg_ub,
                args,
                dst,
            } => {
                let vals: Vec<Val> = args.iter().map(|&a| self.read(plan, a)).collect();
                if *readnone {
                    // A pure external function: poison in, poison out;
                    // otherwise an arbitrary (environment-chosen)
                    // result. Not observable.
                    let v = if vals.iter().any(Val::contains_poison) {
                        poison_of(ret_ty)
                    } else if ret_ty.is_void() {
                        Val::int(1, 0)
                    } else {
                        self.choose_scalar(ret_ty.scalar_ty())?
                    };
                    self.write(*dst, v);
                    return Ok(None);
                }
                // Side-effecting external call: poison reaching it is
                // UB (§1).
                if *poison_arg_ub && vals.iter().any(Val::contains_poison) {
                    return Err(Exc::Ub);
                }
                let ret = if ret_ty.is_void() {
                    None
                } else {
                    Some(self.choose_scalar(ret_ty.scalar_ty())?)
                };
                self.m.trace.push(Event {
                    callee: callee.to_string(),
                    args: vals,
                    ret: ret.clone(),
                });
                self.write(*dst, ret.unwrap_or(Val::int(1, 0)));
            }
            Step::CallUnknown { callee } => {
                return Err(Exc::Stop(Stop::Err(ExecError::BadFunction(format!(
                    "unknown callee @{callee}"
                )))));
            }
            Step::Jmp { edge } => self.take_edge(plan, *edge)?,
            Step::Br {
                on_poison,
                cond,
                then_edge,
                else_edge,
            } => {
                let c = self.resolve_use(self.read(plan, *cond))?;
                let taken = match c {
                    Val::Int { v, .. } => v == 1,
                    Val::Poison => match on_poison {
                        PoisonAction::Ub => return Err(Exc::Ub),
                        PoisonAction::Nondet | PoisonAction::Propagate => self.choose(2)? == 1,
                    },
                    other => {
                        return Err(Exc::Stop(Stop::Err(ExecError::Unsupported(format!(
                            "branch on {other}"
                        )))))
                    }
                };
                self.take_edge(plan, if taken { *then_edge } else { *else_edge })?;
            }
            Step::Ret { val } => {
                let v = val.map(|o| self.read(plan, o));
                match self.m.frames.pop() {
                    None => {
                        let mem = match &self.m.mem {
                            Some(m) => m.snapshot(),
                            None => self.init_mem.snapshot(),
                        };
                        return Ok(Some(Outcome::Ret {
                            val: v,
                            mem,
                            trace: self.m.trace.clone(),
                        }));
                    }
                    Some(f) => {
                        self.m.slots.truncate(self.m.base as usize);
                        self.m.slots[f.base as usize + f.ret_dst as usize] =
                            v.unwrap_or(Val::int(1, 0));
                        self.m.cur = f.plan;
                        self.m.base = f.base;
                        self.m.pc = f.ret_pc;
                    }
                }
            }
            Step::Unreachable => return Err(Exc::Ub),
        }
        Ok(None)
    }

    fn freeze_scalar(&mut self, ty: &Ty, v: Val) -> Result<Val, Stop> {
        match v {
            Val::Poison | Val::Undef(_) => self.choose_scalar(ty),
            defined => Ok(defined),
        }
    }
}

fn bin_scalar(
    op: BinOp,
    flags: Flags,
    bits: u32,
    undef_on_wrap: bool,
    a: &Val,
    b: &Val,
) -> Result<Val, Exc> {
    if op.may_have_immediate_ub() {
        // Division: a poison divisor, or zero, is immediate UB; a
        // poison dividend yields poison unless the divisor makes the
        // signed-overflow case reachable.
        let bv = match b {
            Val::Poison => return Err(Exc::Ub),
            Val::Int { v, .. } => *v,
            other => {
                return Err(Exc::Stop(Stop::Err(ExecError::Unsupported(format!(
                    "divide by {other}"
                )))))
            }
        };
        if bv == 0 {
            return Err(Exc::Ub);
        }
        if a.contains_poison() {
            let divisor_is_minus1 = Val::int(bits, bv).as_signed() == Some(-1);
            if matches!(op, BinOp::SDiv | BinOp::SRem) && divisor_is_minus1 {
                // poison could be INT_MIN: the UB case is reachable.
                return Err(Exc::Ub);
            }
            return Ok(Val::Poison);
        }
    } else if a.contains_poison() || b.contains_poison() {
        return Ok(Val::Poison);
    }
    let (Some(x), Some(y)) = (a.as_int(), b.as_int()) else {
        return Err(Exc::Stop(Stop::Err(ExecError::Unsupported(format!(
            "binop on {a} and {b}"
        )))));
    };
    match eval_binop(op, flags, bits, x, y) {
        ScalarResult::Val(v) => Ok(Val::int(bits, v)),
        ScalarResult::Poison => {
            // §2.4 strawman semantics: deferred binop UB yields undef
            // instead of poison.
            if undef_on_wrap {
                Ok(Val::Undef(Ty::Int(bits)))
            } else {
                Ok(Val::Poison)
            }
        }
        ScalarResult::Ub => Err(Exc::Ub),
    }
}

fn icmp_scalar(cond: Cond, mem: &Memory, x: &Val, y: &Val) -> Val {
    match (x, y) {
        (Val::Poison, _) | (_, Val::Poison) => Val::Poison,
        (Val::Int { bits, v: xa }, Val::Int { v: xb, .. }) => {
            Val::bool(eval_icmp(cond, *bits, *xa, *xb))
        }
        // Pointers compare by concrete address (deterministic layout;
        // does not force the finite phase) — matches the reference.
        (Val::Ptr(pa), Val::Ptr(pb)) => Val::bool(eval_icmp(
            cond,
            frost_ir::PTR_BITS,
            u128::from(mem.ptr_addr(*pa)),
            u128::from(mem.ptr_addr(*pb)),
        )),
        _ => Val::Poison,
    }
}

/// Splits a vector value into elements; scalar poison expands to
/// all-poison (defensive — constants are already element-wise).
fn vector_elems(v: &Val, len: usize) -> Vec<Val> {
    match v {
        Val::Vec(elems) => {
            debug_assert_eq!(elems.len(), len);
            elems.clone()
        }
        Val::Poison => vec![Val::Poison; len],
        other => vec![other.clone(); len],
    }
}

/// The always-on plan counters (`frost.core.plan.*`; see
/// docs/OBSERVABILITY.md). Under parallel campaigns two workers may
/// race a cache key and both compile/run, so these are throughput
/// telemetry, not a determinism surface — like `frost.core.cache.*`.
struct PlanCounters {
    compiles: &'static frost_telemetry::Counter,
    cache_hits: &'static frost_telemetry::Counter,
    runs: &'static frost_telemetry::Counter,
    resumed_prefix_insts: &'static frost_telemetry::Counter,
}

fn plan_counters() -> &'static PlanCounters {
    static COUNTERS: OnceLock<PlanCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| PlanCounters {
        compiles: frost_telemetry::counter("frost.core.plan.compiles"),
        cache_hits: frost_telemetry::counter("frost.core.plan.cache_hits"),
        runs: frost_telemetry::counter("frost.core.plan.runs"),
        resumed_prefix_insts: frost_telemetry::counter("frost.core.plan.resumed_prefix_insts"),
    })
}

/// A thread-safe memoization table for compiled plans, keyed like
/// [`crate::cache::OutcomeCache`]: the structural fingerprint
/// ([`frost_ir::FunctionKey`]) of the entry function plus the
/// semantics. Campaign corpora are full of α-equivalent functions;
/// each distinct shape is compiled once per campaign.
#[derive(Default)]
pub struct PlanCache {
    map: Mutex<PlanMap>,
}

/// Fingerprint+semantics → (shared plan, entry-function index).
type PlanMap = crate::fasthash::FastHashMap<(FunctionKey, Semantics), (Arc<ModulePlan>, usize)>;

impl PlanCache {
    /// An empty cache.
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// The plan for `name` in `module` under `sem`, compiling on a
    /// miss. Returns the shared plan and the entry function's index in
    /// it, or `None` if `module` has no function `name`.
    pub fn get_or_compile(
        &self,
        module: &Module,
        name: &str,
        sem: Semantics,
    ) -> Option<(Arc<ModulePlan>, usize)> {
        let key = FunctionKey::of(module.function(name)?);
        self.get_or_compile_keyed(&key, module, name, sem)
    }

    /// [`PlanCache::get_or_compile`] for callers that already computed
    /// the function's fingerprint (e.g. [`crate::cache::OutcomeCache`],
    /// whose own key
    /// contains it) — saves re-encoding the body on every probe.
    ///
    /// `key` must be `FunctionKey::of` of `name`'s body; a mismatched
    /// key silently poisons the cache for that fingerprint.
    pub fn get_or_compile_keyed(
        &self,
        key: &FunctionKey,
        module: &Module,
        name: &str,
        sem: Semantics,
    ) -> Option<(Arc<ModulePlan>, usize)> {
        self.get_or_compile_keyed_policy(key, module, name, sem, true)
    }

    /// [`PlanCache::get_or_compile_keyed`] with an explicit storage
    /// policy. `store = false` still probes the table (a canonical form
    /// cached by an earlier target check is reused) but never inserts
    /// on a miss: exhaustive sweeps walk the source space in order and
    /// never revisit a source shape, so storing every source plan only
    /// grows the map — and the allocator's working set — linearly with
    /// the campaign.
    pub fn get_or_compile_keyed_policy(
        &self,
        key: &FunctionKey,
        module: &Module,
        name: &str,
        sem: Semantics,
        store: bool,
    ) -> Option<(Arc<ModulePlan>, usize)> {
        if let Some(entry) = self
            .map
            .lock()
            .expect("plan cache lock")
            .get(&(key.clone(), sem))
        {
            plan_counters().cache_hits.incr();
            return Some(entry.clone());
        }
        // Compile outside the lock; a racing double-compile is a
        // harmless overwrite of an identical plan.
        let plan = Arc::new(ModulePlan::compile(module, sem));
        let idx = plan.function_index(name)?;
        let entry = (plan, idx);
        if store {
            self.map
                .lock()
                .expect("plan cache lock")
                .insert((key.clone(), sem), entry.clone());
        }
        Some(entry)
    }

    /// Distinct (function, semantics) combinations stored.
    pub fn len(&self) -> usize {
        self.map.lock().expect("plan cache lock").len()
    }

    /// Returns `true` if nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frost_ir::parse_module;

    fn plan_outcomes(src: &str, name: &str, args: &[Val], sem: Semantics) -> OutcomeSet {
        let m = parse_module(src).expect("parses");
        let plan = ModulePlan::compile(&m, sem);
        let idx = plan.function_index(name).expect("function exists");
        let mut machine = Machine::new();
        plan.enumerate(
            idx,
            args,
            &Memory::zeroed(0),
            Limits::default(),
            &mut machine,
        )
        .expect("enumerates")
    }

    fn reference_outcomes(src: &str, name: &str, args: &[Val], sem: Semantics) -> OutcomeSet {
        let m = parse_module(src).expect("parses");
        crate::exec::reference::enumerate_outcomes(
            &m,
            name,
            args,
            &Memory::zeroed(0),
            sem,
            Limits::default(),
        )
        .expect("enumerates")
    }

    #[test]
    fn plan_matches_reference_on_branching_freeze() {
        let src = "define i8 @f(i8 %x) {\nentry:\n  %p = freeze i2 poison\n  %c = icmp eq i2 %p, 1\n  br i1 %c, label %a, label %b\na:\n  %r = add i8 %x, 1\n  ret i8 %r\nb:\n  ret i8 %x\n}";
        for sem in [Semantics::proposed(), Semantics::legacy_gvn()] {
            let p = plan_outcomes(src, "f", &[Val::int(8, 9)], sem);
            let r = reference_outcomes(src, "f", &[Val::int(8, 9)], sem);
            assert_eq!(p, r, "under {}", sem.name);
        }
    }

    #[test]
    fn machine_is_reusable_across_plans_and_inputs() {
        let a = parse_module("define i2 @f() {\nentry:\n  %a = freeze i2 poison\n  ret i2 %a\n}")
            .unwrap();
        let b = parse_module("define i8 @g(i8 %x) {\nentry:\n  %r = add i8 %x, 1\n  ret i8 %r\n}")
            .unwrap();
        let pa = ModulePlan::compile(&a, Semantics::proposed());
        let pb = ModulePlan::compile(&b, Semantics::proposed());
        let mut machine = Machine::new();
        let mem = Memory::zeroed(0);
        let s1 = pa
            .enumerate(0, &[], &mem, Limits::default(), &mut machine)
            .unwrap();
        assert_eq!(s1.len(), 4);
        for v in 0..4u128 {
            let s = pb
                .enumerate(0, &[Val::int(8, v)], &mem, Limits::default(), &mut machine)
                .unwrap();
            assert_eq!(s.len(), 1);
        }
        // And back to the first plan: the machine carries no stale
        // state between runs.
        let s2 = pa
            .enumerate(0, &[], &mem, Limits::default(), &mut machine)
            .unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn enumeration_counts_states_like_the_reference() {
        // Two freezes of i2 poison: 1 initial run + 4 + 16 = 21 states.
        // max_states of 20 must explode, 21 must succeed — exactly the
        // reference's accounting.
        let src = "define i2 @f() {\nentry:\n  %a = freeze i2 poison\n  %b = freeze i2 poison\n  %c = add i2 %a, %b\n  ret i2 %c\n}";
        let m = parse_module(src).unwrap();
        let plan = ModulePlan::compile(&m, Semantics::proposed());
        let mut machine = Machine::new();
        let tight = Limits {
            max_states: 20,
            ..Limits::default()
        };
        let err = plan
            .enumerate(0, &[], &Memory::zeroed(0), tight, &mut machine)
            .unwrap_err();
        assert_eq!(err, ExecError::StateExplosion);
        let exact = Limits {
            max_states: 21,
            ..Limits::default()
        };
        let set = plan
            .enumerate(0, &[], &Memory::zeroed(0), exact, &mut machine)
            .unwrap();
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn resumed_runs_share_the_memory_prefix() {
        // A store before the fork must be visible in every branch; a
        // store in one branch must not leak into siblings.
        let src = r#"
define i8 @f(i8* %p) {
entry:
  store i8 5, i8* %p
  %c = freeze i1 poison
  br i1 %c, label %a, label %b
a:
  store i8 7, i8* %p
  %va = load i8, i8* %p
  ret i8 %va
b:
  %vb = load i8, i8* %p
  ret i8 %vb
}
"#;
        let m = parse_module(src).unwrap();
        let plan = ModulePlan::compile(&m, Semantics::proposed());
        let mut machine = Machine::new();
        let mem = Memory::zeroed(1);
        let set = plan
            .enumerate(
                0,
                &[Val::ptr(Memory::BASE)],
                &mem,
                Limits::default(),
                &mut machine,
            )
            .unwrap();
        let mut vals: Vec<u128> = set
            .iter()
            .filter_map(|o| match o {
                Outcome::Ret { val: Some(v), .. } => v.as_int(),
                _ => None,
            })
            .collect();
        vals.sort_unstable();
        assert_eq!(vals, vec![5, 7]);
        let r = crate::exec::reference::enumerate_outcomes(
            &m,
            "f",
            &[Val::ptr(Memory::BASE)],
            &mem,
            Semantics::proposed(),
            Limits::default(),
        )
        .unwrap();
        assert_eq!(set, r);
    }

    #[test]
    fn plan_cache_hits_on_alpha_equivalent_functions() {
        let a = parse_module("define i2 @g(i2 %x) {\nentry:\n  %a = add i2 %x, 1\n  ret i2 %a\n}")
            .unwrap();
        let b = parse_module(
            "define i2 @renamed(i2 %x) {\nentry:\n  %a = add i2 %x, 1\n  ret i2 %a\n}",
        )
        .unwrap();
        let cache = PlanCache::new();
        let sem = Semantics::proposed();
        let (p1, i1) = cache.get_or_compile(&a, "g", sem).unwrap();
        let (p2, i2) = cache.get_or_compile(&b, "renamed", sem).unwrap();
        assert!(Arc::ptr_eq(&p1, &p2), "same shape must share a plan");
        assert_eq!(i1, i2);
        assert_eq!(cache.len(), 1);
        assert!(cache.get_or_compile(&a, "nope", sem).is_none());
        // Different semantics: separate entry.
        cache
            .get_or_compile(&a, "g", Semantics::legacy_gvn())
            .unwrap();
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn concrete_and_scripted_runs_match_reference_entry_points() {
        let src = "define i8 @f() {\nentry:\n  %a = freeze i8 poison\n  ret i8 %a\n}";
        let m = parse_module(src).unwrap();
        let plan = ModulePlan::compile(&m, Semantics::proposed());
        let mut machine = Machine::new();
        let mem = Memory::zeroed(0);
        let (o, steps) = plan
            .run_concrete(0, &[], &mem, Limits::default(), &mut machine)
            .unwrap();
        assert_eq!(o.ret_val(), Some(&Val::int(8, 0)));
        assert!(steps >= 1);
        match plan
            .run_with_script(0, &[], &mem, Limits::default(), &[], &mut machine)
            .unwrap()
        {
            RunResult::NeedChoice(n) => assert_eq!(n, 256),
            RunResult::Done(_) => panic!("empty script must fork at the freeze"),
        }
        match plan
            .run_with_script(0, &[], &mem, Limits::default(), &[9], &mut machine)
            .unwrap()
        {
            RunResult::Done(o) => assert_eq!(o.ret_val(), Some(&Val::int(8, 9))),
            RunResult::NeedChoice(_) => panic!("script satisfies the only choice"),
        }
    }
}
