//! Scalar evaluation of arithmetic, comparisons, and conversions on
//! *defined* operands, including the poison-producing attribute checks
//! (`nsw`/`nuw`/`exact`) and the immediate-UB cases of division.

use frost_ir::value::{from_signed, to_signed, truncate};
use frost_ir::{BinOp, CastKind, Cond, Flags};

/// Result of a scalar operation on defined inputs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ScalarResult {
    /// A defined result.
    Val(u128),
    /// The operation's deferred-UB condition fired (e.g. `nsw`
    /// overflow): the result is poison.
    Poison,
    /// The operation's immediate-UB condition fired (e.g. division by
    /// zero).
    Ub,
}

/// Evaluates `a op b` on `bits`-wide defined payloads.
pub fn eval_binop(op: BinOp, flags: Flags, bits: u32, a: u128, b: u128) -> ScalarResult {
    use ScalarResult::*;
    let sa = to_signed(a, bits);
    let sb = to_signed(b, bits);
    let smin = -(1i128 << (bits - 1));
    let smax = (1i128 << (bits - 1)) - 1;
    match op {
        BinOp::Add => {
            let wide = a + b;
            let swide = sa + sb;
            if flags.nuw && wide != truncate(wide, bits) {
                return Poison;
            }
            if flags.nsw && (swide < smin || swide > smax) {
                return Poison;
            }
            Val(truncate(wide, bits))
        }
        BinOp::Sub => {
            let swide = sa - sb;
            if flags.nuw && b > a {
                return Poison;
            }
            if flags.nsw && (swide < smin || swide > smax) {
                return Poison;
            }
            Val(truncate(a.wrapping_sub(b), bits))
        }
        BinOp::Mul => {
            let wide = a.checked_mul(b);
            let swide = sa.checked_mul(sb);
            if flags.nuw && wide.is_none_or(|w| w != truncate(w, bits)) {
                return Poison;
            }
            if flags.nsw && swide.is_none_or(|w| w < smin || w > smax) {
                return Poison;
            }
            Val(truncate(a.wrapping_mul(b), bits))
        }
        BinOp::UDiv => {
            if b == 0 {
                return Ub;
            }
            let q = a / b;
            if flags.exact && q * b != a {
                return Poison;
            }
            Val(truncate(q, bits))
        }
        BinOp::SDiv => {
            if b == 0 || (sa == smin && sb == -1) {
                return Ub;
            }
            let q = sa / sb;
            if flags.exact && q * sb != sa {
                return Poison;
            }
            Val(from_signed(q, bits))
        }
        BinOp::URem => {
            if b == 0 {
                return Ub;
            }
            Val(truncate(a % b, bits))
        }
        BinOp::SRem => {
            if b == 0 || (sa == smin && sb == -1) {
                return Ub;
            }
            Val(from_signed(sa % sb, bits))
        }
        BinOp::Shl => {
            if b >= u128::from(bits) {
                return Poison; // shift past bitwidth is deferred UB (§2.2)
            }
            let sh = b as u32;
            let r = truncate(a << sh, bits);
            if flags.nuw && (a >> (bits - sh)) != 0 && sh > 0 {
                return Poison;
            }
            if flags.nsw && to_signed(r, bits) >> sh != sa {
                return Poison;
            }
            Val(r)
        }
        BinOp::LShr => {
            if b >= u128::from(bits) {
                return Poison;
            }
            let sh = b as u32;
            if flags.exact && truncate(a, sh.min(128)) != 0 && sh > 0 {
                return Poison;
            }
            Val(a >> sh)
        }
        BinOp::AShr => {
            if b >= u128::from(bits) {
                return Poison;
            }
            let sh = b as u32;
            if flags.exact && truncate(a, sh.min(128)) != 0 && sh > 0 {
                return Poison;
            }
            Val(from_signed(sa >> sh, bits))
        }
        BinOp::And => Val(a & b),
        BinOp::Or => Val(a | b),
        BinOp::Xor => Val(a ^ b),
    }
}

/// Evaluates `a cond b` on `bits`-wide defined payloads.
pub fn eval_icmp(cond: Cond, bits: u32, a: u128, b: u128) -> bool {
    cond.eval(bits, a, b)
}

/// Evaluates a width conversion on a defined payload.
pub fn eval_cast(kind: CastKind, from_bits: u32, to_bits: u32, v: u128) -> u128 {
    match kind {
        CastKind::Zext => v,
        CastKind::Sext => from_signed(to_signed(v, from_bits), to_bits),
        CastKind::Trunc => truncate(v, to_bits),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ScalarResult::{Poison, Ub, Val};

    #[test]
    fn add_wraps_without_flags() {
        assert_eq!(eval_binop(BinOp::Add, Flags::NONE, 8, 255, 1), Val(0));
        assert_eq!(eval_binop(BinOp::Add, Flags::NONE, 2, 3, 3), Val(2));
    }

    #[test]
    fn add_nsw_poisons_on_signed_overflow() {
        // 127 + 1 overflows i8 signed.
        assert_eq!(eval_binop(BinOp::Add, Flags::NSW, 8, 127, 1), Poison);
        // 255 + 1 == -1 + 1 == 0: no signed overflow.
        assert_eq!(eval_binop(BinOp::Add, Flags::NSW, 8, 255, 1), Val(0));
        // ...but it is an unsigned overflow.
        assert_eq!(eval_binop(BinOp::Add, Flags::NUW, 8, 255, 1), Poison);
    }

    #[test]
    fn sub_flags() {
        assert_eq!(eval_binop(BinOp::Sub, Flags::NUW, 8, 1, 2), Poison);
        assert_eq!(eval_binop(BinOp::Sub, Flags::NONE, 8, 1, 2), Val(255));
        // -128 - 1 overflows signed i8.
        assert_eq!(eval_binop(BinOp::Sub, Flags::NSW, 8, 0x80, 1), Poison);
    }

    #[test]
    fn mul_flags() {
        assert_eq!(eval_binop(BinOp::Mul, Flags::NONE, 8, 16, 16), Val(0));
        assert_eq!(eval_binop(BinOp::Mul, Flags::NUW, 8, 16, 16), Poison);
        assert_eq!(eval_binop(BinOp::Mul, Flags::NSW, 8, 16, 8), Poison);
        assert_eq!(eval_binop(BinOp::Mul, Flags::NSW, 8, 11, 11), Val(121));
    }

    #[test]
    fn division_ub_cases() {
        assert_eq!(eval_binop(BinOp::UDiv, Flags::NONE, 8, 10, 0), Ub);
        assert_eq!(eval_binop(BinOp::SDiv, Flags::NONE, 8, 10, 0), Ub);
        // INT_MIN / -1 is immediate UB.
        assert_eq!(eval_binop(BinOp::SDiv, Flags::NONE, 8, 0x80, 0xff), Ub);
        assert_eq!(eval_binop(BinOp::SRem, Flags::NONE, 8, 0x80, 0xff), Ub);
        assert_eq!(eval_binop(BinOp::URem, Flags::NONE, 8, 7, 0), Ub);
        assert_eq!(eval_binop(BinOp::SDiv, Flags::NONE, 8, 0xf8, 2), Val(0xfc));
        // -8/2 = -4
    }

    #[test]
    fn exact_division() {
        assert_eq!(eval_binop(BinOp::UDiv, Flags::EXACT, 8, 10, 2), Val(5));
        assert_eq!(eval_binop(BinOp::UDiv, Flags::EXACT, 8, 11, 2), Poison);
        assert_eq!(eval_binop(BinOp::SDiv, Flags::EXACT, 8, 0xf8, 2), Val(0xfc));
        assert_eq!(eval_binop(BinOp::SDiv, Flags::EXACT, 8, 0xf9, 2), Poison);
    }

    #[test]
    fn shift_past_bitwidth_is_poison() {
        assert_eq!(eval_binop(BinOp::Shl, Flags::NONE, 8, 1, 8), Poison);
        assert_eq!(eval_binop(BinOp::Shl, Flags::NONE, 8, 1, 200), Poison);
        assert_eq!(eval_binop(BinOp::LShr, Flags::NONE, 8, 1, 8), Poison);
        assert_eq!(eval_binop(BinOp::AShr, Flags::NONE, 8, 1, 9), Poison);
        assert_eq!(eval_binop(BinOp::Shl, Flags::NONE, 8, 1, 7), Val(128));
    }

    #[test]
    fn shl_wrap_flags() {
        assert_eq!(eval_binop(BinOp::Shl, Flags::NUW, 8, 0x80, 1), Poison);
        assert_eq!(eval_binop(BinOp::Shl, Flags::NUW, 8, 0x40, 1), Val(0x80));
        // 0x40 << 1 = 0x80 = -128: sign changed, nsw poison.
        assert_eq!(eval_binop(BinOp::Shl, Flags::NSW, 8, 0x40, 1), Poison);
        assert_eq!(eval_binop(BinOp::Shl, Flags::NSW, 8, 0x20, 1), Val(0x40));
    }

    #[test]
    fn exact_shifts() {
        assert_eq!(eval_binop(BinOp::LShr, Flags::EXACT, 8, 4, 2), Val(1));
        assert_eq!(eval_binop(BinOp::LShr, Flags::EXACT, 8, 5, 2), Poison);
        assert_eq!(eval_binop(BinOp::AShr, Flags::EXACT, 8, 0xfc, 2), Val(0xff));
        assert_eq!(eval_binop(BinOp::AShr, Flags::EXACT, 8, 0xfd, 2), Poison);
    }

    #[test]
    fn ashr_is_arithmetic() {
        assert_eq!(eval_binop(BinOp::AShr, Flags::NONE, 8, 0x80, 1), Val(0xc0));
        assert_eq!(eval_binop(BinOp::LShr, Flags::NONE, 8, 0x80, 1), Val(0x40));
    }

    #[test]
    fn bitwise_ops() {
        assert_eq!(
            eval_binop(BinOp::And, Flags::NONE, 8, 0b1100, 0b1010),
            Val(0b1000)
        );
        assert_eq!(
            eval_binop(BinOp::Or, Flags::NONE, 8, 0b1100, 0b1010),
            Val(0b1110)
        );
        assert_eq!(
            eval_binop(BinOp::Xor, Flags::NONE, 8, 0b1100, 0b1010),
            Val(0b0110)
        );
    }

    #[test]
    fn casts() {
        assert_eq!(eval_cast(CastKind::Zext, 8, 16, 0xff), 0xff);
        assert_eq!(eval_cast(CastKind::Sext, 8, 16, 0xff), 0xffff);
        assert_eq!(eval_cast(CastKind::Sext, 8, 16, 0x7f), 0x7f);
        assert_eq!(eval_cast(CastKind::Trunc, 16, 8, 0x1234), 0x34);
    }

    #[test]
    fn exhaustive_i2_add_nsw_against_reference() {
        // Cross-check nsw on i2 against a direct signed computation.
        for a in 0..4u128 {
            for b in 0..4u128 {
                let got = eval_binop(BinOp::Add, Flags::NSW, 2, a, b);
                let s = to_signed(a, 2) + to_signed(b, 2);
                let expect = if (-2..=1).contains(&s) {
                    Val(truncate(s as u128, 2))
                } else {
                    Poison
                };
                assert_eq!(got, expect, "a={a} b={b}");
            }
        }
    }
}
