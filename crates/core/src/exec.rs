//! The executable operational semantics (Figure 5 of the paper).
//!
//! The interpreter is deterministic given a *choice script*: whenever a
//! rule is non-deterministic — `freeze` of poison, a use of `undef`,
//! branch-on-poison under the legacy-unswitch semantics, the return
//! value of an external call — the interpreter consumes the next entry
//! of the script. [`enumerate_outcomes`] drives the interpreter over all
//! scripts and collects the [`OutcomeSet`]; [`run_concrete`] resolves
//! every choice to 0 for a single deterministic run.
//!
//! Two implementations share these entry points:
//!
//! * [`crate::plan`] — the default: the function is compiled once into
//!   a slot-indexed [`ModulePlan`] and executed on a reusable
//!   [`Machine`], with enumeration resuming sibling branches from
//!   snapshots instead of restarting. The convenience functions in this
//!   module compile per call; batch drivers ([`crate::cache`],
//!   `frost-refine`) compile once and reuse the plan.
//! * [`mod@reference`] — the original tree-walk, retained as the executable
//!   specification for differential testing.
//!
//! Both produce byte-identical [`OutcomeSet`]s, step counts, and limit
//! errors; `tests/exec_plan.rs` and the ci.sh smoke gate enforce this.

pub mod reference;

use frost_ir::Module;

use crate::mem::Memory;
use crate::outcome::{Outcome, OutcomeSet};
use crate::plan::{Machine, ModulePlan};
use crate::sem::Semantics;
use crate::val::{Bit, Val};

/// Resource limits for execution and enumeration.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Limits {
    /// Maximum instructions executed in a single run.
    pub max_steps: u64,
    /// Maximum number of scripts explored by [`enumerate_outcomes`].
    pub max_states: u64,
    /// Maximum number of options at a single choice point during
    /// enumeration (a `freeze` of an `i8` needs 256).
    pub max_fanout: u64,
    /// Maximum call depth for calls to defined functions.
    pub max_call_depth: u32,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_steps: 20_000,
            max_states: 200_000,
            max_fanout: 256,
            max_call_depth: 16,
        }
    }
}

impl Limits {
    /// Generous limits for long-running concrete executions (workload
    /// simulation).
    pub fn generous() -> Limits {
        Limits {
            max_steps: 200_000_000,
            max_states: 1,
            max_fanout: 1,
            max_call_depth: 64,
        }
    }
}

/// A non-UB failure of execution or enumeration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExecError {
    /// The per-run step limit was exceeded (possible divergence).
    Fuel,
    /// Enumeration exceeded the state limit.
    StateExplosion,
    /// A choice point had more options than `max_fanout`.
    FanoutTooLarge(u64),
    /// The input program used a feature the executor cannot handle
    /// (e.g. enumerating every pointer value).
    Unsupported(String),
    /// The named function does not exist or arguments mismatch.
    BadFunction(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Fuel => write!(f, "step limit exceeded"),
            ExecError::StateExplosion => write!(f, "enumeration state limit exceeded"),
            ExecError::FanoutTooLarge(n) => {
                write!(f, "choice with {n} options exceeds fanout limit")
            }
            ExecError::Unsupported(s) => write!(f, "unsupported: {s}"),
            ExecError::BadFunction(s) => write!(f, "bad function: {s}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Result of a single scripted run.
#[derive(Clone, Debug)]
pub enum RunResult {
    /// The run completed with the given behavior.
    Done(Outcome),
    /// The script was exhausted at a choice point with this many
    /// options; the driver should fork.
    NeedChoice(u64),
}

/// Runs `name` on `args` with the given choice script.
///
/// Compiles a fresh [`ModulePlan`] per call; callers running the same
/// function repeatedly should compile once and use
/// [`ModulePlan::run_with_script`].
///
/// # Errors
///
/// Returns an [`ExecError`] on resource exhaustion or unsupported
/// programs; UB is a *successful* run with [`Outcome::Ub`].
pub fn run_with_script(
    module: &Module,
    name: &str,
    args: &[Val],
    mem: &Memory,
    sem: Semantics,
    limits: Limits,
    script: &[u64],
) -> Result<RunResult, ExecError> {
    let plan = ModulePlan::compile(module, sem);
    let Some(idx) = plan.function_index(name) else {
        return Err(ExecError::BadFunction(format!("no function @{name}")));
    };
    plan.run_with_script(idx, args, mem, limits, script, &mut Machine::new())
}

/// Enumerates *every* behavior of `name` on `args` by exploring all
/// choice scripts.
///
/// Compiles a fresh [`ModulePlan`] per call; batch callers should
/// compile once (or use [`crate::cache::OutcomeCache`]) and call
/// [`ModulePlan::enumerate`] with a reused [`Machine`].
///
/// # Errors
///
/// Returns an [`ExecError`] if the search exceeds [`Limits`] or the
/// program draws from an unenumerable domain (e.g. freezing a pointer).
pub fn enumerate_outcomes(
    module: &Module,
    name: &str,
    args: &[Val],
    mem: &Memory,
    sem: Semantics,
    limits: Limits,
) -> Result<OutcomeSet, ExecError> {
    let plan = ModulePlan::compile(module, sem);
    let Some(idx) = plan.function_index(name) else {
        return Err(ExecError::BadFunction(format!("no function @{name}")));
    };
    plan.enumerate(idx, args, mem, limits, &mut Machine::new())
}

/// Runs `name` once, resolving every non-deterministic choice to 0
/// (freeze-of-poison picks 0, a branch-on-poison under legacy-unswitch
/// takes the else edge, external calls return 0).
///
/// Returns the behavior and the number of steps executed.
///
/// # Errors
///
/// Returns an [`ExecError`] on resource exhaustion or unsupported
/// programs.
pub fn run_concrete(
    module: &Module,
    name: &str,
    args: &[Val],
    mem: &Memory,
    sem: Semantics,
    limits: Limits,
) -> Result<(Outcome, u64), ExecError> {
    let plan = ModulePlan::compile(module, sem);
    let Some(idx) = plan.function_index(name) else {
        return Err(ExecError::BadFunction(format!("no function @{name}")));
    };
    plan.run_concrete(idx, args, mem, limits, &mut Machine::new())
}

/// The memory-fill bit matching a semantics' treatment of uninitialized
/// memory (§5.3): poison under the proposal, undef under legacy.
pub fn uninit_fill(sem: &Semantics) -> Bit {
    if sem.uninit_is_poison {
        Bit::Poison
    } else {
        Bit::Undef
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frost_ir::parse_module;
    use frost_ir::Ty;

    fn empty_mem() -> Memory {
        Memory::zeroed(0)
    }

    fn outcomes_of(src: &str, fname: &str, args: Vec<Val>, sem: Semantics) -> OutcomeSet {
        let m = parse_module(src).expect("parses");
        enumerate_outcomes(&m, fname, &args, &empty_mem(), sem, Limits::default())
            .expect("enumerates")
    }

    fn ret_vals(set: &OutcomeSet) -> Vec<Option<Val>> {
        set.iter()
            .filter_map(|o| match o {
                Outcome::Ret { val, .. } => Some(val.clone()),
                Outcome::Ub => None,
            })
            .collect()
    }

    #[test]
    fn straight_line_arithmetic() {
        let set = outcomes_of(
            "define i8 @f(i8 %x) {\nentry:\n  %a = add i8 %x, 1\n  ret i8 %a\n}",
            "f",
            vec![Val::int(8, 41)],
            Semantics::proposed(),
        );
        assert_eq!(set.len(), 1);
        assert_eq!(ret_vals(&set), vec![Some(Val::int(8, 42))]);
    }

    #[test]
    fn nsw_overflow_returns_poison() {
        let set = outcomes_of(
            "define i8 @f(i8 %x) {\nentry:\n  %a = add nsw i8 %x, 1\n  ret i8 %a\n}",
            "f",
            vec![Val::int(8, 127)],
            Semantics::proposed(),
        );
        assert_eq!(ret_vals(&set), vec![Some(Val::Poison)]);
    }

    #[test]
    fn division_by_zero_is_ub() {
        let set = outcomes_of(
            "define i8 @f(i8 %x) {\nentry:\n  %a = udiv i8 1, %x\n  ret i8 %a\n}",
            "f",
            vec![Val::int(8, 0)],
            Semantics::proposed(),
        );
        assert!(set.may_ub());
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn freeze_of_poison_enumerates_all_values() {
        let set = outcomes_of(
            "define i2 @f() {\nentry:\n  %a = freeze i2 poison\n  ret i2 %a\n}",
            "f",
            vec![],
            Semantics::proposed(),
        );
        assert_eq!(set.len(), 4, "freeze i2 poison has 4 possible results");
        assert!(!set.may_ub());
    }

    #[test]
    fn freeze_of_defined_is_identity() {
        let set = outcomes_of(
            "define i8 @f(i8 %x) {\nentry:\n  %a = freeze i8 %x\n  ret i8 %a\n}",
            "f",
            vec![Val::int(8, 7)],
            Semantics::proposed(),
        );
        assert_eq!(ret_vals(&set), vec![Some(Val::int(8, 7))]);
    }

    #[test]
    fn all_uses_of_one_freeze_agree() {
        // xor(freeze(p), freeze-same-register) is always 0.
        let set = outcomes_of(
            "define i2 @f() {\nentry:\n  %a = freeze i2 poison\n  %b = xor i2 %a, %a\n  ret i2 %b\n}",
            "f",
            vec![],
            Semantics::proposed(),
        );
        assert_eq!(ret_vals(&set), vec![Some(Val::int(2, 0))]);
    }

    #[test]
    fn undef_uses_are_independent_in_legacy() {
        // %b = xor undef, undef can be anything: each use picks its own
        // value (§3.1).
        let set = outcomes_of(
            "define i2 @f() {\nentry:\n  %b = xor i2 undef, undef\n  ret i2 %b\n}",
            "f",
            vec![],
            Semantics::legacy_gvn(),
        );
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn mul_by_two_of_undef_is_even_only() {
        // §3.1: mul %x, 2 with x undef yields only even values...
        let mul = outcomes_of(
            "define i8 @f() {\nentry:\n  %y = mul i8 undef, 2\n  ret i8 %y\n}",
            "f",
            vec![],
            Semantics::legacy_gvn(),
        );
        let vals: Vec<u128> = ret_vals(&mul)
            .into_iter()
            .map(|v| v.unwrap().as_int().unwrap())
            .collect();
        assert!(vals.iter().all(|v| v % 2 == 0));
        assert_eq!(vals.len(), 128);
        // ...but add %x, %x yields every value (each use independent).
        let add = outcomes_of(
            "define i8 @f() {\nentry:\n  %x = add i8 undef, 0\n  ret i8 %x\n}",
            "f",
            vec![],
            Semantics::legacy_gvn(),
        );
        assert_eq!(add.len(), 256);
    }

    #[test]
    fn branch_on_poison_is_ub_under_proposed() {
        let src = "define i8 @f() {\nentry:\n  br i1 poison, label %a, label %b\na:\n  ret i8 1\nb:\n  ret i8 2\n}";
        let set = outcomes_of(src, "f", vec![], Semantics::proposed());
        assert!(set.may_ub());
        assert_eq!(set.len(), 1);

        // Under legacy-unswitch it's a nondeterministic choice.
        let set = outcomes_of(src, "f", vec![], Semantics::legacy_unswitch());
        assert!(!set.may_ub());
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn select_on_poison_condition_is_poison_under_proposed() {
        let src = "define i8 @f(i8 %x, i8 %y) {\nentry:\n  %r = select i1 poison, i8 %x, i8 %y\n  ret i8 %r\n}";
        let set = outcomes_of(
            src,
            "f",
            vec![Val::int(8, 1), Val::int(8, 2)],
            Semantics::proposed(),
        );
        assert_eq!(ret_vals(&set), vec![Some(Val::Poison)]);
    }

    #[test]
    fn select_ignores_unselected_poison_under_proposed() {
        // Figure 5: only the chosen arm matters.
        let src =
            "define i8 @f() {\nentry:\n  %r = select i1 true, i8 3, i8 poison\n  ret i8 %r\n}";
        let set = outcomes_of(src, "f", vec![], Semantics::proposed());
        assert_eq!(ret_vals(&set), vec![Some(Val::int(8, 3))]);
        // The LangRef/legacy-gvn reading poisons the result.
        let set = outcomes_of(src, "f", vec![], Semantics::legacy_gvn());
        assert_eq!(ret_vals(&set), vec![Some(Val::Poison)]);
    }

    #[test]
    fn phi_and_loop_execution() {
        // Sum 0..n on i8.
        let src = r#"
define i8 @sum(i8 %n) {
entry:
  br label %head
head:
  %i = phi i8 [ 0, %entry ], [ %i1, %body ]
  %s = phi i8 [ 0, %entry ], [ %s1, %body ]
  %c = icmp ult i8 %i, %n
  br i1 %c, label %body, label %exit
body:
  %s1 = add i8 %s, %i
  %i1 = add i8 %i, 1
  br label %head
exit:
  ret i8 %s
}
"#;
        let set = outcomes_of(src, "sum", vec![Val::int(8, 5)], Semantics::proposed());
        assert_eq!(ret_vals(&set), vec![Some(Val::int(8, 10))]);
    }

    #[test]
    fn memory_store_then_load() {
        let m = parse_module(
            r#"
define i8 @f(i8* %p) {
entry:
  store i8 7, i8* %p
  %v = load i8, i8* %p
  ret i8 %v
}
"#,
        )
        .unwrap();
        let mem = Memory::uninit(4, Bit::Poison);
        let set = enumerate_outcomes(
            &m,
            "f",
            &[Val::ptr(Memory::BASE)],
            &mem,
            Semantics::proposed(),
            Limits::default(),
        )
        .unwrap();
        assert_eq!(ret_vals(&set), vec![Some(Val::int(8, 7))]);
    }

    #[test]
    fn uninitialized_load_is_poison_under_proposed() {
        let m =
            parse_module("define i8 @f(i8* %p) {\nentry:\n  %v = load i8, i8* %p\n  ret i8 %v\n}")
                .unwrap();
        let sem = Semantics::proposed();
        let mem = Memory::uninit(1, uninit_fill(&sem));
        let set = enumerate_outcomes(
            &m,
            "f",
            &[Val::ptr(Memory::BASE)],
            &mem,
            sem,
            Limits::default(),
        )
        .unwrap();
        assert_eq!(ret_vals(&set), vec![Some(Val::Poison)]);

        // Legacy: undef.
        let sem = Semantics::legacy_gvn();
        let mem = Memory::uninit(1, uninit_fill(&sem));
        let set = enumerate_outcomes(
            &m,
            "f",
            &[Val::ptr(Memory::BASE)],
            &mem,
            sem,
            Limits::default(),
        )
        .unwrap();
        assert_eq!(ret_vals(&set), vec![Some(Val::Undef(Ty::i8()))]);
    }

    #[test]
    fn out_of_bounds_access_is_ub() {
        let m =
            parse_module("define void @f(i8* %p) {\nentry:\n  store i8 1, i8* %p\n  ret void\n}")
                .unwrap();
        let mem = Memory::zeroed(4);
        let set = enumerate_outcomes(
            &m,
            "f",
            &[Val::ptr(Memory::BASE + 4)],
            &mem,
            Semantics::proposed(),
            Limits::default(),
        )
        .unwrap();
        assert!(set.may_ub());
        // Null too.
        let set = enumerate_outcomes(
            &m,
            "f",
            &[Val::ptr(0)],
            &mem,
            Semantics::proposed(),
            Limits::default(),
        )
        .unwrap();
        assert!(set.may_ub());
    }

    #[test]
    fn store_of_poison_pointer_is_ub() {
        let m = parse_module("define void @f() {\nentry:\n  store i8 1, i8* poison\n  ret void\n}")
            .unwrap();
        let set = enumerate_outcomes(
            &m,
            "f",
            &[],
            &Memory::zeroed(4),
            Semantics::proposed(),
            Limits::default(),
        )
        .unwrap();
        assert!(set.may_ub());
    }

    #[test]
    fn external_calls_are_traced_and_poison_args_are_ub() {
        let src = r#"
declare void @use(i8)
define void @f(i8 %x) {
entry:
  call void @use(i8 %x)
  ret void
}
"#;
        let m = parse_module(src).unwrap();
        let set = enumerate_outcomes(
            &m,
            "f",
            &[Val::int(8, 3)],
            &empty_mem(),
            Semantics::proposed(),
            Limits::default(),
        )
        .unwrap();
        let Outcome::Ret { trace, .. } = set.iter().next().unwrap() else {
            panic!()
        };
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].callee, "use");
        assert_eq!(trace[0].args, vec![Val::int(8, 3)]);

        let set = enumerate_outcomes(
            &m,
            "f",
            &[Val::Poison],
            &empty_mem(),
            Semantics::proposed(),
            Limits::default(),
        )
        .unwrap();
        assert!(set.may_ub(), "poison reaching a side-effecting call is UB");
    }

    #[test]
    fn defined_function_calls_execute() {
        let src = r#"
define i8 @double(i8 %x) {
entry:
  %r = add i8 %x, %x
  ret i8 %r
}
define i8 @f(i8 %x) {
entry:
  %r = call i8 @double(i8 %x)
  %r2 = call i8 @double(i8 %r)
  ret i8 %r2
}
"#;
        let set = outcomes_of(src, "f", vec![Val::int(8, 3)], Semantics::proposed());
        assert_eq!(ret_vals(&set), vec![Some(Val::int(8, 12))]);
    }

    #[test]
    fn infinite_recursion_hits_depth_limit() {
        let src = "define void @f() {\nentry:\n  call void @f()\n  ret void\n}";
        let m = parse_module(src).unwrap();
        let err = enumerate_outcomes(
            &m,
            "f",
            &[],
            &empty_mem(),
            Semantics::proposed(),
            Limits::default(),
        )
        .unwrap_err();
        assert_eq!(err, ExecError::Fuel);
    }

    #[test]
    fn infinite_loop_hits_fuel() {
        let src = "define void @f() {\nentry:\n  br label %entry2\nentry2:\n  br label %entry2\n}";
        let m = parse_module(src).unwrap();
        let err = enumerate_outcomes(
            &m,
            "f",
            &[],
            &empty_mem(),
            Semantics::proposed(),
            Limits::default(),
        )
        .unwrap_err();
        assert_eq!(err, ExecError::Fuel);
    }

    #[test]
    fn gep_inbounds_overflow_is_poison() {
        let src = r#"
define i8* @f(i8* %p, i32 %i) {
entry:
  %q = getelementptr inbounds i8, i8* %p, i32 %i
  ret i8* %q
}
"#;
        let m = parse_module(src).unwrap();
        // Address near the top of the space; a positive index overflows.
        let set = enumerate_outcomes(
            &m,
            "f",
            &[Val::ptr(u32::MAX - 1), Val::int(32, 100)],
            &empty_mem(),
            Semantics::proposed(),
            Limits::default(),
        )
        .unwrap();
        assert_eq!(ret_vals(&set), vec![Some(Val::Poison)]);
        // In-range index is fine.
        let set = enumerate_outcomes(
            &m,
            "f",
            &[Val::ptr(0x1000), Val::int(32, 4)],
            &empty_mem(),
            Semantics::proposed(),
            Limits::default(),
        )
        .unwrap();
        assert_eq!(ret_vals(&set), vec![Some(Val::ptr(0x1004))]);
    }

    #[test]
    fn gep_scales_by_element_size() {
        let src = r#"
define i32* @f(i32* %p, i32 %i) {
entry:
  %q = getelementptr i32, i32* %p, i32 %i
  ret i32* %q
}
"#;
        let m = parse_module(src).unwrap();
        let set = enumerate_outcomes(
            &m,
            "f",
            &[Val::ptr(0x1000), Val::int(32, 3)],
            &empty_mem(),
            Semantics::proposed(),
            Limits::default(),
        )
        .unwrap();
        assert_eq!(ret_vals(&set), vec![Some(Val::ptr(0x100c))]);
        // Negative index.
        let set = enumerate_outcomes(
            &m,
            "f",
            &[Val::ptr(0x1000), Val::int(32, 0xffff_ffff)],
            &empty_mem(),
            Semantics::proposed(),
            Limits::default(),
        )
        .unwrap();
        assert_eq!(ret_vals(&set), vec![Some(Val::ptr(0x0ffc))]);
    }

    #[test]
    fn concrete_run_resolves_choices_to_zero() {
        let m = parse_module("define i8 @f() {\nentry:\n  %a = freeze i8 poison\n  ret i8 %a\n}")
            .unwrap();
        let (o, steps) = run_concrete(
            &m,
            "f",
            &[],
            &empty_mem(),
            Semantics::proposed(),
            Limits::default(),
        )
        .unwrap();
        assert_eq!(o.ret_val(), Some(&Val::int(8, 0)));
        assert!(steps >= 1);
    }

    #[test]
    fn vector_ops_are_element_wise() {
        let src = r#"
define <2 x i8> @f(<2 x i8> %v) {
entry:
  %r = add <2 x i8> %v, <i8 1, i8 poison>
  ret <2 x i8> %r
}
"#;
        let set = outcomes_of(
            src,
            "f",
            vec![Val::Vec(vec![Val::int(8, 1), Val::int(8, 2)])],
            Semantics::proposed(),
        );
        assert_eq!(
            ret_vals(&set),
            vec![Some(Val::Vec(vec![Val::int(8, 2), Val::Poison]))]
        );
    }

    #[test]
    fn bitcast_respects_bit_level_semantics() {
        // <2 x i8> with one poison element, bitcast to i16 -> whole
        // thing poison; bitcast to <2 x i8> of a defined i16 round
        // trips.
        let src = r#"
define i16 @f(<2 x i8> %v) {
entry:
  %r = bitcast <2 x i8> %v to i16
  ret i16 %r
}
"#;
        let set = outcomes_of(
            src,
            "f",
            vec![Val::Vec(vec![Val::Poison, Val::int(8, 2)])],
            Semantics::proposed(),
        );
        assert_eq!(ret_vals(&set), vec![Some(Val::Poison)]);

        let set = outcomes_of(
            src,
            "f",
            vec![Val::Vec(vec![Val::int(8, 0x34), Val::int(8, 0x12)])],
            Semantics::proposed(),
        );
        assert_eq!(ret_vals(&set), vec![Some(Val::int(16, 0x1234))]);
    }

    #[test]
    fn sext_of_poison_is_poison() {
        let set = outcomes_of(
            "define i64 @f() {\nentry:\n  %r = sext i32 poison to i64\n  ret i64 %r\n}",
            "f",
            vec![],
            Semantics::proposed(),
        );
        assert_eq!(ret_vals(&set), vec![Some(Val::Poison)]);
    }

    #[test]
    fn sext_of_undef_has_correlated_bits() {
        // §2.4: sext(undef) has all high bits equal -> max value is
        // bounded. On i2 -> i4: results are sext of {0,1,2,3} =
        // {0,1,0b1110,0b1111}.
        let set = outcomes_of(
            "define i4 @f() {\nentry:\n  %r = sext i2 undef to i4\n  ret i4 %r\n}",
            "f",
            vec![],
            Semantics::legacy_gvn(),
        );
        let mut vals: Vec<u128> = ret_vals(&set)
            .into_iter()
            .map(|v| v.unwrap().as_int().unwrap())
            .collect();
        vals.sort_unstable();
        assert_eq!(vals, vec![0, 1, 0b1110, 0b1111]);
    }
}
