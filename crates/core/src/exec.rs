//! The executable operational semantics (Figure 5 of the paper).
//!
//! The interpreter is deterministic given a *choice script*: whenever a
//! rule is non-deterministic — `freeze` of poison, a use of `undef`,
//! branch-on-poison under the legacy-unswitch semantics, the return
//! value of an external call — the interpreter consumes the next entry
//! of the script. [`enumerate_outcomes`] drives the interpreter over all
//! scripts (re-executing from the start, model-checker style) and
//! collects the [`OutcomeSet`]; [`run_concrete`] resolves every choice
//! to 0 for a single deterministic run.

use frost_ir::{
    BinOp, BlockId, Cond, Flags, Function, Inst, InstId, Module, Terminator, Ty, Value,
};

use crate::mem::Memory;
use crate::ops::{eval_binop, eval_cast, eval_icmp, ScalarResult};
use crate::outcome::{Event, Outcome, OutcomeSet};
use crate::sem::{PoisonAction, Semantics};
use crate::val::{lower, poison_of, raise, Bit, Val};

/// Resource limits for execution and enumeration.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Limits {
    /// Maximum instructions executed in a single run.
    pub max_steps: u64,
    /// Maximum number of scripts explored by [`enumerate_outcomes`].
    pub max_states: u64,
    /// Maximum number of options at a single choice point during
    /// enumeration (a `freeze` of an `i8` needs 256).
    pub max_fanout: u64,
    /// Maximum call depth for calls to defined functions.
    pub max_call_depth: u32,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_steps: 20_000,
            max_states: 200_000,
            max_fanout: 256,
            max_call_depth: 16,
        }
    }
}

impl Limits {
    /// Generous limits for long-running concrete executions (workload
    /// simulation).
    pub fn generous() -> Limits {
        Limits {
            max_steps: 200_000_000,
            max_states: 1,
            max_fanout: 1,
            max_call_depth: 64,
        }
    }
}

/// A non-UB failure of execution or enumeration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ExecError {
    /// The per-run step limit was exceeded (possible divergence).
    Fuel,
    /// Enumeration exceeded the state limit.
    StateExplosion,
    /// A choice point had more options than `max_fanout`.
    FanoutTooLarge(u64),
    /// The input program used a feature the executor cannot handle
    /// (e.g. enumerating every pointer value).
    Unsupported(String),
    /// The named function does not exist or arguments mismatch.
    BadFunction(String),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Fuel => write!(f, "step limit exceeded"),
            ExecError::StateExplosion => write!(f, "enumeration state limit exceeded"),
            ExecError::FanoutTooLarge(n) => {
                write!(f, "choice with {n} options exceeds fanout limit")
            }
            ExecError::Unsupported(s) => write!(f, "unsupported: {s}"),
            ExecError::BadFunction(s) => write!(f, "bad function: {s}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Result of a single scripted run.
#[derive(Clone, Debug)]
pub enum RunResult {
    /// The run completed with the given behavior.
    Done(Outcome),
    /// The script was exhausted at a choice point with this many
    /// options; the driver should fork.
    NeedChoice(u64),
}

/// Reasons to abort the current run.
enum Stop {
    NeedChoice(u64),
    Err(ExecError),
}

/// Non-local exits of instruction evaluation.
enum Exc {
    Ub,
    Stop(Stop),
}

impl From<Stop> for Exc {
    fn from(s: Stop) -> Exc {
        Exc::Stop(s)
    }
}

enum FlowResult {
    Ret(Option<Val>),
    Ub,
}

/// How choices are resolved.
#[derive(Clone, Copy, Debug)]
enum Policy<'s> {
    Script(&'s [u64]),
    Concrete,
}

struct Interp<'a, 's> {
    module: &'a Module,
    sem: Semantics,
    limits: Limits,
    policy: Policy<'s>,
    next_choice: usize,
    steps: u64,
    mem: Memory,
    trace: Vec<Event>,
}

impl<'a, 's> Interp<'a, 's> {
    fn choose(&mut self, n: u64) -> Result<u64, Stop> {
        if n == 0 {
            return Err(Stop::Err(ExecError::Unsupported(
                "empty choice domain".into(),
            )));
        }
        if n == 1 {
            return Ok(0);
        }
        match self.policy {
            Policy::Concrete => Ok(0),
            Policy::Script(script) => {
                if n > self.limits.max_fanout {
                    return Err(Stop::Err(ExecError::FanoutTooLarge(n)));
                }
                match script.get(self.next_choice) {
                    Some(&v) => {
                        self.next_choice += 1;
                        debug_assert!(v < n, "script entry within domain");
                        Ok(v)
                    }
                    None => Err(Stop::NeedChoice(n)),
                }
            }
        }
    }

    /// Chooses an arbitrary defined value of a scalar type (freeze of
    /// poison, use of undef).
    fn choose_scalar(&mut self, ty: &Ty) -> Result<Val, Stop> {
        match ty {
            Ty::Int(bits) => {
                let n = if *bits >= 63 { u64::MAX } else { 1u64 << *bits };
                let idx = self.choose(n)?;
                Ok(Val::int(*bits, u128::from(idx)))
            }
            Ty::Ptr(_) => {
                // The pointer domain is 2^32 addresses; enumerating it is
                // never feasible, but a concrete run can pick null.
                let idx = self.choose(1u64 << 32)?;
                Ok(Val::Ptr(idx as u32))
            }
            other => Err(Stop::Err(ExecError::Unsupported(format!(
                "cannot choose a value of type {other}"
            )))),
        }
    }

    /// Resolves `undef` at a *use*: each use of an undef register may
    /// yield a different value (§3.1). Element-wise for vectors. Poison
    /// and defined values pass through.
    fn resolve_use(&mut self, v: Val) -> Result<Val, Stop> {
        match v {
            Val::Undef(ty) => self.choose_scalar(&ty),
            Val::Vec(elems) => {
                let mut out = Vec::with_capacity(elems.len());
                for e in elems {
                    out.push(self.resolve_use(e)?);
                }
                Ok(Val::Vec(out))
            }
            other => Ok(other),
        }
    }

    fn exec_function(
        &mut self,
        func: &'a Function,
        args: &[Val],
        depth: u32,
    ) -> Result<FlowResult, Stop> {
        if args.len() != func.params.len() {
            return Err(Stop::Err(ExecError::BadFunction(format!(
                "@{} expects {} arguments, got {}",
                func.name,
                func.params.len(),
                args.len()
            ))));
        }
        let mut regs: Vec<Option<Val>> = vec![None; func.insts.len()];
        let mut cur = BlockId::ENTRY;
        let mut prev: Option<BlockId> = None;

        'blocks: loop {
            // Charge a step per block visit so empty infinite loops
            // (e.g. `bb: br label %bb`) still exhaust fuel.
            self.steps += 1;
            if self.steps > self.limits.max_steps {
                return Err(Stop::Err(ExecError::Fuel));
            }
            let block = func.block(cur);

            // Evaluate all phis simultaneously against the incoming edge.
            let mut phi_updates: Vec<(InstId, Val)> = Vec::new();
            for &id in &block.insts {
                let Inst::Phi { incoming, .. } = func.inst(id) else {
                    break;
                };
                let from = prev.expect("phi in entry block rejected by verifier");
                let (v, _) = incoming
                    .iter()
                    .find(|(_, bb)| *bb == from)
                    .expect("verifier guarantees an incoming value per predecessor");
                phi_updates.push((id, self.operand(func, &regs, args, v)));
            }
            for (id, v) in phi_updates {
                self.steps += 1;
                regs[id.index()] = Some(v);
            }

            for &id in &block.insts {
                if matches!(func.inst(id), Inst::Phi { .. }) {
                    continue;
                }
                self.steps += 1;
                if self.steps > self.limits.max_steps {
                    return Err(Stop::Err(ExecError::Fuel));
                }
                match self.eval_inst(func, &regs, args, id, depth) {
                    Ok(v) => regs[id.index()] = Some(v),
                    Err(Exc::Ub) => return Ok(FlowResult::Ub),
                    Err(Exc::Stop(s)) => return Err(s),
                }
            }

            match &block.term {
                Terminator::Ret(v) => {
                    let val = v.as_ref().map(|v| self.operand(func, &regs, args, v));
                    return Ok(FlowResult::Ret(val));
                }
                Terminator::Jmp(dest) => {
                    prev = Some(cur);
                    cur = *dest;
                }
                Terminator::Br {
                    cond,
                    then_bb,
                    else_bb,
                } => {
                    let c = self.operand(func, &regs, args, cond);
                    let c = self.resolve_use(c)?;
                    let taken = match c {
                        Val::Int { v, .. } => v == 1,
                        Val::Poison => match self.sem.branch_on_poison {
                            PoisonAction::Ub => return Ok(FlowResult::Ub),
                            PoisonAction::Nondet | PoisonAction::Propagate => self.choose(2)? == 1,
                        },
                        other => {
                            return Err(Stop::Err(ExecError::Unsupported(format!(
                                "branch on {other}"
                            ))))
                        }
                    };
                    prev = Some(cur);
                    cur = if taken { *then_bb } else { *else_bb };
                }
                Terminator::Unreachable => return Ok(FlowResult::Ub),
            }
            continue 'blocks;
        }
    }

    fn operand(&self, _func: &Function, regs: &[Option<Val>], args: &[Val], v: &Value) -> Val {
        match v {
            Value::Inst(id) => regs[id.index()]
                .clone()
                .expect("SSA dominance guarantees the register is written"),
            Value::Arg(i) => args[*i as usize].clone(),
            Value::Const(c) => Val::from_const(c),
        }
    }

    fn eval_inst(
        &mut self,
        func: &'a Function,
        regs: &[Option<Val>],
        args: &[Val],
        id: InstId,
        depth: u32,
    ) -> Result<Val, Exc> {
        let inst = func.inst(id);
        match inst {
            Inst::Bin {
                op,
                flags,
                ty,
                lhs,
                rhs,
            } => {
                let a = self.resolve_use(self.operand(func, regs, args, lhs))?;
                let b = self.resolve_use(self.operand(func, regs, args, rhs))?;
                self.eval_bin_val(*op, *flags, ty, a, b)
            }
            Inst::Icmp { cond, ty, lhs, rhs } => {
                let a = self.resolve_use(self.operand(func, regs, args, lhs))?;
                let b = self.resolve_use(self.operand(func, regs, args, rhs))?;
                self.eval_icmp_val(*cond, ty, a, b)
            }
            Inst::Select {
                cond,
                ty,
                tval,
                fval,
            } => {
                let c = self.resolve_use(self.operand(func, regs, args, cond))?;
                let tv = self.operand(func, regs, args, tval);
                let fv = self.operand(func, regs, args, fval);
                let taken = match c {
                    Val::Int { v, .. } => v == 1,
                    Val::Poison => match self.sem.select.poison_cond {
                        PoisonAction::Propagate => return Ok(poison_of(ty)),
                        PoisonAction::Ub => return Err(Exc::Ub),
                        PoisonAction::Nondet => self.choose(2)? == 1,
                    },
                    other => {
                        return Err(Exc::Stop(Stop::Err(ExecError::Unsupported(format!(
                            "select on {other}"
                        )))))
                    }
                };
                if self.sem.select.propagate_unselected
                    && (tv.contains_poison() || fv.contains_poison())
                {
                    return Ok(poison_of(ty));
                }
                Ok(if taken { tv } else { fv })
            }
            Inst::Phi { .. } => unreachable!("phis are evaluated at block entry"),
            Inst::Freeze { ty, val } => {
                let v = self.operand(func, regs, args, val);
                self.freeze_val(ty, v)
            }
            Inst::Cast {
                kind,
                from_ty,
                to_ty,
                val,
            } => {
                let v = self.resolve_use(self.operand(func, regs, args, val))?;
                let from_bits = from_ty.scalar_ty().int_bits().expect("verified int cast");
                let to_bits = to_ty.scalar_ty().int_bits().expect("verified int cast");
                Ok(map_elements(&v, to_ty, |e| match e.as_int() {
                    Some(x) => Val::int(to_bits, eval_cast(*kind, from_bits, to_bits, x)),
                    None => Val::Poison,
                }))
            }
            Inst::Bitcast {
                from_ty,
                to_ty,
                val,
            } => {
                let v = self.operand(func, regs, args, val);
                Ok(raise(to_ty, &lower(from_ty, &v)))
            }
            Inst::Gep {
                elem_ty,
                base,
                idx,
                inbounds,
                idx_ty,
                ..
            } => {
                let b = self.resolve_use(self.operand(func, regs, args, base))?;
                let i = self.resolve_use(self.operand(func, regs, args, idx))?;
                let (Val::Ptr(addr), Val::Int { .. }) = (&b, &i) else {
                    // Poison base or index -> poison pointer.
                    return Ok(Val::Poison);
                };
                let idx_bits = idx_ty.int_bits().expect("verified gep index");
                let offset = i.as_signed().expect("int");
                let _ = idx_bits;
                let stride = i128::from(elem_ty.byte_size());
                let full = i128::from(*addr) + offset * stride;
                if *inbounds && (full < 0 || full > i128::from(u32::MAX)) {
                    // Pointer arithmetic overflow is deferred UB (§2.4).
                    return Ok(Val::Poison);
                }
                Ok(Val::Ptr(full.rem_euclid(1i128 << 32) as u32))
            }
            Inst::Load { ty, ptr } => {
                let p = self.resolve_use(self.operand(func, regs, args, ptr))?;
                let Val::Ptr(addr) = p else {
                    return Err(Exc::Ub);
                };
                match self.mem.load(addr, ty.bitwidth()) {
                    Some(bits) => Ok(raise(ty, &bits)),
                    None => Err(Exc::Ub),
                }
            }
            Inst::Store { ty, val, ptr } => {
                let v = self.operand(func, regs, args, val);
                let p = self.resolve_use(self.operand(func, regs, args, ptr))?;
                let Val::Ptr(addr) = p else {
                    return Err(Exc::Ub);
                };
                let bits = lower(ty, &v);
                if !self.mem.store(addr, &bits) {
                    return Err(Exc::Ub);
                }
                Ok(Val::int(1, 0)) // dummy; stores define no register
            }
            Inst::ExtractElement { vec, idx, len, .. } => {
                let v = self.operand(func, regs, args, vec);
                let i = idx.as_int_const().expect("verified constant lane") as usize;
                Ok(vector_elems(&v, *len as usize)[i].clone())
            }
            Inst::InsertElement {
                vec, elt, idx, len, ..
            } => {
                let v = self.operand(func, regs, args, vec);
                let e = self.operand(func, regs, args, elt);
                let i = idx.as_int_const().expect("verified constant lane") as usize;
                let mut elems = vector_elems(&v, *len as usize);
                elems[i] = e;
                Ok(Val::Vec(elems))
            }
            Inst::Call {
                ret_ty,
                callee,
                args: call_args,
                ..
            } => {
                let mut vals = Vec::with_capacity(call_args.len());
                for a in call_args {
                    vals.push(self.operand(func, regs, args, a));
                }
                self.eval_call(ret_ty, callee, vals, depth)
            }
        }
    }

    fn eval_call(
        &mut self,
        ret_ty: &Ty,
        callee: &str,
        vals: Vec<Val>,
        depth: u32,
    ) -> Result<Val, Exc> {
        if let Some(f) = self.module.function(callee) {
            if depth >= self.limits.max_call_depth {
                return Err(Exc::Stop(Stop::Err(ExecError::Fuel)));
            }
            return match self.exec_function(f, &vals, depth + 1)? {
                FlowResult::Ub => Err(Exc::Ub),
                FlowResult::Ret(Some(v)) => Ok(v),
                FlowResult::Ret(None) => Ok(Val::int(1, 0)),
            };
        }
        let Some(decl) = self.module.declaration(callee) else {
            return Err(Exc::Stop(Stop::Err(ExecError::BadFunction(format!(
                "unknown callee @{callee}"
            )))));
        };
        if decl.attrs.readnone {
            // A pure external function: poison in, poison out; otherwise
            // an arbitrary (environment-chosen) result. Not observable.
            if vals.iter().any(Val::contains_poison) {
                return Ok(poison_of(ret_ty));
            }
            if ret_ty.is_void() {
                return Ok(Val::int(1, 0));
            }
            return Ok(self.choose_scalar(ret_ty.scalar_ty())?);
        }
        // Side-effecting external call: poison reaching it is UB (§1:
        // poison "triggers immediate UB if it reaches a side-effecting
        // operation").
        if self.sem.poison_call_arg_is_ub && vals.iter().any(Val::contains_poison) {
            return Err(Exc::Ub);
        }
        let ret = if ret_ty.is_void() {
            None
        } else {
            Some(self.choose_scalar(ret_ty.scalar_ty())?)
        };
        self.trace.push(Event {
            callee: callee.to_string(),
            args: vals,
            ret: ret.clone(),
        });
        Ok(ret.unwrap_or(Val::int(1, 0)))
    }

    fn eval_bin_val(
        &mut self,
        op: BinOp,
        flags: Flags,
        ty: &Ty,
        a: Val,
        b: Val,
    ) -> Result<Val, Exc> {
        let bits = ty.scalar_ty().int_bits().expect("verified integer binop");
        let len = ty.vector_len();
        match len {
            None => self.bin_scalar(op, flags, bits, &a, &b),
            Some(n) => {
                let av = vector_elems(&a, n as usize);
                let bv = vector_elems(&b, n as usize);
                let mut out = Vec::with_capacity(n as usize);
                for (x, y) in av.iter().zip(&bv) {
                    out.push(self.bin_scalar(op, flags, bits, x, y)?);
                }
                Ok(Val::Vec(out))
            }
        }
    }

    fn bin_scalar(
        &mut self,
        op: BinOp,
        flags: Flags,
        bits: u32,
        a: &Val,
        b: &Val,
    ) -> Result<Val, Exc> {
        if op.may_have_immediate_ub() {
            // Division: a poison divisor, or zero, is immediate UB; a
            // poison dividend yields poison unless the divisor makes
            // the signed-overflow case reachable.
            let bv = match b {
                Val::Poison => return Err(Exc::Ub),
                Val::Int { v, .. } => *v,
                other => {
                    return Err(Exc::Stop(Stop::Err(ExecError::Unsupported(format!(
                        "divide by {other}"
                    )))))
                }
            };
            if bv == 0 {
                return Err(Exc::Ub);
            }
            if a.contains_poison() {
                let divisor_is_minus1 = Val::int(bits, bv).as_signed() == Some(-1);
                if matches!(op, BinOp::SDiv | BinOp::SRem) && divisor_is_minus1 {
                    // poison could be INT_MIN: the UB case is reachable.
                    return Err(Exc::Ub);
                }
                return Ok(Val::Poison);
            }
        } else if a.contains_poison() || b.contains_poison() {
            return Ok(Val::Poison);
        }
        let (Some(x), Some(y)) = (a.as_int(), b.as_int()) else {
            return Err(Exc::Stop(Stop::Err(ExecError::Unsupported(format!(
                "binop on {a} and {b}"
            )))));
        };
        match eval_binop(op, flags, bits, x, y) {
            ScalarResult::Val(v) => Ok(Val::int(bits, v)),
            ScalarResult::Poison => {
                // §2.4 strawman semantics: deferred binop UB yields
                // undef instead of poison.
                if self.sem.wrap_flags_produce_undef {
                    Ok(Val::Undef(Ty::Int(bits)))
                } else {
                    Ok(Val::Poison)
                }
            }
            ScalarResult::Ub => Err(Exc::Ub),
        }
    }

    fn eval_icmp_val(&mut self, cond: Cond, ty: &Ty, a: Val, b: Val) -> Result<Val, Exc> {
        let scalar = |x: &Val, y: &Val| -> Val {
            match (x, y) {
                (Val::Poison, _) | (_, Val::Poison) => Val::Poison,
                (Val::Int { bits, v: xa }, Val::Int { v: xb, .. }) => {
                    Val::bool(eval_icmp(cond, *bits, *xa, *xb))
                }
                (Val::Ptr(pa), Val::Ptr(pb)) => Val::bool(eval_icmp(
                    cond,
                    frost_ir::PTR_BITS,
                    u128::from(*pa),
                    u128::from(*pb),
                )),
                _ => Val::Poison,
            }
        };
        match ty.vector_len() {
            None => Ok(scalar(&a, &b)),
            Some(n) => {
                let av = vector_elems(&a, n as usize);
                let bv = vector_elems(&b, n as usize);
                Ok(Val::Vec(
                    av.iter().zip(&bv).map(|(x, y)| scalar(x, y)).collect(),
                ))
            }
        }
    }

    /// Figure 5's freeze rules: identity on defined values; an arbitrary
    /// defined value for poison (and undef); element-wise for vectors.
    fn freeze_val(&mut self, ty: &Ty, v: Val) -> Result<Val, Exc> {
        match (ty, v) {
            (Ty::Vector { elems, elem }, v) => {
                let vals = vector_elems(&v, *elems as usize);
                let mut out = Vec::with_capacity(vals.len());
                for e in vals {
                    out.push(self.freeze_scalar(elem, e)?);
                }
                Ok(Val::Vec(out))
            }
            (_, v) => self.freeze_scalar(ty, v),
        }
    }

    fn freeze_scalar(&mut self, ty: &Ty, v: Val) -> Result<Val, Exc> {
        match v {
            Val::Poison | Val::Undef(_) => Ok(self.choose_scalar(ty)?),
            defined => Ok(defined),
        }
    }
}

/// Splits a vector value into elements; scalar poison expands to
/// all-poison (defensive — constants are already element-wise).
fn vector_elems(v: &Val, len: usize) -> Vec<Val> {
    match v {
        Val::Vec(elems) => {
            debug_assert_eq!(elems.len(), len);
            elems.clone()
        }
        Val::Poison => vec![Val::Poison; len],
        other => vec![other.clone(); len],
    }
}

/// Maps a scalar function over a value that may be a vector.
fn map_elements(v: &Val, result_ty: &Ty, f: impl Fn(&Val) -> Val) -> Val {
    match result_ty.vector_len() {
        None => f(v),
        Some(n) => Val::Vec(vector_elems(v, n as usize).iter().map(f).collect()),
    }
}

/// Runs `name` on `args` with the given choice script.
///
/// # Errors
///
/// Returns an [`ExecError`] on resource exhaustion or unsupported
/// programs; UB is a *successful* run with [`Outcome::Ub`].
pub fn run_with_script(
    module: &Module,
    name: &str,
    args: &[Val],
    mem: &Memory,
    sem: Semantics,
    limits: Limits,
    script: &[u64],
) -> Result<RunResult, ExecError> {
    let Some(func) = module.function(name) else {
        return Err(ExecError::BadFunction(format!("no function @{name}")));
    };
    let mut interp = Interp {
        module,
        sem,
        limits,
        policy: Policy::Script(script),
        next_choice: 0,
        steps: 0,
        mem: mem.clone(),
        trace: Vec::new(),
    };
    match interp.exec_function(func, args, 0) {
        Ok(FlowResult::Ub) => Ok(RunResult::Done(Outcome::Ub)),
        Ok(FlowResult::Ret(val)) => Ok(RunResult::Done(Outcome::Ret {
            val,
            mem: interp.mem.snapshot(),
            trace: interp.trace,
        })),
        Err(Stop::NeedChoice(n)) => Ok(RunResult::NeedChoice(n)),
        Err(Stop::Err(e)) => Err(e),
    }
}

/// Enumerates *every* behavior of `name` on `args` by exploring all
/// choice scripts.
///
/// # Errors
///
/// Returns an [`ExecError`] if the search exceeds [`Limits`] or the
/// program draws from an unenumerable domain (e.g. freezing a pointer).
pub fn enumerate_outcomes(
    module: &Module,
    name: &str,
    args: &[Val],
    mem: &Memory,
    sem: Semantics,
    limits: Limits,
) -> Result<OutcomeSet, ExecError> {
    let mut outcomes = OutcomeSet::new();
    let mut stack: Vec<Vec<u64>> = vec![Vec::new()];
    let mut states: u64 = 0;
    while let Some(script) = stack.pop() {
        states += 1;
        if states > limits.max_states {
            return Err(ExecError::StateExplosion);
        }
        match run_with_script(module, name, args, mem, sem, limits, &script)? {
            RunResult::Done(outcome) => {
                outcomes.insert(outcome);
            }
            RunResult::NeedChoice(n) => {
                for i in 0..n {
                    let mut s = script.clone();
                    s.push(i);
                    stack.push(s);
                }
            }
        }
    }
    Ok(outcomes)
}

/// Runs `name` once, resolving every non-deterministic choice to 0
/// (freeze-of-poison picks 0, a branch-on-poison under legacy-unswitch
/// takes the else edge, external calls return 0).
///
/// Returns the behavior and the number of steps executed.
///
/// # Errors
///
/// Returns an [`ExecError`] on resource exhaustion or unsupported
/// programs.
pub fn run_concrete(
    module: &Module,
    name: &str,
    args: &[Val],
    mem: &Memory,
    sem: Semantics,
    limits: Limits,
) -> Result<(Outcome, u64), ExecError> {
    let Some(func) = module.function(name) else {
        return Err(ExecError::BadFunction(format!("no function @{name}")));
    };
    let mut interp = Interp {
        module,
        sem,
        limits,
        policy: Policy::Concrete,
        next_choice: 0,
        steps: 0,
        mem: mem.clone(),
        trace: Vec::new(),
    };
    match interp.exec_function(func, args, 0) {
        Ok(FlowResult::Ub) => Ok((Outcome::Ub, interp.steps)),
        Ok(FlowResult::Ret(val)) => Ok((
            Outcome::Ret {
                val,
                mem: interp.mem.snapshot(),
                trace: interp.trace,
            },
            interp.steps,
        )),
        Err(Stop::NeedChoice(_)) => unreachable!("concrete policy never forks"),
        Err(Stop::Err(e)) => Err(e),
    }
}

/// The memory-fill bit matching a semantics' treatment of uninitialized
/// memory (§5.3): poison under the proposal, undef under legacy.
pub fn uninit_fill(sem: &Semantics) -> Bit {
    if sem.uninit_is_poison {
        Bit::Poison
    } else {
        Bit::Undef
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frost_ir::parse_module;

    fn empty_mem() -> Memory {
        Memory::zeroed(0)
    }

    fn outcomes_of(src: &str, fname: &str, args: Vec<Val>, sem: Semantics) -> OutcomeSet {
        let m = parse_module(src).expect("parses");
        enumerate_outcomes(&m, fname, &args, &empty_mem(), sem, Limits::default())
            .expect("enumerates")
    }

    fn ret_vals(set: &OutcomeSet) -> Vec<Option<Val>> {
        set.iter()
            .filter_map(|o| match o {
                Outcome::Ret { val, .. } => Some(val.clone()),
                Outcome::Ub => None,
            })
            .collect()
    }

    #[test]
    fn straight_line_arithmetic() {
        let set = outcomes_of(
            "define i8 @f(i8 %x) {\nentry:\n  %a = add i8 %x, 1\n  ret i8 %a\n}",
            "f",
            vec![Val::int(8, 41)],
            Semantics::proposed(),
        );
        assert_eq!(set.len(), 1);
        assert_eq!(ret_vals(&set), vec![Some(Val::int(8, 42))]);
    }

    #[test]
    fn nsw_overflow_returns_poison() {
        let set = outcomes_of(
            "define i8 @f(i8 %x) {\nentry:\n  %a = add nsw i8 %x, 1\n  ret i8 %a\n}",
            "f",
            vec![Val::int(8, 127)],
            Semantics::proposed(),
        );
        assert_eq!(ret_vals(&set), vec![Some(Val::Poison)]);
    }

    #[test]
    fn division_by_zero_is_ub() {
        let set = outcomes_of(
            "define i8 @f(i8 %x) {\nentry:\n  %a = udiv i8 1, %x\n  ret i8 %a\n}",
            "f",
            vec![Val::int(8, 0)],
            Semantics::proposed(),
        );
        assert!(set.may_ub());
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn freeze_of_poison_enumerates_all_values() {
        let set = outcomes_of(
            "define i2 @f() {\nentry:\n  %a = freeze i2 poison\n  ret i2 %a\n}",
            "f",
            vec![],
            Semantics::proposed(),
        );
        assert_eq!(set.len(), 4, "freeze i2 poison has 4 possible results");
        assert!(!set.may_ub());
    }

    #[test]
    fn freeze_of_defined_is_identity() {
        let set = outcomes_of(
            "define i8 @f(i8 %x) {\nentry:\n  %a = freeze i8 %x\n  ret i8 %a\n}",
            "f",
            vec![Val::int(8, 7)],
            Semantics::proposed(),
        );
        assert_eq!(ret_vals(&set), vec![Some(Val::int(8, 7))]);
    }

    #[test]
    fn all_uses_of_one_freeze_agree() {
        // xor(freeze(p), freeze-same-register) is always 0.
        let set = outcomes_of(
            "define i2 @f() {\nentry:\n  %a = freeze i2 poison\n  %b = xor i2 %a, %a\n  ret i2 %b\n}",
            "f",
            vec![],
            Semantics::proposed(),
        );
        assert_eq!(ret_vals(&set), vec![Some(Val::int(2, 0))]);
    }

    #[test]
    fn undef_uses_are_independent_in_legacy() {
        // %b = xor undef, undef can be anything: each use picks its own
        // value (§3.1).
        let set = outcomes_of(
            "define i2 @f() {\nentry:\n  %b = xor i2 undef, undef\n  ret i2 %b\n}",
            "f",
            vec![],
            Semantics::legacy_gvn(),
        );
        assert_eq!(set.len(), 4);
    }

    #[test]
    fn mul_by_two_of_undef_is_even_only() {
        // §3.1: mul %x, 2 with x undef yields only even values...
        let mul = outcomes_of(
            "define i8 @f() {\nentry:\n  %y = mul i8 undef, 2\n  ret i8 %y\n}",
            "f",
            vec![],
            Semantics::legacy_gvn(),
        );
        let vals: Vec<u128> = ret_vals(&mul)
            .into_iter()
            .map(|v| v.unwrap().as_int().unwrap())
            .collect();
        assert!(vals.iter().all(|v| v % 2 == 0));
        assert_eq!(vals.len(), 128);
        // ...but add %x, %x yields every value (each use independent).
        let add = outcomes_of(
            "define i8 @f() {\nentry:\n  %x = add i8 undef, 0\n  ret i8 %x\n}",
            "f",
            vec![],
            Semantics::legacy_gvn(),
        );
        assert_eq!(add.len(), 256);
    }

    #[test]
    fn branch_on_poison_is_ub_under_proposed() {
        let src = "define i8 @f() {\nentry:\n  br i1 poison, label %a, label %b\na:\n  ret i8 1\nb:\n  ret i8 2\n}";
        let set = outcomes_of(src, "f", vec![], Semantics::proposed());
        assert!(set.may_ub());
        assert_eq!(set.len(), 1);

        // Under legacy-unswitch it's a nondeterministic choice.
        let set = outcomes_of(src, "f", vec![], Semantics::legacy_unswitch());
        assert!(!set.may_ub());
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn select_on_poison_condition_is_poison_under_proposed() {
        let src = "define i8 @f(i8 %x, i8 %y) {\nentry:\n  %r = select i1 poison, i8 %x, i8 %y\n  ret i8 %r\n}";
        let set = outcomes_of(
            src,
            "f",
            vec![Val::int(8, 1), Val::int(8, 2)],
            Semantics::proposed(),
        );
        assert_eq!(ret_vals(&set), vec![Some(Val::Poison)]);
    }

    #[test]
    fn select_ignores_unselected_poison_under_proposed() {
        // Figure 5: only the chosen arm matters.
        let src =
            "define i8 @f() {\nentry:\n  %r = select i1 true, i8 3, i8 poison\n  ret i8 %r\n}";
        let set = outcomes_of(src, "f", vec![], Semantics::proposed());
        assert_eq!(ret_vals(&set), vec![Some(Val::int(8, 3))]);
        // The LangRef/legacy-gvn reading poisons the result.
        let set = outcomes_of(src, "f", vec![], Semantics::legacy_gvn());
        assert_eq!(ret_vals(&set), vec![Some(Val::Poison)]);
    }

    #[test]
    fn phi_and_loop_execution() {
        // Sum 0..n on i8.
        let src = r#"
define i8 @sum(i8 %n) {
entry:
  br label %head
head:
  %i = phi i8 [ 0, %entry ], [ %i1, %body ]
  %s = phi i8 [ 0, %entry ], [ %s1, %body ]
  %c = icmp ult i8 %i, %n
  br i1 %c, label %body, label %exit
body:
  %s1 = add i8 %s, %i
  %i1 = add i8 %i, 1
  br label %head
exit:
  ret i8 %s
}
"#;
        let set = outcomes_of(src, "sum", vec![Val::int(8, 5)], Semantics::proposed());
        assert_eq!(ret_vals(&set), vec![Some(Val::int(8, 10))]);
    }

    #[test]
    fn memory_store_then_load() {
        let m = parse_module(
            r#"
define i8 @f(i8* %p) {
entry:
  store i8 7, i8* %p
  %v = load i8, i8* %p
  ret i8 %v
}
"#,
        )
        .unwrap();
        let mem = Memory::uninit(4, Bit::Poison);
        let set = enumerate_outcomes(
            &m,
            "f",
            &[Val::Ptr(Memory::BASE)],
            &mem,
            Semantics::proposed(),
            Limits::default(),
        )
        .unwrap();
        assert_eq!(ret_vals(&set), vec![Some(Val::int(8, 7))]);
    }

    #[test]
    fn uninitialized_load_is_poison_under_proposed() {
        let m =
            parse_module("define i8 @f(i8* %p) {\nentry:\n  %v = load i8, i8* %p\n  ret i8 %v\n}")
                .unwrap();
        let sem = Semantics::proposed();
        let mem = Memory::uninit(1, uninit_fill(&sem));
        let set = enumerate_outcomes(
            &m,
            "f",
            &[Val::Ptr(Memory::BASE)],
            &mem,
            sem,
            Limits::default(),
        )
        .unwrap();
        assert_eq!(ret_vals(&set), vec![Some(Val::Poison)]);

        // Legacy: undef.
        let sem = Semantics::legacy_gvn();
        let mem = Memory::uninit(1, uninit_fill(&sem));
        let set = enumerate_outcomes(
            &m,
            "f",
            &[Val::Ptr(Memory::BASE)],
            &mem,
            sem,
            Limits::default(),
        )
        .unwrap();
        assert_eq!(ret_vals(&set), vec![Some(Val::Undef(Ty::i8()))]);
    }

    #[test]
    fn out_of_bounds_access_is_ub() {
        let m =
            parse_module("define void @f(i8* %p) {\nentry:\n  store i8 1, i8* %p\n  ret void\n}")
                .unwrap();
        let mem = Memory::zeroed(4);
        let set = enumerate_outcomes(
            &m,
            "f",
            &[Val::Ptr(Memory::BASE + 4)],
            &mem,
            Semantics::proposed(),
            Limits::default(),
        )
        .unwrap();
        assert!(set.may_ub());
        // Null too.
        let set = enumerate_outcomes(
            &m,
            "f",
            &[Val::Ptr(0)],
            &mem,
            Semantics::proposed(),
            Limits::default(),
        )
        .unwrap();
        assert!(set.may_ub());
    }

    #[test]
    fn store_of_poison_pointer_is_ub() {
        let m = parse_module("define void @f() {\nentry:\n  store i8 1, i8* poison\n  ret void\n}")
            .unwrap();
        let set = enumerate_outcomes(
            &m,
            "f",
            &[],
            &Memory::zeroed(4),
            Semantics::proposed(),
            Limits::default(),
        )
        .unwrap();
        assert!(set.may_ub());
    }

    #[test]
    fn external_calls_are_traced_and_poison_args_are_ub() {
        let src = r#"
declare void @use(i8)
define void @f(i8 %x) {
entry:
  call void @use(i8 %x)
  ret void
}
"#;
        let m = parse_module(src).unwrap();
        let set = enumerate_outcomes(
            &m,
            "f",
            &[Val::int(8, 3)],
            &empty_mem(),
            Semantics::proposed(),
            Limits::default(),
        )
        .unwrap();
        let Outcome::Ret { trace, .. } = set.iter().next().unwrap() else {
            panic!()
        };
        assert_eq!(trace.len(), 1);
        assert_eq!(trace[0].callee, "use");
        assert_eq!(trace[0].args, vec![Val::int(8, 3)]);

        let set = enumerate_outcomes(
            &m,
            "f",
            &[Val::Poison],
            &empty_mem(),
            Semantics::proposed(),
            Limits::default(),
        )
        .unwrap();
        assert!(set.may_ub(), "poison reaching a side-effecting call is UB");
    }

    #[test]
    fn defined_function_calls_execute() {
        let src = r#"
define i8 @double(i8 %x) {
entry:
  %r = add i8 %x, %x
  ret i8 %r
}
define i8 @f(i8 %x) {
entry:
  %r = call i8 @double(i8 %x)
  %r2 = call i8 @double(i8 %r)
  ret i8 %r2
}
"#;
        let set = outcomes_of(src, "f", vec![Val::int(8, 3)], Semantics::proposed());
        assert_eq!(ret_vals(&set), vec![Some(Val::int(8, 12))]);
    }

    #[test]
    fn infinite_recursion_hits_depth_limit() {
        let src = "define void @f() {\nentry:\n  call void @f()\n  ret void\n}";
        let m = parse_module(src).unwrap();
        let err = enumerate_outcomes(
            &m,
            "f",
            &[],
            &empty_mem(),
            Semantics::proposed(),
            Limits::default(),
        )
        .unwrap_err();
        assert_eq!(err, ExecError::Fuel);
    }

    #[test]
    fn infinite_loop_hits_fuel() {
        let src = "define void @f() {\nentry:\n  br label %entry2\nentry2:\n  br label %entry2\n}";
        let m = parse_module(src).unwrap();
        let err = enumerate_outcomes(
            &m,
            "f",
            &[],
            &empty_mem(),
            Semantics::proposed(),
            Limits::default(),
        )
        .unwrap_err();
        assert_eq!(err, ExecError::Fuel);
    }

    #[test]
    fn gep_inbounds_overflow_is_poison() {
        let src = r#"
define i8* @f(i8* %p, i32 %i) {
entry:
  %q = getelementptr inbounds i8, i8* %p, i32 %i
  ret i8* %q
}
"#;
        let m = parse_module(src).unwrap();
        // Address near the top of the space; a positive index overflows.
        let set = enumerate_outcomes(
            &m,
            "f",
            &[Val::Ptr(u32::MAX - 1), Val::int(32, 100)],
            &empty_mem(),
            Semantics::proposed(),
            Limits::default(),
        )
        .unwrap();
        assert_eq!(ret_vals(&set), vec![Some(Val::Poison)]);
        // In-range index is fine.
        let set = enumerate_outcomes(
            &m,
            "f",
            &[Val::Ptr(0x1000), Val::int(32, 4)],
            &empty_mem(),
            Semantics::proposed(),
            Limits::default(),
        )
        .unwrap();
        assert_eq!(ret_vals(&set), vec![Some(Val::Ptr(0x1004))]);
    }

    #[test]
    fn gep_scales_by_element_size() {
        let src = r#"
define i32* @f(i32* %p, i32 %i) {
entry:
  %q = getelementptr i32, i32* %p, i32 %i
  ret i32* %q
}
"#;
        let m = parse_module(src).unwrap();
        let set = enumerate_outcomes(
            &m,
            "f",
            &[Val::Ptr(0x1000), Val::int(32, 3)],
            &empty_mem(),
            Semantics::proposed(),
            Limits::default(),
        )
        .unwrap();
        assert_eq!(ret_vals(&set), vec![Some(Val::Ptr(0x100c))]);
        // Negative index.
        let set = enumerate_outcomes(
            &m,
            "f",
            &[Val::Ptr(0x1000), Val::int(32, 0xffff_ffff)],
            &empty_mem(),
            Semantics::proposed(),
            Limits::default(),
        )
        .unwrap();
        assert_eq!(ret_vals(&set), vec![Some(Val::Ptr(0x0ffc))]);
    }

    #[test]
    fn concrete_run_resolves_choices_to_zero() {
        let m = parse_module("define i8 @f() {\nentry:\n  %a = freeze i8 poison\n  ret i8 %a\n}")
            .unwrap();
        let (o, steps) = run_concrete(
            &m,
            "f",
            &[],
            &empty_mem(),
            Semantics::proposed(),
            Limits::default(),
        )
        .unwrap();
        assert_eq!(o.ret_val(), Some(&Val::int(8, 0)));
        assert!(steps >= 1);
    }

    #[test]
    fn vector_ops_are_element_wise() {
        let src = r#"
define <2 x i8> @f(<2 x i8> %v) {
entry:
  %r = add <2 x i8> %v, <i8 1, i8 poison>
  ret <2 x i8> %r
}
"#;
        let set = outcomes_of(
            src,
            "f",
            vec![Val::Vec(vec![Val::int(8, 1), Val::int(8, 2)])],
            Semantics::proposed(),
        );
        assert_eq!(
            ret_vals(&set),
            vec![Some(Val::Vec(vec![Val::int(8, 2), Val::Poison]))]
        );
    }

    #[test]
    fn bitcast_respects_bit_level_semantics() {
        // <2 x i8> with one poison element, bitcast to i16 -> whole
        // thing poison; bitcast to <2 x i8> of a defined i16 round
        // trips.
        let src = r#"
define i16 @f(<2 x i8> %v) {
entry:
  %r = bitcast <2 x i8> %v to i16
  ret i16 %r
}
"#;
        let set = outcomes_of(
            src,
            "f",
            vec![Val::Vec(vec![Val::Poison, Val::int(8, 2)])],
            Semantics::proposed(),
        );
        assert_eq!(ret_vals(&set), vec![Some(Val::Poison)]);

        let set = outcomes_of(
            src,
            "f",
            vec![Val::Vec(vec![Val::int(8, 0x34), Val::int(8, 0x12)])],
            Semantics::proposed(),
        );
        assert_eq!(ret_vals(&set), vec![Some(Val::int(16, 0x1234))]);
    }

    #[test]
    fn sext_of_poison_is_poison() {
        let set = outcomes_of(
            "define i64 @f() {\nentry:\n  %r = sext i32 poison to i64\n  ret i64 %r\n}",
            "f",
            vec![],
            Semantics::proposed(),
        );
        assert_eq!(ret_vals(&set), vec![Some(Val::Poison)]);
    }

    #[test]
    fn sext_of_undef_has_correlated_bits() {
        // §2.4: sext(undef) has all high bits equal -> max value is
        // bounded. On i2 -> i4: results are sext of {0,1,2,3} =
        // {0,1,0b1110,0b1111}.
        let set = outcomes_of(
            "define i4 @f() {\nentry:\n  %r = sext i2 undef to i4\n  ret i4 %r\n}",
            "f",
            vec![],
            Semantics::legacy_gvn(),
        );
        let mut vals: Vec<u128> = ret_vals(&set)
            .into_iter()
            .map(|v| v.unwrap().as_int().unwrap())
            .collect();
        vals.sort_unstable();
        assert_eq!(vals, vec![0, 1, 0b1110, 0b1111]);
    }
}
