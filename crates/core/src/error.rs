//! The shared error type of the frost toolchain.
//!
//! Before this module existed, the refinement/validation/benchmark
//! layers threaded `Result<_, String>` everywhere, which destroyed
//! error provenance at every boundary. [`FrostError`] is the one enum
//! those layers now agree on: structured where structure exists
//! (parse, execution), staged where the failure is positional (a
//! workload's frontend vs. its backend vs. its simulation), and
//! convertible from the per-crate error types via `From` so `?` works
//! unchanged.

use std::fmt;

use crate::exec::ExecError;
use frost_ir::ParseError;

/// Any failure surfaced by frost's checking, validation, or benchmark
/// harness APIs.
#[derive(Clone, Debug)]
pub enum FrostError {
    /// Textual IR failed to parse.
    Parse(ParseError),
    /// The interpreter / outcome enumerator failed (limits, unsupported
    /// constructs).
    Exec(ExecError),
    /// A named stage of a multi-stage pipeline failed on a named
    /// subject (e.g. stage `"frontend"` of workload `"gcc"`).
    Stage {
        /// Which pipeline stage failed (`"frontend"`, `"backend"`,
        /// `"simulation"`, …).
        stage: &'static str,
        /// What was being processed (workload or function name).
        subject: String,
        /// The underlying failure, rendered.
        reason: String,
    },
    /// A failure with no additional structure.
    Other(String),
}

impl FrostError {
    /// Builds a [`FrostError::Stage`] from any displayable cause.
    pub fn stage(
        stage: &'static str,
        subject: impl Into<String>,
        cause: impl fmt::Display,
    ) -> FrostError {
        FrostError::Stage {
            stage,
            subject: subject.into(),
            reason: cause.to_string(),
        }
    }
}

impl fmt::Display for FrostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrostError::Parse(e) => write!(f, "parse error: {e}"),
            FrostError::Exec(e) => write!(f, "execution error: {e}"),
            FrostError::Stage {
                stage,
                subject,
                reason,
            } => {
                write!(f, "{subject}: {stage}: {reason}")
            }
            FrostError::Other(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for FrostError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrostError::Parse(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for FrostError {
    fn from(e: ParseError) -> FrostError {
        FrostError::Parse(e)
    }
}

impl From<ExecError> for FrostError {
    fn from(e: ExecError) -> FrostError {
        FrostError::Exec(e)
    }
}

impl From<String> for FrostError {
    fn from(msg: String) -> FrostError {
        FrostError::Other(msg)
    }
}

impl From<&str> for FrostError {
    fn from(msg: &str) -> FrostError {
        FrostError::Other(msg.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        let e = FrostError::stage("backend", "gcc", "no register");
        assert_eq!(e.to_string(), "gcc: backend: no register");
        let e: FrostError = ExecError::Fuel.into();
        assert!(e.to_string().contains("step limit"));
        let e: FrostError = "plain".into();
        assert_eq!(e.to_string(), "plain");
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: std::error::Error>(_: &E) {}
        assert_err(&FrostError::Other("x".into()));
    }
}
