//! The two-phase, block-based memory of §4.2 (after Beck et al.).
//!
//! Memory is a set of logical *blocks*, each a bit-granular byte array.
//! Execution starts in the **infinite** phase: `alloca` mints fresh
//! blocks and pointers are `(block, offset)` pairs with no observable
//! address. A `ptrtoint`/`inttoptr` forces the **finite** phase, in
//! which every block has a concrete base address. Layout is
//! *deterministic* — block `i`'s base depends only on the sizes of the
//! blocks created before it — so concretization never introduces
//! nondeterminism and both executors agree byte-for-byte.
//!
//! Bounds discipline (Figure 5): going out of bounds on `gep inbounds`
//! or a cast is *deferred* UB (the pointer becomes poison), but an
//! out-of-bounds `Load(M, p, sz)`/`Store(M, p, b)` is *immediate* UB.
//! Raw-address accesses (`Ptr::Addr`) resolve against the *initial*
//! blocks in either phase — callers may pass `BASE + off` pointers as
//! arguments, preserving the old flat-region interface — and against
//! `alloca`'d blocks only once the finite phase has been forced.

use std::sync::{Arc, OnceLock};

use crate::val::{Bit, Bits, Ptr};

/// Which memory phase execution is in.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Phase {
    /// Blocks are logical; raw addresses only resolve to initial blocks.
    Infinite,
    /// Addresses are concrete; raw addresses resolve to every block.
    Finite,
}

/// One logical allocation: a base address (meaningful in the finite
/// phase) plus bit-granular contents.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct Block {
    /// Concrete base address (fixed deterministically at creation).
    base: u32,
    /// One entry per bit, LSB-first within each byte.
    bits: Vec<Bit>,
}

impl Block {
    fn size_bytes(&self) -> u32 {
        (self.bits.len() / 8) as u32
    }
}

/// The block-based memory state.
///
/// Cloning is cheap: blocks are `Arc`-shared and copied on first write
/// (the executors' copy-on-write run forking relies on this).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct MemState {
    blocks: Vec<Arc<Block>>,
    /// How many leading blocks existed before execution started (the
    /// caller-provided image; `snapshot` and raw-address resolution in
    /// the infinite phase cover exactly these).
    n_initial: u32,
    phase: Phase,
}

/// The historical name for the memory state.
pub type Memory = MemState;

/// Guard gap between consecutive blocks, so one-past-the-end of one
/// block never equals the base of the next.
const GUARD_BYTES: u32 = 8;

impl MemState {
    /// Base address of the first block (null and low addresses are
    /// always invalid).
    pub const BASE: u32 = 0x1000;

    /// A memory with one initial block of `size_bytes` filled with
    /// `fill` (use [`Bit::Poison`] under the proposed semantics,
    /// [`Bit::Undef`] under the legacy ones). `size_bytes == 0` means
    /// no memory at all.
    pub fn uninit(size_bytes: u32, fill: Bit) -> MemState {
        if size_bytes == 0 {
            return MemState {
                blocks: Vec::new(),
                n_initial: 0,
                phase: Phase::Infinite,
            };
        }
        MemState::with_initial_blocks(&[size_bytes], fill)
    }

    /// A memory with one zero-initialized initial block.
    pub fn zeroed(size_bytes: u32) -> MemState {
        MemState::uninit(size_bytes, Bit::Zero)
    }

    /// A memory with one initial block per entry of `sizes` (e.g. one
    /// disjoint block per pointer parameter), each filled with `fill`.
    pub fn with_initial_blocks(sizes: &[u32], fill: Bit) -> MemState {
        let mut m = MemState {
            blocks: Vec::new(),
            n_initial: 0,
            phase: Phase::Infinite,
        };
        for &size in sizes {
            m.push_block(size, fill);
        }
        m.n_initial = m.blocks.len() as u32;
        m
    }

    /// The deterministic base for the next block: 8-aligned, one guard
    /// gap past the previous block's end.
    fn next_base(&self) -> u32 {
        match self.blocks.last() {
            None => MemState::BASE,
            Some(b) => {
                let end = b.base + b.size_bytes();
                (end + GUARD_BYTES).next_multiple_of(8)
            }
        }
    }

    fn push_block(&mut self, size_bytes: u32, fill: Bit) -> u32 {
        let base = self.next_base();
        self.blocks.push(Arc::new(Block {
            base,
            bits: vec![fill; size_bytes as usize * 8],
        }));
        (self.blocks.len() - 1) as u32
    }

    /// `alloca`: mints a fresh block of `size_bytes` filled with `fill`
    /// and returns its index. The base address is fixed (deterministic)
    /// immediately, but remains unobservable until
    /// [`concretize`](Self::concretize) is forced.
    pub fn alloca(&mut self, size_bytes: u32, fill: Bit) -> u32 {
        mem_counters().allocas.incr();
        self.push_block(size_bytes, fill)
    }

    /// The current phase.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Forces the finite phase (`ptrtoint`/`inttoptr` observed an
    /// address). Layout is already fixed, so this only widens what raw
    /// addresses may resolve to.
    pub fn concretize(&mut self) {
        if self.phase == Phase::Infinite {
            mem_counters().concretizations.incr();
            self.phase = Phase::Finite;
        }
    }

    /// Number of blocks (initial + alloca'd).
    pub fn num_blocks(&self) -> u32 {
        self.blocks.len() as u32
    }

    /// The concrete address a pointer denotes. Always defined — block
    /// bases are deterministic — though in the infinite phase it is not
    /// yet observable by the program.
    pub fn ptr_addr(&self, p: Ptr) -> u32 {
        match p {
            Ptr::Addr(a) => a,
            Ptr::Block { block, off } => self
                .blocks
                .get(block as usize)
                .map_or(off, |b| b.base.wrapping_add(off)),
        }
    }

    /// Size in bytes of block `block` (0 if out of range).
    pub fn block_size(&self, block: u32) -> u32 {
        self.blocks
            .get(block as usize)
            .map_or(0, |b| b.size_bytes())
    }

    /// Resolves a raw address to `(block index, bit offset)` for a
    /// `width_bits` access, honouring the phase rules: initial blocks
    /// resolve in either phase, `alloca`'d blocks only in the finite
    /// phase.
    fn resolve(&self, addr: u32, width_bits: u32) -> Option<(usize, usize)> {
        let visible = match self.phase {
            Phase::Infinite => self.n_initial as usize,
            Phase::Finite => self.blocks.len(),
        };
        for (i, b) in self.blocks[..visible].iter().enumerate() {
            if addr < b.base {
                continue;
            }
            let off_bits = (addr - b.base) as u64 * 8;
            if off_bits + u64::from(width_bits) <= b.bits.len() as u64 {
                return Some((i, off_bits as usize));
            }
        }
        None
    }

    /// Locates the bit range of a `width_bits` access through `p`, or
    /// `None` (= immediate UB at the caller) if out of bounds.
    fn locate(&self, p: Ptr, width_bits: u32) -> Option<(usize, usize)> {
        match p {
            Ptr::Block { block, off } => {
                let b = self.blocks.get(block as usize)?;
                let off_bits = off as u64 * 8;
                if off_bits + u64::from(width_bits) <= b.bits.len() as u64 {
                    Some((block as usize, off_bits as usize))
                } else {
                    None
                }
            }
            Ptr::Addr(a) => self.resolve(a, width_bits),
        }
    }

    /// Returns `true` if a `width_bits`-wide access through `p` is in
    /// bounds.
    pub fn ptr_in_bounds(&self, p: Ptr, width_bits: u32) -> bool {
        self.locate(p, width_bits).is_some()
    }

    /// Returns `true` if a `width_bits`-wide access at raw address
    /// `addr` is in bounds.
    pub fn in_bounds(&self, addr: u32, width_bits: u32) -> bool {
        self.resolve(addr, width_bits).is_some()
    }

    /// `Load(M, p, sz)`: reads `width_bits` through pointer `p`.
    /// Returns `None` (= immediate UB at the caller) if out of bounds.
    pub fn load_ptr(&self, p: Ptr, width_bits: u32) -> Option<Bits> {
        let (block, off) = self.locate(p, width_bits)?;
        let bits = &self.blocks[block].bits;
        Some(bits[off..off + width_bits as usize].to_vec())
    }

    /// `Store(M, p, b)`: writes `bits` through pointer `p`. Returns
    /// `false` (= immediate UB at the caller) if out of bounds. Copies
    /// the target block if it is shared.
    #[must_use]
    pub fn store_ptr(&mut self, p: Ptr, bits: &[Bit]) -> bool {
        let Some((block, off)) = self.locate(p, bits.len() as u32) else {
            return false;
        };
        let b = Arc::make_mut(&mut self.blocks[block]);
        b.bits[off..off + bits.len()].copy_from_slice(bits);
        true
    }

    /// Raw-address load (the pre-block-model interface).
    pub fn load(&self, addr: u32, width_bits: u32) -> Option<Bits> {
        self.load_ptr(Ptr::Addr(addr), width_bits)
    }

    /// Raw-address store (the pre-block-model interface).
    #[must_use]
    pub fn store(&mut self, addr: u32, bits: &[Bit]) -> bool {
        self.store_ptr(Ptr::Addr(addr), bits)
    }

    /// Total size of the *initial* blocks in bytes.
    pub fn size_bytes(&self) -> u32 {
        self.blocks[..self.n_initial as usize]
            .iter()
            .map(|b| b.size_bytes())
            .sum()
    }

    /// The address one past the end of the last initial block (the end
    /// of the caller-provided region).
    pub fn end(&self) -> u32 {
        self.blocks[..self.n_initial as usize]
            .last()
            .map_or(MemState::BASE, |b| b.base + b.size_bytes())
    }

    /// A snapshot of the *initial* blocks' bit contents, concatenated
    /// in order (used to compare final memories during refinement
    /// checking — `alloca`'d locals are private to each side and do not
    /// participate).
    pub fn snapshot(&self) -> Bits {
        self.blocks[..self.n_initial as usize]
            .iter()
            .flat_map(|b| b.bits.iter().copied())
            .collect()
    }
}

/// The always-on memory counters (`frost.core.mem.*`; see
/// docs/OBSERVABILITY.md). Observability telemetry, not a determinism
/// surface.
struct MemCounters {
    allocas: &'static frost_telemetry::Counter,
    concretizations: &'static frost_telemetry::Counter,
}

fn mem_counters() -> &'static MemCounters {
    static COUNTERS: OnceLock<MemCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| MemCounters {
        allocas: frost_telemetry::counter("frost.core.mem.allocas"),
        concretizations: frost_telemetry::counter("frost.core.mem.concretizations"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_and_low_addresses_are_invalid() {
        let m = Memory::zeroed(16);
        assert!(!m.in_bounds(0, 8));
        assert!(!m.in_bounds(Memory::BASE - 1, 8));
        assert!(m.in_bounds(Memory::BASE, 8));
    }

    #[test]
    fn load_store_round_trip() {
        let mut m = Memory::uninit(4, Bit::Poison);
        let bits = vec![
            Bit::One,
            Bit::Zero,
            Bit::One,
            Bit::One,
            Bit::Zero,
            Bit::Zero,
            Bit::Zero,
            Bit::Zero,
        ];
        assert!(m.store(Memory::BASE + 1, &bits));
        assert_eq!(m.load(Memory::BASE + 1, 8), Some(bits));
        // Neighbouring byte still poison.
        assert_eq!(m.load(Memory::BASE, 8), Some(vec![Bit::Poison; 8]));
    }

    #[test]
    fn out_of_bounds_fails() {
        let mut m = Memory::zeroed(2);
        assert_eq!(m.load(Memory::BASE + 2, 8), None);
        assert_eq!(m.load(Memory::BASE + 1, 16), None);
        assert!(!m.store(Memory::BASE + 2, &[Bit::Zero; 8]));
        // A 16-bit load at the last byte fails, an 8-bit one succeeds.
        assert!(m.load(Memory::BASE + 1, 8).is_some());
    }

    #[test]
    fn sub_byte_widths_are_supported() {
        let mut m = Memory::zeroed(1);
        assert!(m.store(Memory::BASE, &[Bit::One]));
        assert_eq!(m.load(Memory::BASE, 1), Some(vec![Bit::One]));
        assert_eq!(
            m.load(Memory::BASE, 8).unwrap()[1..],
            vec![Bit::Zero; 7][..],
            "remaining bits untouched"
        );
    }

    #[test]
    fn snapshot_reflects_stores() {
        let mut m = Memory::zeroed(1);
        assert!(m.store(Memory::BASE, &[Bit::One; 8]));
        assert_eq!(m.snapshot(), vec![Bit::One; 8]);
    }

    #[test]
    fn alloca_blocks_are_disjoint_and_deterministic() {
        let mut a = Memory::zeroed(2);
        let mut b = Memory::zeroed(2);
        let ba = a.alloca(4, Bit::Poison);
        let bb = b.alloca(4, Bit::Poison);
        assert_eq!(ba, bb);
        assert_eq!(
            a.ptr_addr(Ptr::Block { block: ba, off: 0 }),
            b.ptr_addr(Ptr::Block { block: bb, off: 0 })
        );
        // The new block does not overlap the initial one, even counting
        // one-past-the-end pointers.
        let base = a.ptr_addr(Ptr::Block { block: ba, off: 0 });
        assert!(base > Memory::BASE + 2);
    }

    #[test]
    fn provenance_access_works_in_the_infinite_phase() {
        let mut m = Memory::zeroed(0);
        let b = m.alloca(2, Bit::Poison);
        let p = Ptr::Block { block: b, off: 1 };
        assert!(m.store_ptr(p, &[Bit::One; 8]));
        assert_eq!(m.load_ptr(p, 8), Some(vec![Bit::One; 8]));
        // Out of bounds through provenance is immediate UB.
        assert_eq!(m.load_ptr(Ptr::Block { block: b, off: 2 }, 8), None);
        assert!(!m.store_ptr(Ptr::Block { block: b, off: 5 }, &[Bit::Zero; 8]));
    }

    #[test]
    fn raw_addresses_reach_allocas_only_in_the_finite_phase() {
        let mut m = Memory::zeroed(1);
        let b = m.alloca(1, Bit::Zero);
        let addr = m.ptr_addr(Ptr::Block { block: b, off: 0 });
        // Infinite phase: the alloca is invisible to raw addresses...
        assert_eq!(m.load(addr, 8), None);
        // ...but the initial block still resolves (flat compatibility).
        assert!(m.load(Memory::BASE, 8).is_some());
        m.concretize();
        assert_eq!(m.phase(), Phase::Finite);
        assert_eq!(m.load(addr, 8), Some(vec![Bit::Zero; 8]));
    }

    #[test]
    fn stores_through_raw_and_provenance_pointers_agree() {
        let mut m = Memory::zeroed(1);
        let b = m.alloca(1, Bit::Zero);
        m.concretize();
        let addr = m.ptr_addr(Ptr::Block { block: b, off: 0 });
        assert!(m.store(addr, &[Bit::One; 8]));
        assert_eq!(
            m.load_ptr(Ptr::Block { block: b, off: 0 }, 8),
            Some(vec![Bit::One; 8])
        );
    }

    #[test]
    fn snapshot_excludes_alloca_blocks() {
        let mut m = Memory::zeroed(2);
        let b = m.alloca(4, Bit::Poison);
        assert!(m.store_ptr(Ptr::Block { block: b, off: 0 }, &[Bit::One; 8]));
        assert_eq!(m.snapshot(), vec![Bit::Zero; 16]);
        assert_eq!(m.size_bytes(), 2);
        assert_eq!(m.end(), Memory::BASE + 2);
    }

    #[test]
    fn cow_blocks_do_not_leak_across_clones() {
        let mut m = Memory::zeroed(1);
        let snap = m.clone();
        assert!(m.store(Memory::BASE, &[Bit::One; 8]));
        assert_eq!(snap.load(Memory::BASE, 8), Some(vec![Bit::Zero; 8]));
        assert_eq!(m.load(Memory::BASE, 8), Some(vec![Bit::One; 8]));
    }

    #[test]
    fn initial_blocks_are_disjoint_per_parameter() {
        let m = Memory::with_initial_blocks(&[4, 4], Bit::Zero);
        assert_eq!(m.num_blocks(), 2);
        let b0 = m.ptr_addr(Ptr::Block { block: 0, off: 0 });
        let b1 = m.ptr_addr(Ptr::Block { block: 1, off: 0 });
        assert!(b0 + 4 < b1, "guard gap separates blocks");
        assert_eq!(m.size_bytes(), 8);
        assert_eq!(m.snapshot().len(), 64);
    }
}
