//! The bit-wise memory of §4.2.
//!
//! `Mem` partially maps 32-bit addresses to bit-wise defined bytes.
//! Here memory is a single allocated region starting at [`Memory::BASE`]
//! (so address 0 — null — is always invalid). `Load(M, p, sz)` succeeds
//! only if `p` is a non-poison address whose `sz` bits lie within the
//! region; failure is immediate UB (Figure 5).

use crate::val::{Bit, Bits};

/// A flat, bit-granular memory region.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Memory {
    /// One entry per bit of the region, LSB-first within each byte.
    bits: Vec<Bit>,
}

impl Memory {
    /// Base address of the allocated region (null and low addresses are
    /// invalid).
    pub const BASE: u32 = 0x1000;

    /// Allocates `size_bytes` of memory filled with `fill` (use
    /// [`Bit::Poison`] under the proposed semantics, [`Bit::Undef`]
    /// under the legacy ones).
    pub fn uninit(size_bytes: u32, fill: Bit) -> Memory {
        Memory {
            bits: vec![fill; size_bytes as usize * 8],
        }
    }

    /// Allocates zero-initialized memory.
    pub fn zeroed(size_bytes: u32) -> Memory {
        Memory::uninit(size_bytes, Bit::Zero)
    }

    /// Size of the region in bytes.
    pub fn size_bytes(&self) -> u32 {
        (self.bits.len() / 8) as u32
    }

    /// The address one past the end of the region.
    pub fn end(&self) -> u32 {
        Memory::BASE + self.size_bytes()
    }

    /// Returns `true` if a `width_bits`-wide access at `addr` lies
    /// within the region.
    pub fn in_bounds(&self, addr: u32, width_bits: u32) -> bool {
        if addr < Memory::BASE {
            return false;
        }
        let offset = (addr - Memory::BASE) as u64 * 8;
        offset + u64::from(width_bits) <= self.bits.len() as u64
    }

    /// `Load(M, p, sz)`: reads `width_bits` starting at byte address
    /// `addr`. Returns `None` (= immediate UB at the caller) if out of
    /// bounds.
    pub fn load(&self, addr: u32, width_bits: u32) -> Option<Bits> {
        if !self.in_bounds(addr, width_bits) {
            return None;
        }
        let offset = (addr - Memory::BASE) as usize * 8;
        Some(self.bits[offset..offset + width_bits as usize].to_vec())
    }

    /// `Store(M, p, b)`: writes `bits` starting at byte address `addr`.
    /// Returns `false` (= immediate UB at the caller) if out of bounds.
    #[must_use]
    pub fn store(&mut self, addr: u32, bits: &[Bit]) -> bool {
        if !self.in_bounds(addr, bits.len() as u32) {
            return false;
        }
        let offset = (addr - Memory::BASE) as usize * 8;
        self.bits[offset..offset + bits.len()].copy_from_slice(bits);
        true
    }

    /// A snapshot of the full bit contents (used to compare final
    /// memories during refinement checking).
    pub fn snapshot(&self) -> Bits {
        self.bits.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_and_low_addresses_are_invalid() {
        let m = Memory::zeroed(16);
        assert!(!m.in_bounds(0, 8));
        assert!(!m.in_bounds(Memory::BASE - 1, 8));
        assert!(m.in_bounds(Memory::BASE, 8));
    }

    #[test]
    fn load_store_round_trip() {
        let mut m = Memory::uninit(4, Bit::Poison);
        let bits = vec![
            Bit::One,
            Bit::Zero,
            Bit::One,
            Bit::One,
            Bit::Zero,
            Bit::Zero,
            Bit::Zero,
            Bit::Zero,
        ];
        assert!(m.store(Memory::BASE + 1, &bits));
        assert_eq!(m.load(Memory::BASE + 1, 8), Some(bits));
        // Neighbouring byte still poison.
        assert_eq!(m.load(Memory::BASE, 8), Some(vec![Bit::Poison; 8]));
    }

    #[test]
    fn out_of_bounds_fails() {
        let mut m = Memory::zeroed(2);
        assert_eq!(m.load(Memory::BASE + 2, 8), None);
        assert_eq!(m.load(Memory::BASE + 1, 16), None);
        assert!(!m.store(Memory::BASE + 2, &[Bit::Zero; 8]));
        // A 16-bit load at the last byte fails, an 8-bit one succeeds.
        assert!(m.load(Memory::BASE + 1, 8).is_some());
    }

    #[test]
    fn sub_byte_widths_are_supported() {
        let mut m = Memory::zeroed(1);
        assert!(m.store(Memory::BASE, &[Bit::One]));
        assert_eq!(m.load(Memory::BASE, 1), Some(vec![Bit::One]));
        assert_eq!(
            m.load(Memory::BASE, 8).unwrap()[1..],
            vec![Bit::Zero; 7][..],
            "remaining bits untouched"
        );
    }

    #[test]
    fn snapshot_reflects_stores() {
        let mut m = Memory::zeroed(1);
        assert!(m.store(Memory::BASE, &[Bit::One; 8]));
        assert_eq!(m.snapshot(), vec![Bit::One; 8]);
    }
}
