//! Outcome-enumeration memoization for validation campaigns.
//!
//! The §6 methodology checks millions of tiny functions, and the hot
//! loop is [`crate::exec::enumerate_outcomes`] run
//! once per (function, input) pair for both the source and the target
//! of every check. Campaign corpora are massively redundant: a no-op
//! transform leaves the target textually identical to the source, and
//! aggressive pipelines fold thousands of distinct inputs to the same
//! handful of canonical forms (`ret 0`, `ret %a`, …). [`OutcomeCache`]
//! memoizes the *entire per-input outcome vector* of a function under a
//! given semantics, so each distinct (function shape, semantics)
//! combination is enumerated exactly once per campaign.
//!
//! ## Cache key
//!
//! `(structural fingerprint, semantics, limits, engine, salt)` where
//! the fingerprint is [`FunctionKey`] — an exact, name-independent
//! encoding of the function body. Generated corpora name every function
//! differently (`fz0`, `fz1`, …) and the name is semantically
//! irrelevant, so α-equivalent bodies share one entry; because the key
//! stores the full encoding, equality is structural and collisions are
//! impossible. The [`Engine`] is part of the key because engines may
//! legitimately differ on *errors* (the strict bit-sliced engine
//! reports ineligible programs as unsupported). The `salt` is a
//! caller-supplied fingerprint of everything else that shapes the
//! result (input-enumeration options, test-memory size); callers that
//! enumerate inputs differently must use different salts.
//!
//! The cache is thread-safe (a mutexed map plus atomic hit/miss
//! counters) and is shared by all workers of a parallel campaign. The
//! map hashes with [`crate::fasthash::FastHasher`]: keys are in-process
//! fingerprints of generated IR, so the keyed DoS resistance of the
//! default hasher buys nothing on this hot path.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use frost_ir::{FunctionKey, Module};

use crate::engine::{run_compiled, Engine};
use crate::exec::{reference, ExecError, Limits};
use crate::fasthash::FastHashMap;
use crate::mem::Memory;
use crate::outcome::OutcomeSet;
use crate::plan::PlanCache;
use crate::sem::Semantics;
use crate::val::Val;

/// The memoized result of enumerating one function on a fixed input
/// list: one entry per input tuple, each either the outcome set or the
/// enumeration failure on that input. Keeping failures *per input*
/// (rather than aborting the vector) lets a cached refinement check
/// reproduce the sequential checker's verdict exactly — including
/// which input it reports as inconclusive.
pub type EnumeratedOutcomes = Vec<Result<OutcomeSet, ExecError>>;

#[derive(Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    key: FunctionKey,
    sem: Semantics,
    limits: Limits,
    engine: Engine,
    salt: u64,
}

/// Enumerates every behavior of `name` in `module` on each input tuple
/// in turn (no caching — see [`OutcomeCache::enumerate`] for the
/// memoized variant).
///
/// Runs on the plan engine: the function is compiled once and all
/// inputs execute on one reused machine, so per-input cost is
/// execution only. For engine selection use
/// [`crate::engine::enumerate_function`].
pub fn enumerate_all_inputs(
    module: &Module,
    name: &str,
    inputs: &[Vec<Val>],
    mem: &Memory,
    sem: Semantics,
    limits: Limits,
) -> EnumeratedOutcomes {
    crate::engine::enumerate_function(module, name, inputs, mem, sem, limits, Engine::Plan)
}

/// A thread-safe memoization table for whole-function outcome
/// enumeration. See the [module docs](self) for the key structure.
#[derive(Default)]
pub struct OutcomeCache {
    map: Mutex<FastHashMap<CacheKey, Arc<EnumeratedOutcomes>>>,
    plans: PlanCache,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// Process-wide mirrors of the per-cache hit/miss tallies, registered
/// once (`frost.core.cache.hits` / `frost.core.cache.misses` — see
/// docs/OBSERVABILITY.md). Per-cache counts stay exact; under parallel
/// campaigns two workers may race on one key and both count a miss, so
/// the global counters are throughput telemetry, not a determinism
/// surface.
fn global_cache_counters() -> (
    &'static frost_telemetry::Counter,
    &'static frost_telemetry::Counter,
) {
    use std::sync::OnceLock;
    static COUNTERS: OnceLock<(
        &'static frost_telemetry::Counter,
        &'static frost_telemetry::Counter,
    )> = OnceLock::new();
    *COUNTERS.get_or_init(|| {
        (
            frost_telemetry::counter("frost.core.cache.hits"),
            frost_telemetry::counter("frost.core.cache.misses"),
        )
    })
}

impl OutcomeCache {
    /// An empty cache.
    pub fn new() -> OutcomeCache {
        OutcomeCache::default()
    }

    /// A diagnostic rendering of the fingerprint the cache keys a
    /// function on: [`FunctionKey`]'s debug form (hash plus encoded
    /// body words). This replaces the retired canonical-text path —
    /// keys are structural, never stringly, and the debug rendering is
    /// only for telling cache entries apart in logs and tests.
    pub fn key_debug(module: &Module, name: &str) -> Option<String> {
        Some(format!("{:?}", FunctionKey::of(module.function(name)?)))
    }

    /// Memoized [`enumerate_all_inputs`]. On a hit the stored vector is
    /// returned without touching the interpreter; on a miss the
    /// enumeration runs and the result — including failures, which are
    /// just as expensive to rediscover — is stored.
    ///
    /// `salt` must fingerprint every input-shaping option that is not
    /// part of the key (input-enumeration options, memory size).
    // Every parameter is a distinct cache-key component; bundling them
    // into a struct would just move the field list one call up.
    #[allow(clippy::too_many_arguments)]
    pub fn enumerate(
        &self,
        module: &Module,
        name: &str,
        inputs: &[Vec<Val>],
        mem: &Memory,
        sem: Semantics,
        limits: Limits,
        engine: Engine,
        salt: u64,
    ) -> Arc<EnumeratedOutcomes> {
        let Some(func) = module.function(name) else {
            return Arc::new(vec![Err(ExecError::BadFunction(name.to_string()))]);
        };
        let key = FunctionKey::of(func);
        self.enumerate_keyed(
            &key, module, name, inputs, mem, sem, limits, engine, salt, true,
        )
    }

    /// [`OutcomeCache::enumerate`] for callers that already computed
    /// `name`'s [`FunctionKey`], with an explicit storage policy.
    ///
    /// `store = false` is for *transient* functions — exhaustive-sweep
    /// sources, which the odometer visits exactly once. The probe still
    /// runs (the shape may coincide with a canonical form some target
    /// check stored), but a miss enumerates without inserting into
    /// either the outcome map or the embedded plan cache, keeping the
    /// campaign's memory footprint bounded by the *target* shape count
    /// instead of the full enumerated space.
    ///
    /// `key` must be `FunctionKey::of` of `name`'s body; a mismatched
    /// key silently poisons the cache for that fingerprint.
    // Every parameter is a distinct cache-key component; bundling them
    // into a struct would just move the field list one call up.
    #[allow(clippy::too_many_arguments)]
    pub fn enumerate_keyed(
        &self,
        fkey: &FunctionKey,
        module: &Module,
        name: &str,
        inputs: &[Vec<Val>],
        mem: &Memory,
        sem: Semantics,
        limits: Limits,
        engine: Engine,
        salt: u64,
        store: bool,
    ) -> Arc<EnumeratedOutcomes> {
        if module.function(name).is_none() {
            return Arc::new(vec![Err(ExecError::BadFunction(name.to_string()))]);
        }
        let key = CacheKey {
            key: fkey.clone(),
            sem,
            limits,
            engine,
            salt,
        };
        if let Some(entry) = self.map.lock().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            global_cache_counters().0.incr();
            return Arc::clone(entry);
        }
        // Enumerate outside the lock: enumeration is the expensive part
        // and holding the lock across it would serialize every worker.
        // Two workers may race on the same key and both enumerate; the
        // result is identical and the second insert is a harmless
        // overwrite.
        self.misses.fetch_add(1, Ordering::Relaxed);
        global_cache_counters().1.incr();
        let entry = Arc::new(if engine == Engine::Reference {
            inputs
                .iter()
                .map(|args| reference::enumerate_outcomes(module, name, args, mem, sem, limits))
                .collect()
        } else {
            // Compiled plans are cached separately from outcome vectors:
            // the plan key ignores limits, engine, and salt, so
            // re-enumerating the same function under different input
            // options still reuses the compilation. The fingerprint
            // computed above is reused as the plan key, under the same
            // storage policy.
            match self
                .plans
                .get_or_compile_keyed_policy(&key.key, module, name, sem, store)
            {
                Some((plan, idx)) => run_compiled(&plan, idx, inputs, mem, limits, engine),
                None => vec![Err(ExecError::BadFunction(name.to_string()))],
            }
        });
        if store {
            self.map
                .lock()
                .expect("cache lock")
                .insert(key, Arc::clone(&entry));
        }
        entry
    }

    /// The embedded plan cache (distinct compiled functions, plan-cache
    /// hit statistics).
    pub fn plans(&self) -> &PlanCache {
        &self.plans
    }

    /// Lookups answered from the table.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to enumerate.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// `hits / (hits + misses)`, or 0 for an unused cache.
    pub fn hit_rate(&self) -> f64 {
        let (h, m) = (self.hits() as f64, self.misses() as f64);
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// Distinct (function, semantics) combinations stored.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache lock").len()
    }

    /// Returns `true` if nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frost_ir::parse_module;

    const F: &str = "define i2 @g(i2 %x) {\nentry:\n  %a = add i2 %x, 1\n  ret i2 %a\n}";

    fn inputs() -> Vec<Vec<Val>> {
        (0..4).map(|v| vec![Val::int(2, v)]).collect()
    }

    #[test]
    fn memoized_matches_fresh() {
        let m = parse_module(F).unwrap();
        let cache = OutcomeCache::new();
        let sem = Semantics::proposed();
        let fresh = enumerate_all_inputs(
            &m,
            "g",
            &inputs(),
            &Memory::zeroed(0),
            sem,
            Limits::default(),
        );
        let cached = cache.enumerate(
            &m,
            "g",
            &inputs(),
            &Memory::zeroed(0),
            sem,
            Limits::default(),
            Engine::Plan,
            0,
        );
        assert!(fresh.iter().all(Result::is_ok));
        assert_eq!(&fresh, cached.as_ref());
        assert_eq!(cache.misses(), 1);
        let again = cache.enumerate(
            &m,
            "g",
            &inputs(),
            &Memory::zeroed(0),
            sem,
            Limits::default(),
            Engine::Plan,
            0,
        );
        assert_eq!(cache.hits(), 1);
        assert!(Arc::ptr_eq(&cached, &again));
    }

    #[test]
    fn name_is_canonicalized_away() {
        let a = parse_module(F).unwrap();
        let b = parse_module(&F.replace("@g", "@differently_named")).unwrap();
        let cache = OutcomeCache::new();
        let sem = Semantics::proposed();
        cache.enumerate(
            &a,
            "g",
            &inputs(),
            &Memory::zeroed(0),
            sem,
            Limits::default(),
            Engine::Plan,
            0,
        );
        cache.enumerate(
            &b,
            "differently_named",
            &inputs(),
            &Memory::zeroed(0),
            sem,
            Limits::default(),
            Engine::Plan,
            0,
        );
        assert_eq!(cache.hits(), 1, "same body under a new name must hit");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn semantics_and_salt_separate_entries() {
        let m = parse_module(F).unwrap();
        let cache = OutcomeCache::new();
        let mem = Memory::zeroed(0);
        cache.enumerate(
            &m,
            "g",
            &inputs(),
            &mem,
            Semantics::proposed(),
            Limits::default(),
            Engine::Plan,
            0,
        );
        cache.enumerate(
            &m,
            "g",
            &inputs(),
            &mem,
            Semantics::legacy_gvn(),
            Limits::default(),
            Engine::Plan,
            0,
        );
        cache.enumerate(
            &m,
            "g",
            &inputs(),
            &mem,
            Semantics::proposed(),
            Limits::default(),
            Engine::Plan,
            1,
        );
        assert_eq!(cache.misses(), 3);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn plans_are_shared_across_salts() {
        let m = parse_module(F).unwrap();
        let cache = OutcomeCache::new();
        let mem = Memory::zeroed(0);
        let sem = Semantics::proposed();
        cache.enumerate(
            &m,
            "g",
            &inputs(),
            &mem,
            sem,
            Limits::default(),
            Engine::Plan,
            0,
        );
        cache.enumerate(
            &m,
            "g",
            &inputs(),
            &mem,
            sem,
            Limits::default(),
            Engine::Plan,
            1,
        );
        assert_eq!(cache.misses(), 2, "different salts miss the outcome cache");
        assert_eq!(cache.plans().len(), 1, "but share one compiled plan");
    }

    #[test]
    fn missing_function_is_an_error_not_a_panic() {
        let m = parse_module(F).unwrap();
        let cache = OutcomeCache::new();
        let r = cache.enumerate(
            &m,
            "nope",
            &inputs(),
            &Memory::zeroed(0),
            Semantics::proposed(),
            Limits::default(),
            Engine::Plan,
            0,
        );
        assert!(matches!(r[0], Err(ExecError::BadFunction(_))));
    }
}
