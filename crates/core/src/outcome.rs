//! Observable behaviors of a function execution.

use std::fmt;

use crate::val::{Bits, Val};

/// An observable event: a call to an external, side-effecting function.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Event {
    /// Callee symbol name.
    pub callee: String,
    /// Argument values at the call.
    pub args: Vec<Val>,
    /// The (non-deterministically chosen) return value the environment
    /// produced, if the callee returns one. Pairing behaviors on this
    /// value makes refinement sensitive to how the program *reacts* to
    /// each possible environment.
    pub ret: Option<Val>,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "call @{}(", self.callee)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")?;
        if let Some(r) = &self.ret {
            write!(f, " -> {r}")?;
        }
        Ok(())
    }
}

/// One complete behavior of a function on a given input.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Outcome {
    /// The execution triggered immediate undefined behavior.
    Ub,
    /// The execution returned.
    Ret {
        /// Returned value (`None` for `void`).
        val: Option<Val>,
        /// Final memory contents.
        mem: Bits,
        /// External calls made, in order.
        trace: Vec<Event>,
    },
}

impl Outcome {
    /// Returns `true` for the UB outcome.
    pub fn is_ub(&self) -> bool {
        matches!(self, Outcome::Ub)
    }

    /// The returned value for `Ret` outcomes.
    pub fn ret_val(&self) -> Option<&Val> {
        match self {
            Outcome::Ret { val, .. } => val.as_ref(),
            Outcome::Ub => None,
        }
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Ub => write!(f, "UB"),
            Outcome::Ret { val, trace, .. } => {
                match val {
                    Some(v) => write!(f, "ret {v}")?,
                    None => write!(f, "ret void")?,
                }
                for e in trace {
                    write!(f, "; {e}")?;
                }
                Ok(())
            }
        }
    }
}

/// The set of all behaviors a function can exhibit on one input.
///
/// Internally a sorted, deduplicated `Vec` rather than a tree: a
/// campaign retains millions of these, almost all holding one or two
/// outcomes, and a vector stores exactly that many elements in one
/// right-sized allocation where a tree node would reserve a full
/// fanout. Iteration order is ascending [`Ord`] order, identical to
/// the `BTreeSet` this replaced.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct OutcomeSet {
    /// Sorted, deduplicated outcomes.
    outcomes: Vec<Outcome>,
}

impl OutcomeSet {
    /// The empty set.
    pub fn new() -> OutcomeSet {
        OutcomeSet::default()
    }

    /// Inserts an outcome.
    pub fn insert(&mut self, o: Outcome) {
        if let Err(pos) = self.outcomes.binary_search(&o) {
            self.outcomes.insert(pos, o);
        }
    }

    /// Adopts an already strictly-sorted vector without re-sorting —
    /// for producers (the bit-sliced evaluator) that emit outcomes in
    /// ascending order and would otherwise pay a binary-search insert
    /// per element.
    pub(crate) fn from_sorted(outcomes: Vec<Outcome>) -> OutcomeSet {
        debug_assert!(
            outcomes.windows(2).all(|w| w[0] < w[1]),
            "from_sorted requires strictly ascending outcomes"
        );
        OutcomeSet { outcomes }
    }

    /// Returns `true` if UB is a possible behavior — in which case
    /// *every* target behavior refines this input (UB grants the
    /// implementation full freedom).
    pub fn may_ub(&self) -> bool {
        // `Ub` is the minimum of the outcome order, so a sorted set
        // can only hold it in front.
        matches!(self.outcomes.first(), Some(Outcome::Ub))
    }

    /// Number of distinct behaviors.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Returns `true` if no behavior was recorded (an execution error,
    /// never a legal result of enumeration).
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Iterates the outcomes in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = &Outcome> {
        self.outcomes.iter()
    }
}

impl fmt::Display for OutcomeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, o) in self.outcomes.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{o}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<Outcome> for OutcomeSet {
    fn from_iter<I: IntoIterator<Item = Outcome>>(iter: I) -> OutcomeSet {
        let mut outcomes: Vec<Outcome> = iter.into_iter().collect();
        outcomes.sort_unstable();
        outcomes.dedup();
        OutcomeSet { outcomes }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ret(v: Val) -> Outcome {
        Outcome::Ret {
            val: Some(v),
            mem: Vec::new(),
            trace: Vec::new(),
        }
    }

    #[test]
    fn dedup_and_order() {
        let mut s = OutcomeSet::new();
        s.insert(ret(Val::int(8, 2)));
        s.insert(ret(Val::int(8, 1)));
        s.insert(ret(Val::int(8, 2)));
        assert_eq!(s.len(), 2);
        let v: Vec<_> = s.iter().cloned().collect();
        assert_eq!(v[0], ret(Val::int(8, 1)));
    }

    #[test]
    fn may_ub() {
        let mut s = OutcomeSet::new();
        assert!(!s.may_ub());
        s.insert(Outcome::Ub);
        assert!(s.may_ub());
    }

    #[test]
    fn display_is_informative() {
        let o = Outcome::Ret {
            val: Some(Val::int(8, 3)),
            mem: Vec::new(),
            trace: vec![Event {
                callee: "use".into(),
                args: vec![Val::int(8, 1)],
                ret: None,
            }],
        };
        assert_eq!(o.to_string(), "ret i8 3; call @use(i8 1)");
        assert_eq!(Outcome::Ub.to_string(), "UB");
    }
}
