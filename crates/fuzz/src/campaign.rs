//! Sharded, work-stealing parallel validation campaigns.
//!
//! The §6 methodology — generate millions of tiny functions, optimize
//! each, check refinement — is embarrassingly parallel: every function
//! is validated independently. [`Campaign`] is the engine that
//! exploits this. A campaign splits the corpus into fixed-size *shards*
//! of consecutive function indices; workers (scoped threads) claim
//! shards off a shared atomic counter, so fast workers steal work that
//! slow workers never reach. All workers share one
//! [`OutcomeCache`], so each distinct
//! (canonical function, semantics) pair is enumerated once per
//! campaign, no matter which worker sees it first.
//!
//! ## Determinism
//!
//! A campaign's verdicts are a pure function of (corpus, seed, check
//! options): the same campaign produces the *same*
//! [`ValidationReport`] — byte-identical violations in the same order —
//! at any worker count. Two mechanisms guarantee this:
//!
//! * random corpora derive each function's RNG from its global index
//!   ([`random_functions_range`]),
//!   so which worker generates function *i* is irrelevant;
//! * every [`Violation`] carries its global index, and the merge step
//!   sorts by it, erasing shard-completion order.
//!
//! Only the wall-clock numbers in [`CampaignStats`] (and anything cut
//! off by a [`deadline`](Campaign::with_deadline)) vary between runs.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use frost_core::{Engine, FastHashSet, OutcomeCache, Semantics};
use frost_ir::{function_to_string, Function, FunctionKey, KeyDigest, Module};
use frost_refine::{check_refinement_cached_policy, CheckOptions, CheckPolicy, CheckResult};
use frost_telemetry::{Counter, Gauge, Histogram};

use crate::checkpoint::CampaignCheckpoint;
use crate::gen::{random_functions_range, ExhaustiveFunctions, GenConfig};
use crate::validate::{ValidationReport, Violation};

/// The engine's process-wide telemetry (see docs/OBSERVABILITY.md):
/// always-on verdict counters under `frost.fuzz.campaign.*`, the
/// shard-claim latency histogram, and the skip-reason tallies. Handles
/// are resolved once per process.
struct CampaignCounters {
    runs: &'static Counter,
    checked: &'static Counter,
    changed: &'static Counter,
    refined: &'static Counter,
    violations: &'static Counter,
    inconclusive: &'static Counter,
    shards: &'static Counter,
    skip_deadline_fns: &'static Counter,
    skip_budget: &'static Counter,
    skip_dedup: &'static Counter,
    skip_stride: &'static Counter,
    seen_peak: &'static Gauge,
    resumes: &'static Counter,
    claim_ns: &'static Histogram,
}

fn campaign_counters() -> &'static CampaignCounters {
    static COUNTERS: OnceLock<CampaignCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| CampaignCounters {
        runs: frost_telemetry::counter("frost.fuzz.campaign.runs"),
        checked: frost_telemetry::counter("frost.fuzz.campaign.checked"),
        changed: frost_telemetry::counter("frost.fuzz.campaign.changed"),
        refined: frost_telemetry::counter("frost.fuzz.campaign.refined"),
        violations: frost_telemetry::counter("frost.fuzz.campaign.violations"),
        inconclusive: frost_telemetry::counter("frost.fuzz.campaign.inconclusive"),
        shards: frost_telemetry::counter("frost.fuzz.campaign.shards"),
        skip_deadline_fns: frost_telemetry::counter("frost.fuzz.campaign.skip.deadline_fns"),
        skip_budget: frost_telemetry::counter("frost.fuzz.campaign.skip.budget"),
        skip_dedup: frost_telemetry::counter("frost.fuzz.campaign.skip.dedup"),
        skip_stride: frost_telemetry::counter("frost.fuzz.campaign.skip.stride"),
        seen_peak: frost_telemetry::gauge("frost.fuzz.campaign.seen_peak"),
        resumes: frost_telemetry::counter("frost.fuzz.campaign.resumes"),
        claim_ns: frost_telemetry::histogram("frost.fuzz.campaign.claim_ns"),
    })
}

/// Wall-clock statistics of a finished campaign, folded into its
/// [`ValidationReport`]. Unlike the verdict counters these are *not*
/// deterministic — they describe one particular run.
#[derive(Clone, Debug, Default)]
pub struct CampaignStats {
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock duration of the campaign.
    pub wall: Duration,
    /// Functions validated per second of wall-clock time.
    pub functions_per_sec: f64,
    /// Outcome-cache lookups answered from the table.
    pub cache_hits: u64,
    /// Outcome-cache lookups that had to enumerate.
    pub cache_misses: u64,
    /// Distinct (function, semantics) entries the cache ended with.
    pub cache_entries: usize,
    /// `true` if the corpus was truncated by [`Campaign::with_budget`].
    pub budget_hit: bool,
    /// `true` if the [`Campaign::with_deadline`] expired before the
    /// corpus was exhausted.
    pub deadline_hit: bool,
    /// Functions left unchecked when the deadline expired.
    pub skipped: usize,
}

impl CampaignStats {
    /// `hits / (hits + misses)`, or 0 when the cache was off or unused.
    pub fn cache_hit_rate(&self) -> f64 {
        let (h, m) = (self.cache_hits as f64, self.cache_misses as f64);
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

/// The boxed callback installed by [`Campaign::with_observer`].
pub type ProgressObserver = Box<dyn Fn(&Progress) + Send + Sync>;

/// A live snapshot of a running campaign, handed to the observer
/// installed with [`Campaign::with_observer`] after each completed
/// shard.
#[derive(Clone, Copy, Debug)]
pub struct Progress {
    /// Functions validated so far.
    pub checked: usize,
    /// Total functions the campaign will validate.
    pub total: usize,
    /// Functions the transform changed, so far.
    pub changed: usize,
    /// Refinements verified, so far.
    pub refined: usize,
    /// Violations found, so far.
    pub violations: usize,
    /// Inconclusive checks, so far.
    pub inconclusive: usize,
    /// Wall-clock time since the campaign started.
    pub elapsed: Duration,
    /// Throughput so far, in functions per second.
    pub functions_per_sec: f64,
    /// Outcome-cache hit rate so far.
    pub cache_hit_rate: f64,
}

/// A configured validation campaign: the parallel, cached successor of
/// the sequential `validate_transform` loop.
///
/// ```
/// use frost_core::Semantics;
/// use frost_fuzz::{Campaign, GenConfig};
/// use frost_opt::{o2_pipeline, PipelineMode};
///
/// let pm = o2_pipeline(PipelineMode::Fixed);
/// let report = Campaign::new(Semantics::proposed())
///     .with_workers(2)
///     .run_random(&GenConfig::arithmetic(2), 42, 40, |m| {
///         pm.run(m);
///     });
/// assert!(report.is_clean(), "{report}");
/// assert_eq!(report.total, 40);
/// ```
pub struct Campaign {
    opts: CheckOptions,
    workers: usize,
    shard_size: usize,
    budget: Option<usize>,
    deadline: Option<Duration>,
    observer: Option<ProgressObserver>,
    dedup: bool,
    /// `(shard_id, shards)` — the residue class of the exhaustive walk
    /// this process owns. `(0, 1)` means the whole space.
    process_shard: (usize, usize),
}

impl Campaign {
    /// A campaign checking source and target under `sem`, with
    /// auto-detected worker count, shards of 64 functions, no budget
    /// and no deadline.
    pub fn new(sem: Semantics) -> Campaign {
        Campaign::with_options(CheckOptions::new(sem))
    }

    /// A campaign with fully explicit check options (differing
    /// source/target semantics, custom limits or input enumeration).
    pub fn with_options(opts: CheckOptions) -> Campaign {
        Campaign {
            opts,
            workers: 0,
            shard_size: 64,
            budget: None,
            deadline: None,
            observer: None,
            dedup: true,
            process_shard: (0, 1),
        }
    }

    /// Returns this campaign with an explicit execution [`Engine`] for
    /// every refinement check (the default is [`Engine::Auto`], which
    /// bit-slices eligible all-i2 functions and falls back to the plan
    /// machine for everything else).
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Campaign {
        self.opts.engine = engine;
        self
    }

    /// Returns this campaign with a fixed worker-thread count. `0`
    /// (the default) auto-detects [`std::thread::available_parallelism`];
    /// `1` runs entirely on the calling thread.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Campaign {
        self.workers = workers;
        self
    }

    /// Returns this campaign with the given shard granularity
    /// (functions claimed per steal). Smaller shards balance better;
    /// larger shards contend less. The default is 64.
    #[must_use]
    pub fn with_shard_size(mut self, shard_size: usize) -> Campaign {
        self.shard_size = shard_size.max(1);
        self
    }

    /// Returns this campaign with an upper bound on functions checked.
    /// The corpus is truncated *before* sharding, so a budget never
    /// affects which verdicts the surviving prefix produces.
    #[must_use]
    pub fn with_budget(mut self, budget: usize) -> Campaign {
        self.budget = Some(budget);
        self
    }

    /// Returns this campaign with a wall-clock deadline. Workers stop
    /// claiming shards once it expires; [`CampaignStats::skipped`]
    /// counts what was left. Deadlines trade determinism for
    /// predictable latency — cut-off campaigns may differ between runs.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Campaign {
        self.deadline = Some(deadline);
        self
    }

    /// Returns this campaign with [`FunctionKey`] dedup on or off for
    /// [`Campaign::run_exhaustive`] (default: on). Dedup guards
    /// overlapping cross-process shards at the cost of holding one
    /// fingerprint per checked function; a single-process sweep of a
    /// duplicate-free space (every odometer position of the §6
    /// generator is structurally distinct) can turn it off to keep the
    /// checkpoint O(cursor) instead of O(space).
    #[must_use]
    pub fn with_dedup(mut self, dedup: bool) -> Campaign {
        self.dedup = dedup;
        self
    }

    /// Returns this campaign restricted to one residue class of a
    /// `K`-process exhaustive sweep: [`Campaign::run_exhaustive`]
    /// checks only the functions whose corpus position satisfies
    /// `position % shards == shard_id`, fast-forwarding the generator
    /// through foreign residues (cheap index arithmetic, no function
    /// building). `K` cooperating processes, one per shard id,
    /// partition the space exactly; their checkpoints combine with
    /// [`CampaignCheckpoint::merge`]. Each shard resumes
    /// independently, and over a duplicate-free space budgets compose:
    /// `K` shards × budget `N` check the same functions as one
    /// unsharded budget-`K·N` prefix.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or `shard_id` is out of range.
    #[must_use]
    pub fn with_process_shard(mut self, shard_id: usize, shards: usize) -> Campaign {
        assert!(
            shards >= 1 && shard_id < shards,
            "shard {shard_id}/{shards} out of range"
        );
        self.process_shard = (shard_id, shards);
        self
    }

    /// Returns this campaign with a live-progress observer, invoked by
    /// whichever worker finishes a shard (concurrently — the callback
    /// must be `Sync`).
    #[must_use]
    pub fn with_observer(
        mut self,
        observer: impl Fn(&Progress) + Send + Sync + 'static,
    ) -> Campaign {
        self.observer = Some(Box::new(observer));
        self
    }

    /// Validates `transform` over a materialized corpus (applies the
    /// budget while collecting it).
    pub fn run(
        &self,
        functions: impl IntoIterator<Item = Function>,
        transform: impl Fn(&mut Module) + Sync,
    ) -> ValidationReport {
        let mut corpus: Vec<Function> = Vec::new();
        let mut budget_hit = false;
        for f in functions {
            if self.budget == Some(corpus.len()) {
                budget_hit = true;
                break;
            }
            corpus.push(f);
        }
        self.run_indexed(corpus.len(), budget_hit, &|i| corpus[i].clone(), &transform)
    }

    /// Validates `transform` over `count` randomly generated functions
    /// without materializing the corpus: each worker generates exactly
    /// the functions of the shards it claims, from the per-index RNG
    /// stream. The verdicts equal `self.run(random_functions(cfg, seed,
    /// count), ..)` at any worker count.
    pub fn run_random(
        &self,
        cfg: &GenConfig,
        seed: u64,
        count: usize,
        transform: impl Fn(&mut Module) + Sync,
    ) -> ValidationReport {
        let checked = self.budget.map_or(count, |b| b.min(count));
        let budget_hit = checked < count;
        self.run_indexed(
            checked,
            budget_hit,
            &|i| {
                random_functions_range(cfg, seed, i, 1)
                    .pop()
                    .expect("count is 1")
            },
            &transform,
        )
    }

    /// Validates `transform` over the *entire* exhaustive function
    /// space of `cfg` — the paper's full sweep, not a sample — with
    /// structural dedup and a resumable checkpoint.
    ///
    /// The calling thread pulls `shard_size`-function chunks from the
    /// enumeration *sequentially* (aligning to this process's residue
    /// class under [`Campaign::with_process_shard`], and skipping any
    /// function whose [`FunctionKey`] digest was already checked, this
    /// run or a previous one) and feeds them to the workers through a
    /// bounded hand-off queue, so generation overlaps checking without
    /// unbounded buffering. Because both the generator walk and the
    /// dedup decisions happen on one thread, the set of functions
    /// checked — and therefore every verdict — is identical at any
    /// worker count.
    ///
    /// `resume` continues a previous sweep: the generator restarts at
    /// the checkpoint's cursor (so `fz{n}` names stay globally stable),
    /// the dedup set is re-seeded, and the returned report is
    /// **cumulative** — an interrupted-and-resumed sweep ends with
    /// byte-identical violations and tallies to an uninterrupted one.
    /// [`Campaign::with_budget`] bounds the functions checked *this
    /// call* (the natural sharding unit for cross-process sweeps);
    /// [`Campaign::with_deadline`] stops pulling new batches when it
    /// expires. Either way the returned [`CampaignCheckpoint`] points
    /// at the exact next unchecked function.
    ///
    /// Only [`ValidationReport::stats`] describes this call alone
    /// (wall-clock, throughput, cache behavior of this process).
    ///
    /// # Panics
    ///
    /// Panics if `resume` was recorded with a different `cfg` (its
    /// cursor does not fit this space) or under a different
    /// [`Campaign::with_process_shard`] identity.
    pub fn run_exhaustive(
        &self,
        cfg: &GenConfig,
        resume: Option<&CampaignCheckpoint>,
        transform: impl Fn(&mut Module) + Sync,
    ) -> (ValidationReport, CampaignCheckpoint) {
        let start = Instant::now();
        let ctrs = campaign_counters();
        ctrs.runs.incr();
        if resume.is_some() {
            ctrs.resumes.incr();
        }
        let (shard_id, shards) = self.process_shard;
        let mut generator = match resume {
            Some(cp) => {
                assert_eq!(
                    (cp.shard_id, cp.shards),
                    (shard_id, shards),
                    "checkpoint belongs to shard {}/{}, campaign is configured as {}/{}",
                    cp.shard_id,
                    cp.shards,
                    shard_id,
                    shards,
                );
                ExhaustiveFunctions::resume(cfg.clone(), &cp.cursor, cp.counter, cp.done)
                    .expect("checkpoint cursor does not fit this GenConfig")
            }
            None => ExhaustiveFunctions::new(cfg.clone()),
        };
        let mut cp = resume.cloned().unwrap_or_default();
        cp.shards = shards;
        cp.shard_id = shard_id;
        let mut seen: FastHashSet<KeyDigest> = cp.seen.iter().copied().collect();
        let est_total =
            (generator.approx_size() / shards.max(1) as u128).min(usize::MAX as u128) as usize;

        let cache = OutcomeCache::new();
        let live = LiveCounters::default();
        let chunk_cap = self.shard_size.max(1);
        let workers = self.effective_workers(usize::MAX);
        let mut run_span = frost_telemetry::span("fuzz.campaign.exhaustive")
            .field("resumed", resume.is_some())
            .field("chunk_cap", chunk_cap)
            .field("shards", shards)
            .field("shard_id", shard_id);

        let mut checked_this_run = 0usize;
        let mut budget_hit = false;
        let mut deadline_hit = false;
        let partials: Vec<Partial> = {
            // Sequential chunk pulling: the single-threaded generator
            // walk — stride alignment, then dedup — is the determinism
            // anchor. A function enters `seen` if and only if some
            // chunk will check it, so the set of functions checked is
            // identical at any worker count.
            let (generator, seen, cp) = (&mut generator, &mut seen, &mut cp);
            let (deadline_hit, budget_hit) = (&mut deadline_hit, &mut budget_hit);
            let checked = &mut checked_this_run;
            let mut pull_chunk = move || -> Vec<(usize, Function)> {
                let cap = match self.budget {
                    Some(b) => {
                        let left = b.saturating_sub(*checked);
                        if left == 0 {
                            *budget_hit = true;
                            return Vec::new();
                        }
                        chunk_cap.min(left)
                    }
                    None => chunk_cap,
                };
                let mut chunk = Vec::with_capacity(cap);
                while chunk.len() < cap {
                    if let Some(d) = self.deadline {
                        if start.elapsed() >= d {
                            *deadline_hit = true;
                            break;
                        }
                    }
                    if shards > 1 {
                        // Self-align to this process's residue class:
                        // jump over positions owned by other shards.
                        let stride = shards as u64;
                        // NB: explicit deref — on `&mut _` a bare
                        // `.position()` resolves to `Iterator::position`.
                        let pos = (*generator).position();
                        let ahead = (shard_id as u64 + stride - pos % stride) % stride;
                        if ahead > 0 {
                            generator.fast_forward(ahead);
                            ctrs.skip_stride.add(ahead);
                        }
                    }
                    let index = (*generator).position() as usize;
                    let Some(f) = generator.next() else { break };
                    if self.dedup {
                        let digest = FunctionKey::of(&f).digest();
                        if !seen.insert(digest) {
                            cp.dedup_skips += 1;
                            ctrs.skip_dedup.incr();
                            continue;
                        }
                        cp.seen.push(digest);
                    }
                    chunk.push((index, f));
                }
                *checked += chunk.len();
                chunk
            };
            // Exhaustive sources are transient: the odometer never
            // revisits a shape, so caching source enumerations would
            // grow the campaign's working set with the space instead
            // of the (tiny) set of canonical target forms.
            let policy = CheckPolicy {
                transient_src: true,
            };
            let run_chunk = |chunk: Vec<(usize, Function)>, p: &mut Partial| {
                ctrs.shards.incr();
                for (index, f) in chunk {
                    self.check_fn(index, f, &transform, &cache, policy, p, &live, ctrs);
                }
                if let Some(obs) = &self.observer {
                    obs(&live.snapshot(est_total, start, &cache));
                }
            };
            if workers <= 1 {
                let mut p = Partial::default();
                loop {
                    let chunk = pull_chunk();
                    if chunk.is_empty() {
                        break;
                    }
                    run_chunk(chunk, &mut p);
                }
                vec![p]
            } else {
                // Generation overlaps checking: workers drain a
                // bounded hand-off queue while the calling thread
                // keeps pulling, so neither side buffers more than
                // `2 × workers` chunks ahead.
                let queue: HandoffQueue<Vec<(usize, Function)>> = HandoffQueue::new(workers * 2);
                std::thread::scope(|s| {
                    let handles: Vec<_> = (0..workers)
                        .map(|_| {
                            s.spawn(|| {
                                let mut p = Partial::default();
                                while let Some(chunk) = queue.pop() {
                                    run_chunk(chunk, &mut p);
                                }
                                p
                            })
                        })
                        .collect();
                    loop {
                        let chunk = pull_chunk();
                        if chunk.is_empty() {
                            break;
                        }
                        queue.push(chunk);
                    }
                    queue.close();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("validation worker panicked"))
                        .collect()
                })
            }
        };
        for p in partials {
            cp.total += p.total;
            cp.changed += p.changed;
            cp.refined += p.refined;
            cp.inconclusive += p.inconclusive;
            cp.violations.extend(p.violations);
        }

        // Erase chunk-completion order; cross-run appends are already
        // index-monotone, so this also keeps resumed reports canonical.
        cp.violations.sort_by_key(|v| v.index);
        // Canonical artifact order: equal dedup sets serialize
        // byte-identically no matter how the walk interleaved.
        cp.seen.sort_unstable();
        cp.seen_peak = cp.seen_peak.max(seen.len());
        ctrs.seen_peak.record_max(seen.len() as u64);
        let (cursor, counter, done) = generator.cursor();
        cp.cursor = cursor;
        cp.counter = counter;
        cp.done = done;
        let budget_hit = budget_hit && !done;
        if budget_hit {
            ctrs.skip_budget.incr();
        }
        run_span.set("checked", checked_this_run);
        run_span.set("violations", cp.violations.len());
        run_span.set("done", done);
        drop(run_span);

        let wall = start.elapsed();
        let secs = wall.as_secs_f64();
        let report = ValidationReport {
            total: cp.total,
            changed: cp.changed,
            refined: cp.refined,
            inconclusive: cp.inconclusive,
            violations: cp.violations.clone(),
            stats: CampaignStats {
                workers: self.effective_workers(usize::MAX),
                wall,
                functions_per_sec: if secs > 0.0 {
                    checked_this_run as f64 / secs
                } else {
                    0.0
                },
                cache_hits: cache.hits(),
                cache_misses: cache.misses(),
                cache_entries: cache.len(),
                budget_hit,
                deadline_hit,
                skipped: 0,
            },
        };
        (report, cp)
    }

    fn run_indexed(
        &self,
        count: usize,
        budget_hit: bool,
        make: &(impl Fn(usize) -> Function + Sync),
        transform: &(impl Fn(&mut Module) + Sync),
    ) -> ValidationReport {
        let start = Instant::now();
        let num_shards = count.div_ceil(self.shard_size.max(1));
        let workers = self.effective_workers(num_shards);
        let cache = OutcomeCache::new();
        let next_shard = AtomicUsize::new(0);
        let deadline_expired = AtomicBool::new(false);
        let live = LiveCounters::default();
        let ctrs = campaign_counters();
        ctrs.runs.incr();
        let mut run_span = frost_telemetry::span("fuzz.campaign.run")
            .field("count", count)
            .field("shards", num_shards)
            .field("workers", workers);

        let work = || {
            let mut p = Partial::default();
            loop {
                let claim_start = Instant::now();
                if let Some(d) = self.deadline {
                    if start.elapsed() >= d {
                        deadline_expired.store(true, Ordering::Relaxed);
                        break;
                    }
                }
                let shard = next_shard.fetch_add(1, Ordering::Relaxed);
                if shard >= num_shards {
                    break;
                }
                let claim_ns = claim_start.elapsed().as_nanos() as u64;
                ctrs.shards.incr();
                ctrs.claim_ns.record(claim_ns);
                let lo = shard * self.shard_size;
                let hi = (lo + self.shard_size).min(count);
                {
                    let _shard_span = frost_telemetry::span("fuzz.campaign.shard")
                        .field("shard", shard)
                        .field("lo", lo)
                        .field("hi", hi)
                        .field("claim_ns", claim_ns);
                    for i in lo..hi {
                        self.check_one(i, make, transform, &cache, &mut p, &live, ctrs);
                    }
                }
                if let Some(obs) = &self.observer {
                    obs(&live.snapshot(count, start, &cache));
                }
            }
            p
        };

        let partials: Vec<Partial> = if workers <= 1 {
            vec![work()]
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers).map(|_| s.spawn(work)).collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("validation worker panicked"))
                    .collect()
            })
        };

        let mut report = ValidationReport::default();
        for p in partials {
            report.total += p.total;
            report.changed += p.changed;
            report.refined += p.refined;
            report.inconclusive += p.inconclusive;
            report.violations.extend(p.violations);
        }
        // Erase shard-completion order: verdicts come out in corpus
        // order regardless of which worker produced them.
        report.violations.sort_by_key(|v| v.index);

        let deadline_hit = deadline_expired.load(Ordering::Relaxed);
        let skipped = count - report.total;
        if deadline_hit {
            ctrs.skip_deadline_fns.add(skipped as u64);
        }
        if budget_hit {
            ctrs.skip_budget.incr();
        }
        run_span.set("checked", report.total);
        run_span.set("violations", report.violations.len());
        run_span.set("deadline_hit", deadline_hit);
        drop(run_span);

        let wall = start.elapsed();
        let secs = wall.as_secs_f64();
        report.stats = CampaignStats {
            workers,
            wall,
            functions_per_sec: if secs > 0.0 {
                report.total as f64 / secs
            } else {
                0.0
            },
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            cache_entries: cache.len(),
            budget_hit,
            deadline_hit,
            skipped,
        };
        report
    }

    #[allow(clippy::too_many_arguments)]
    fn check_one(
        &self,
        index: usize,
        make: &(impl Fn(usize) -> Function + Sync),
        transform: &(impl Fn(&mut Module) + Sync),
        cache: &OutcomeCache,
        p: &mut Partial,
        live: &LiveCounters,
        ctrs: &CampaignCounters,
    ) {
        let f = make(index);
        self.check_fn(
            index,
            f,
            transform,
            cache,
            CheckPolicy::default(),
            p,
            live,
            ctrs,
        );
    }

    /// Checks one already-generated function; the shared verdict path
    /// of [`check_one`](Campaign::check_one) and
    /// [`run_exhaustive`](Campaign::run_exhaustive).
    #[allow(clippy::too_many_arguments)]
    fn check_fn(
        &self,
        index: usize,
        f: Function,
        transform: &(impl Fn(&mut Module) + Sync),
        cache: &OutcomeCache,
        policy: CheckPolicy,
        p: &mut Partial,
        live: &LiveCounters,
        ctrs: &CampaignCounters,
    ) {
        let name = f.name.clone();
        let mut before = Module::new();
        before.functions.push(f);
        let mut after = before.clone();
        transform(&mut after);

        p.total += 1;
        live.checked.fetch_add(1, Ordering::Relaxed);
        ctrs.checked.incr();
        if after != before {
            p.changed += 1;
            live.changed.fetch_add(1, Ordering::Relaxed);
            ctrs.changed.incr();
        }
        match check_refinement_cached_policy(
            &before, &name, &after, &name, &self.opts, cache, policy,
        ) {
            CheckResult::Refines => {
                p.refined += 1;
                live.refined.fetch_add(1, Ordering::Relaxed);
                ctrs.refined.incr();
            }
            CheckResult::CounterExample(ce) => {
                live.violations.fetch_add(1, Ordering::Relaxed);
                ctrs.violations.incr();
                p.violations.push(Violation {
                    index,
                    before: function_to_string(before.function(&name).expect("exists")),
                    after: function_to_string(after.function(&name).expect("exists")),
                    counterexample: ce.to_string(),
                });
            }
            CheckResult::Inconclusive(_) => {
                p.inconclusive += 1;
                live.inconclusive.fetch_add(1, Ordering::Relaxed);
                ctrs.inconclusive.incr();
            }
        }
    }

    fn effective_workers(&self, num_shards: usize) -> usize {
        let requested = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.workers
        };
        requested.clamp(1, num_shards.max(1))
    }
}

/// A bounded single-producer hand-off queue: the generator thread
/// blocks once `cap` chunks are in flight, workers block while it is
/// empty, and [`HandoffQueue::close`] drains the remainder and then
/// releases everyone. Bounding the queue keeps a fast generator from
/// buffering an entire exhaustive space ahead of slow checkers.
struct HandoffQueue<T> {
    state: Mutex<HandoffState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: usize,
}

struct HandoffState<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> HandoffQueue<T> {
    fn new(cap: usize) -> HandoffQueue<T> {
        HandoffQueue {
            state: Mutex::new(HandoffState {
                items: VecDeque::with_capacity(cap.max(1)),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            cap: cap.max(1),
        }
    }

    /// Blocks until there is room, then enqueues. Producer-side only;
    /// never called after [`HandoffQueue::close`].
    fn push(&self, item: T) {
        let mut st = self.state.lock().expect("queue poisoned");
        while st.items.len() >= self.cap {
            st = self.not_full.wait(st).expect("queue poisoned");
        }
        st.items.push_back(item);
        drop(st);
        self.not_empty.notify_one();
    }

    /// Marks the stream complete: blocked poppers drain what is left
    /// and then observe the close.
    fn close(&self) {
        self.state.lock().expect("queue poisoned").closed = true;
        self.not_empty.notify_all();
    }

    /// Blocks for the next chunk; `None` once the queue is closed and
    /// empty.
    fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().expect("queue poisoned");
        loop {
            if let Some(item) = st.items.pop_front() {
                drop(st);
                self.not_full.notify_one();
                return Some(item);
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).expect("queue poisoned");
        }
    }
}

/// One worker's share of the report, merged after the join.
#[derive(Default)]
struct Partial {
    total: usize,
    changed: usize,
    refined: usize,
    inconclusive: usize,
    violations: Vec<Violation>,
}

/// Shared atomics behind the live [`Progress`] snapshots.
#[derive(Default)]
struct LiveCounters {
    checked: AtomicUsize,
    changed: AtomicUsize,
    refined: AtomicUsize,
    violations: AtomicUsize,
    inconclusive: AtomicUsize,
    _pad: AtomicU64,
}

impl LiveCounters {
    fn snapshot(&self, total: usize, start: Instant, cache: &OutcomeCache) -> Progress {
        let checked = self.checked.load(Ordering::Relaxed);
        let elapsed = start.elapsed();
        let secs = elapsed.as_secs_f64();
        let (h, m) = (cache.hits() as f64, cache.misses() as f64);
        Progress {
            checked,
            total,
            changed: self.changed.load(Ordering::Relaxed),
            refined: self.refined.load(Ordering::Relaxed),
            violations: self.violations.load(Ordering::Relaxed),
            inconclusive: self.inconclusive.load(Ordering::Relaxed),
            elapsed,
            functions_per_sec: if secs > 0.0 {
                checked as f64 / secs
            } else {
                0.0
            },
            cache_hit_rate: if h + m == 0.0 { 0.0 } else { h / (h + m) },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::enumerate_functions;
    use frost_opt::{o2_pipeline, PipelineMode};
    use std::sync::atomic::AtomicUsize;

    fn pipeline_transform(mode: PipelineMode) -> impl Fn(&mut Module) + Sync {
        let pm = o2_pipeline(mode);
        move |m: &mut Module| {
            pm.run(m);
        }
    }

    #[test]
    fn parallel_matches_sequential_on_exhaustive_corpus() {
        let cfg = GenConfig::arithmetic(2);
        let corpus: Vec<Function> = enumerate_functions(cfg).step_by(457).take(120).collect();
        let seq = Campaign::new(Semantics::proposed())
            .with_workers(1)
            .run(corpus.clone(), pipeline_transform(PipelineMode::Fixed));
        let par = Campaign::new(Semantics::proposed())
            .with_workers(4)
            .with_shard_size(8)
            .run(corpus, pipeline_transform(PipelineMode::Fixed));
        assert_eq!(seq.total, par.total);
        assert_eq!(seq.changed, par.changed);
        assert_eq!(seq.refined, par.refined);
        assert_eq!(seq.inconclusive, par.inconclusive);
        assert_eq!(seq.violations.len(), par.violations.len());
        assert_eq!(par.stats.workers, 4);
    }

    #[test]
    fn budget_truncates_deterministically() {
        let cfg = GenConfig::arithmetic(2);
        let report = Campaign::new(Semantics::proposed())
            .with_budget(25)
            .with_workers(2)
            .with_shard_size(4)
            .run_random(&cfg, 3, 100, pipeline_transform(PipelineMode::Fixed));
        assert_eq!(report.total, 25);
        assert!(report.stats.budget_hit);
        let full = Campaign::new(Semantics::proposed())
            .with_workers(2)
            .run_random(&cfg, 3, 25, pipeline_transform(PipelineMode::Fixed));
        assert!(!full.stats.budget_hit);
        assert_eq!(report.refined, full.refined);
    }

    #[test]
    fn observer_sees_monotone_progress() {
        let cfg = GenConfig::arithmetic(2);
        let calls = std::sync::Arc::new(AtomicUsize::new(0));
        let calls2 = std::sync::Arc::clone(&calls);
        let report = Campaign::new(Semantics::proposed())
            .with_workers(2)
            .with_shard_size(5)
            .with_observer(move |p: &Progress| {
                assert!(p.checked <= p.total);
                calls2.fetch_add(1, Ordering::Relaxed);
            })
            .run_random(&cfg, 11, 40, pipeline_transform(PipelineMode::Fixed));
        assert_eq!(report.total, 40);
        assert!(
            calls.load(Ordering::Relaxed) >= 40 / 5,
            "one call per shard"
        );
    }

    #[test]
    fn deadline_cuts_off_and_reports_skips() {
        let cfg = GenConfig::arithmetic(3);
        let report = Campaign::new(Semantics::proposed())
            .with_workers(2)
            .with_shard_size(1)
            .with_deadline(Duration::ZERO)
            .run_random(&cfg, 5, 50, pipeline_transform(PipelineMode::Fixed));
        assert!(report.stats.deadline_hit);
        assert_eq!(report.total + report.stats.skipped, 50);
    }

    fn tiny_undef_cfg() -> GenConfig {
        // 32 one-instruction functions over {a, b, 2, undef}: small
        // enough to sweep in tests, rich enough that the legacy
        // InstCombine pipeline produces §3.1 violations under
        // legacy-GVN semantics.
        GenConfig {
            ops: vec![frost_ir::BinOp::Mul, frost_ir::BinOp::Add],
            consts: vec![2],
            poison_const: false,
            flags: false,
            freeze: false,
            ..GenConfig::arithmetic(1)
        }
        .with_undef()
    }

    fn legacy_transform() -> impl Fn(&mut Module) + Sync {
        let pm = o2_pipeline(PipelineMode::Legacy);
        move |m: &mut Module| {
            pm.run(m);
        }
    }

    fn assert_same_verdicts(a: &ValidationReport, b: &ValidationReport) {
        assert_eq!(a.total, b.total);
        assert_eq!(a.changed, b.changed);
        assert_eq!(a.refined, b.refined);
        assert_eq!(a.inconclusive, b.inconclusive);
        assert_eq!(a.violations, b.violations);
    }

    #[test]
    fn exhaustive_sweep_is_deterministic_across_worker_counts() {
        let cfg = tiny_undef_cfg();
        let opts = CheckOptions::new(Semantics::legacy_gvn());
        let (base, base_cp) = Campaign::with_options(opts).with_workers(1).run_exhaustive(
            &cfg,
            None,
            legacy_transform(),
        );
        assert!(base.total > 0 && base_cp.done);
        assert!(!base.is_clean(), "the tiny space must surface §3.1");
        for workers in [2, 8] {
            let (r, cp) = Campaign::with_options(opts)
                .with_workers(workers)
                .with_shard_size(3)
                .run_exhaustive(&cfg, None, legacy_transform());
            assert_same_verdicts(&base, &r);
            assert_eq!(base_cp, cp, "checkpoints must agree at {workers} workers");
        }
    }

    #[test]
    fn interrupted_sweep_resumes_to_identical_final_report() {
        let cfg = tiny_undef_cfg();
        let opts = CheckOptions::new(Semantics::legacy_gvn());
        let (full, full_cp) = Campaign::with_options(opts).with_workers(2).run_exhaustive(
            &cfg,
            None,
            legacy_transform(),
        );

        // Kill after 10 functions, round-trip the checkpoint through
        // its JSONL artifact, resume to the end.
        let (partial, cp) = Campaign::with_options(opts)
            .with_workers(1)
            .with_budget(10)
            .run_exhaustive(&cfg, None, legacy_transform());
        assert_eq!(partial.total, 10);
        assert!(partial.stats.budget_hit && !cp.done);
        let dir = std::env::temp_dir().join("frost-campaign-resume-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cp.jsonl");
        cp.save_jsonl(&path).unwrap();
        let restored = CampaignCheckpoint::load_jsonl(&path).unwrap();
        assert_eq!(restored, cp);
        std::fs::remove_file(&path).ok();

        let (resumed, resumed_cp) = Campaign::with_options(opts).with_workers(8).run_exhaustive(
            &cfg,
            Some(&restored),
            legacy_transform(),
        );
        assert_same_verdicts(&full, &resumed);
        assert_eq!(full_cp, resumed_cp);
        assert!(resumed_cp.done);
    }

    #[test]
    fn rewound_cursor_skips_already_checked_functions() {
        // A checkpoint whose cursor is rewound to the start but whose
        // dedup set is intact models overlapping cross-process shards:
        // the sweep walks the space again but re-checks nothing.
        let cfg = tiny_undef_cfg();
        let opts = CheckOptions::new(Semantics::legacy_gvn());
        let (full, cp) = Campaign::with_options(opts).with_workers(1).run_exhaustive(
            &cfg,
            None,
            legacy_transform(),
        );
        let rewound = CampaignCheckpoint {
            cursor: Vec::new(),
            counter: 0,
            done: false,
            ..cp.clone()
        };
        let rewound = CampaignCheckpoint {
            cursor: ExhaustiveFunctions::new(cfg.clone()).cursor().0,
            ..rewound
        };
        let (again, cp2) = Campaign::with_options(opts).with_workers(1).run_exhaustive(
            &cfg,
            Some(&rewound),
            legacy_transform(),
        );
        assert_same_verdicts(&full, &again);
        assert_eq!(cp2.dedup_skips, cp.dedup_skips + full.total);
        assert_eq!(cp2.seen, cp.seen);
    }

    #[test]
    fn campaign_cache_sees_redundant_corpus() {
        // An identical source/target pair costs exactly one cache
        // lookup (the checker's identity fast path), so a corpus that
        // repeats every function must answer the second round entirely
        // from the cache.
        let cfg = GenConfig::arithmetic(1);
        let mut corpus: Vec<Function> = random_functions_range(&cfg, 9, 0, 15);
        corpus.extend(random_functions_range(&cfg, 9, 0, 15));
        let report = Campaign::new(Semantics::proposed())
            .with_workers(1)
            .run(corpus, |_m| {});
        assert_eq!(report.changed, 0);
        assert_eq!(report.total, 30);
        assert!(
            report.stats.cache_hits >= 15,
            "the repeated half must hit: {:?}",
            report.stats
        );
        assert!(report.stats.cache_hit_rate() > 0.4);
    }
}
