//! Sharded, work-stealing parallel validation campaigns.
//!
//! The §6 methodology — generate millions of tiny functions, optimize
//! each, check refinement — is embarrassingly parallel: every function
//! is validated independently. [`Campaign`] is the engine that
//! exploits this. A campaign splits the corpus into fixed-size *shards*
//! of consecutive function indices; workers (scoped threads) claim
//! shards off a shared atomic counter, so fast workers steal work that
//! slow workers never reach. All workers share one
//! [`OutcomeCache`], so each distinct
//! (canonical function, semantics) pair is enumerated once per
//! campaign, no matter which worker sees it first.
//!
//! ## Determinism
//!
//! A campaign's verdicts are a pure function of (corpus, seed, check
//! options): the same campaign produces the *same*
//! [`ValidationReport`] — byte-identical violations in the same order —
//! at any worker count. Two mechanisms guarantee this:
//!
//! * random corpora derive each function's RNG from its global index
//!   ([`random_functions_range`]),
//!   so which worker generates function *i* is irrelevant;
//! * every [`Violation`] carries its global index, and the merge step
//!   sorts by it, erasing shard-completion order.
//!
//! Only the wall-clock numbers in [`CampaignStats`] (and anything cut
//! off by a [`deadline`](Campaign::with_deadline)) vary between runs.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use frost_core::{OutcomeCache, Semantics};
use frost_ir::{function_to_string, Function, Module};
use frost_refine::{check_refinement_cached, CheckOptions, CheckResult};
use frost_telemetry::{Counter, Histogram};

use crate::gen::{random_functions_range, GenConfig};
use crate::validate::{ValidationReport, Violation};

/// The engine's process-wide telemetry (see docs/OBSERVABILITY.md):
/// always-on verdict counters under `frost.fuzz.campaign.*`, the
/// shard-claim latency histogram, and the skip-reason tallies. Handles
/// are resolved once per process.
struct CampaignCounters {
    runs: &'static Counter,
    checked: &'static Counter,
    changed: &'static Counter,
    refined: &'static Counter,
    violations: &'static Counter,
    inconclusive: &'static Counter,
    shards: &'static Counter,
    skip_deadline_fns: &'static Counter,
    skip_budget: &'static Counter,
    claim_ns: &'static Histogram,
}

fn campaign_counters() -> &'static CampaignCounters {
    static COUNTERS: OnceLock<CampaignCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| CampaignCounters {
        runs: frost_telemetry::counter("frost.fuzz.campaign.runs"),
        checked: frost_telemetry::counter("frost.fuzz.campaign.checked"),
        changed: frost_telemetry::counter("frost.fuzz.campaign.changed"),
        refined: frost_telemetry::counter("frost.fuzz.campaign.refined"),
        violations: frost_telemetry::counter("frost.fuzz.campaign.violations"),
        inconclusive: frost_telemetry::counter("frost.fuzz.campaign.inconclusive"),
        shards: frost_telemetry::counter("frost.fuzz.campaign.shards"),
        skip_deadline_fns: frost_telemetry::counter("frost.fuzz.campaign.skip.deadline_fns"),
        skip_budget: frost_telemetry::counter("frost.fuzz.campaign.skip.budget"),
        claim_ns: frost_telemetry::histogram("frost.fuzz.campaign.claim_ns"),
    })
}

/// Wall-clock statistics of a finished campaign, folded into its
/// [`ValidationReport`]. Unlike the verdict counters these are *not*
/// deterministic — they describe one particular run.
#[derive(Clone, Debug, Default)]
pub struct CampaignStats {
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock duration of the campaign.
    pub wall: Duration,
    /// Functions validated per second of wall-clock time.
    pub functions_per_sec: f64,
    /// Outcome-cache lookups answered from the table.
    pub cache_hits: u64,
    /// Outcome-cache lookups that had to enumerate.
    pub cache_misses: u64,
    /// Distinct (function, semantics) entries the cache ended with.
    pub cache_entries: usize,
    /// `true` if the corpus was truncated by [`Campaign::with_budget`].
    pub budget_hit: bool,
    /// `true` if the [`Campaign::with_deadline`] expired before the
    /// corpus was exhausted.
    pub deadline_hit: bool,
    /// Functions left unchecked when the deadline expired.
    pub skipped: usize,
}

impl CampaignStats {
    /// `hits / (hits + misses)`, or 0 when the cache was off or unused.
    pub fn cache_hit_rate(&self) -> f64 {
        let (h, m) = (self.cache_hits as f64, self.cache_misses as f64);
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

/// The boxed callback installed by [`Campaign::with_observer`].
pub type ProgressObserver = Box<dyn Fn(&Progress) + Send + Sync>;

/// A live snapshot of a running campaign, handed to the observer
/// installed with [`Campaign::with_observer`] after each completed
/// shard.
#[derive(Clone, Copy, Debug)]
pub struct Progress {
    /// Functions validated so far.
    pub checked: usize,
    /// Total functions the campaign will validate.
    pub total: usize,
    /// Functions the transform changed, so far.
    pub changed: usize,
    /// Refinements verified, so far.
    pub refined: usize,
    /// Violations found, so far.
    pub violations: usize,
    /// Inconclusive checks, so far.
    pub inconclusive: usize,
    /// Wall-clock time since the campaign started.
    pub elapsed: Duration,
    /// Throughput so far, in functions per second.
    pub functions_per_sec: f64,
    /// Outcome-cache hit rate so far.
    pub cache_hit_rate: f64,
}

/// A configured validation campaign: the parallel, cached successor of
/// the sequential `validate_transform` loop.
///
/// ```
/// use frost_core::Semantics;
/// use frost_fuzz::{Campaign, GenConfig};
/// use frost_opt::{o2_pipeline, PipelineMode};
///
/// let pm = o2_pipeline(PipelineMode::Fixed);
/// let report = Campaign::new(Semantics::proposed())
///     .with_workers(2)
///     .run_random(&GenConfig::arithmetic(2), 42, 40, |m| {
///         pm.run(m);
///     });
/// assert!(report.is_clean(), "{report}");
/// assert_eq!(report.total, 40);
/// ```
pub struct Campaign {
    opts: CheckOptions,
    workers: usize,
    shard_size: usize,
    budget: Option<usize>,
    deadline: Option<Duration>,
    observer: Option<ProgressObserver>,
}

impl Campaign {
    /// A campaign checking source and target under `sem`, with
    /// auto-detected worker count, shards of 64 functions, no budget
    /// and no deadline.
    pub fn new(sem: Semantics) -> Campaign {
        Campaign::with_options(CheckOptions::new(sem))
    }

    /// A campaign with fully explicit check options (differing
    /// source/target semantics, custom limits or input enumeration).
    pub fn with_options(opts: CheckOptions) -> Campaign {
        Campaign {
            opts,
            workers: 0,
            shard_size: 64,
            budget: None,
            deadline: None,
            observer: None,
        }
    }

    /// Returns this campaign with a fixed worker-thread count. `0`
    /// (the default) auto-detects [`std::thread::available_parallelism`];
    /// `1` runs entirely on the calling thread.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Campaign {
        self.workers = workers;
        self
    }

    /// Returns this campaign with the given shard granularity
    /// (functions claimed per steal). Smaller shards balance better;
    /// larger shards contend less. The default is 64.
    #[must_use]
    pub fn with_shard_size(mut self, shard_size: usize) -> Campaign {
        self.shard_size = shard_size.max(1);
        self
    }

    /// Returns this campaign with an upper bound on functions checked.
    /// The corpus is truncated *before* sharding, so a budget never
    /// affects which verdicts the surviving prefix produces.
    #[must_use]
    pub fn with_budget(mut self, budget: usize) -> Campaign {
        self.budget = Some(budget);
        self
    }

    /// Returns this campaign with a wall-clock deadline. Workers stop
    /// claiming shards once it expires; [`CampaignStats::skipped`]
    /// counts what was left. Deadlines trade determinism for
    /// predictable latency — cut-off campaigns may differ between runs.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Campaign {
        self.deadline = Some(deadline);
        self
    }

    /// Returns this campaign with a live-progress observer, invoked by
    /// whichever worker finishes a shard (concurrently — the callback
    /// must be `Sync`).
    #[must_use]
    pub fn with_observer(
        mut self,
        observer: impl Fn(&Progress) + Send + Sync + 'static,
    ) -> Campaign {
        self.observer = Some(Box::new(observer));
        self
    }

    /// Validates `transform` over a materialized corpus (applies the
    /// budget while collecting it).
    pub fn run(
        &self,
        functions: impl IntoIterator<Item = Function>,
        transform: impl Fn(&mut Module) + Sync,
    ) -> ValidationReport {
        let mut corpus: Vec<Function> = Vec::new();
        let mut budget_hit = false;
        for f in functions {
            if self.budget == Some(corpus.len()) {
                budget_hit = true;
                break;
            }
            corpus.push(f);
        }
        self.run_indexed(corpus.len(), budget_hit, &|i| corpus[i].clone(), &transform)
    }

    /// Validates `transform` over `count` randomly generated functions
    /// without materializing the corpus: each worker generates exactly
    /// the functions of the shards it claims, from the per-index RNG
    /// stream. The verdicts equal `self.run(random_functions(cfg, seed,
    /// count), ..)` at any worker count.
    pub fn run_random(
        &self,
        cfg: &GenConfig,
        seed: u64,
        count: usize,
        transform: impl Fn(&mut Module) + Sync,
    ) -> ValidationReport {
        let checked = self.budget.map_or(count, |b| b.min(count));
        let budget_hit = checked < count;
        self.run_indexed(
            checked,
            budget_hit,
            &|i| {
                random_functions_range(cfg, seed, i, 1)
                    .pop()
                    .expect("count is 1")
            },
            &transform,
        )
    }

    fn run_indexed(
        &self,
        count: usize,
        budget_hit: bool,
        make: &(impl Fn(usize) -> Function + Sync),
        transform: &(impl Fn(&mut Module) + Sync),
    ) -> ValidationReport {
        let start = Instant::now();
        let num_shards = count.div_ceil(self.shard_size.max(1));
        let workers = self.effective_workers(num_shards);
        let cache = OutcomeCache::new();
        let next_shard = AtomicUsize::new(0);
        let deadline_expired = AtomicBool::new(false);
        let live = LiveCounters::default();
        let ctrs = campaign_counters();
        ctrs.runs.incr();
        let mut run_span = frost_telemetry::span("fuzz.campaign.run")
            .field("count", count)
            .field("shards", num_shards)
            .field("workers", workers);

        let work = || {
            let mut p = Partial::default();
            loop {
                let claim_start = Instant::now();
                if let Some(d) = self.deadline {
                    if start.elapsed() >= d {
                        deadline_expired.store(true, Ordering::Relaxed);
                        break;
                    }
                }
                let shard = next_shard.fetch_add(1, Ordering::Relaxed);
                if shard >= num_shards {
                    break;
                }
                let claim_ns = claim_start.elapsed().as_nanos() as u64;
                ctrs.shards.incr();
                ctrs.claim_ns.record(claim_ns);
                let lo = shard * self.shard_size;
                let hi = (lo + self.shard_size).min(count);
                {
                    let _shard_span = frost_telemetry::span("fuzz.campaign.shard")
                        .field("shard", shard)
                        .field("lo", lo)
                        .field("hi", hi)
                        .field("claim_ns", claim_ns);
                    for i in lo..hi {
                        self.check_one(i, make, transform, &cache, &mut p, &live, ctrs);
                    }
                }
                if let Some(obs) = &self.observer {
                    obs(&live.snapshot(count, start, &cache));
                }
            }
            p
        };

        let partials: Vec<Partial> = if workers <= 1 {
            vec![work()]
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers).map(|_| s.spawn(work)).collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("validation worker panicked"))
                    .collect()
            })
        };

        let mut report = ValidationReport::default();
        for p in partials {
            report.total += p.total;
            report.changed += p.changed;
            report.refined += p.refined;
            report.inconclusive += p.inconclusive;
            report.violations.extend(p.violations);
        }
        // Erase shard-completion order: verdicts come out in corpus
        // order regardless of which worker produced them.
        report.violations.sort_by_key(|v| v.index);

        let deadline_hit = deadline_expired.load(Ordering::Relaxed);
        let skipped = count - report.total;
        if deadline_hit {
            ctrs.skip_deadline_fns.add(skipped as u64);
        }
        if budget_hit {
            ctrs.skip_budget.incr();
        }
        run_span.set("checked", report.total);
        run_span.set("violations", report.violations.len());
        run_span.set("deadline_hit", deadline_hit);
        drop(run_span);

        let wall = start.elapsed();
        let secs = wall.as_secs_f64();
        report.stats = CampaignStats {
            workers,
            wall,
            functions_per_sec: if secs > 0.0 {
                report.total as f64 / secs
            } else {
                0.0
            },
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            cache_entries: cache.len(),
            budget_hit,
            deadline_hit,
            skipped,
        };
        report
    }

    #[allow(clippy::too_many_arguments)]
    fn check_one(
        &self,
        index: usize,
        make: &(impl Fn(usize) -> Function + Sync),
        transform: &(impl Fn(&mut Module) + Sync),
        cache: &OutcomeCache,
        p: &mut Partial,
        live: &LiveCounters,
        ctrs: &CampaignCounters,
    ) {
        let f = make(index);
        let name = f.name.clone();
        let mut before = Module::new();
        before.functions.push(f);
        let mut after = before.clone();
        transform(&mut after);

        p.total += 1;
        live.checked.fetch_add(1, Ordering::Relaxed);
        ctrs.checked.incr();
        if after != before {
            p.changed += 1;
            live.changed.fetch_add(1, Ordering::Relaxed);
            ctrs.changed.incr();
        }
        match check_refinement_cached(&before, &name, &after, &name, &self.opts, cache) {
            CheckResult::Refines => {
                p.refined += 1;
                live.refined.fetch_add(1, Ordering::Relaxed);
                ctrs.refined.incr();
            }
            CheckResult::CounterExample(ce) => {
                live.violations.fetch_add(1, Ordering::Relaxed);
                ctrs.violations.incr();
                p.violations.push(Violation {
                    index,
                    before: function_to_string(before.function(&name).expect("exists")),
                    after: function_to_string(after.function(&name).expect("exists")),
                    counterexample: ce.to_string(),
                });
            }
            CheckResult::Inconclusive(_) => {
                p.inconclusive += 1;
                live.inconclusive.fetch_add(1, Ordering::Relaxed);
                ctrs.inconclusive.incr();
            }
        }
    }

    fn effective_workers(&self, num_shards: usize) -> usize {
        let requested = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.workers
        };
        requested.clamp(1, num_shards.max(1))
    }
}

/// One worker's share of the report, merged after the join.
#[derive(Default)]
struct Partial {
    total: usize,
    changed: usize,
    refined: usize,
    inconclusive: usize,
    violations: Vec<Violation>,
}

/// Shared atomics behind the live [`Progress`] snapshots.
#[derive(Default)]
struct LiveCounters {
    checked: AtomicUsize,
    changed: AtomicUsize,
    refined: AtomicUsize,
    violations: AtomicUsize,
    inconclusive: AtomicUsize,
    _pad: AtomicU64,
}

impl LiveCounters {
    fn snapshot(&self, total: usize, start: Instant, cache: &OutcomeCache) -> Progress {
        let checked = self.checked.load(Ordering::Relaxed);
        let elapsed = start.elapsed();
        let secs = elapsed.as_secs_f64();
        let (h, m) = (cache.hits() as f64, cache.misses() as f64);
        Progress {
            checked,
            total,
            changed: self.changed.load(Ordering::Relaxed),
            refined: self.refined.load(Ordering::Relaxed),
            violations: self.violations.load(Ordering::Relaxed),
            inconclusive: self.inconclusive.load(Ordering::Relaxed),
            elapsed,
            functions_per_sec: if secs > 0.0 {
                checked as f64 / secs
            } else {
                0.0
            },
            cache_hit_rate: if h + m == 0.0 { 0.0 } else { h / (h + m) },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::enumerate_functions;
    use frost_opt::{o2_pipeline, PipelineMode};
    use std::sync::atomic::AtomicUsize;

    fn pipeline_transform(mode: PipelineMode) -> impl Fn(&mut Module) + Sync {
        let pm = o2_pipeline(mode);
        move |m: &mut Module| {
            pm.run(m);
        }
    }

    #[test]
    fn parallel_matches_sequential_on_exhaustive_corpus() {
        let cfg = GenConfig::arithmetic(2);
        let corpus: Vec<Function> = enumerate_functions(cfg).step_by(457).take(120).collect();
        let seq = Campaign::new(Semantics::proposed())
            .with_workers(1)
            .run(corpus.clone(), pipeline_transform(PipelineMode::Fixed));
        let par = Campaign::new(Semantics::proposed())
            .with_workers(4)
            .with_shard_size(8)
            .run(corpus, pipeline_transform(PipelineMode::Fixed));
        assert_eq!(seq.total, par.total);
        assert_eq!(seq.changed, par.changed);
        assert_eq!(seq.refined, par.refined);
        assert_eq!(seq.inconclusive, par.inconclusive);
        assert_eq!(seq.violations.len(), par.violations.len());
        assert_eq!(par.stats.workers, 4);
    }

    #[test]
    fn budget_truncates_deterministically() {
        let cfg = GenConfig::arithmetic(2);
        let report = Campaign::new(Semantics::proposed())
            .with_budget(25)
            .with_workers(2)
            .with_shard_size(4)
            .run_random(&cfg, 3, 100, pipeline_transform(PipelineMode::Fixed));
        assert_eq!(report.total, 25);
        assert!(report.stats.budget_hit);
        let full = Campaign::new(Semantics::proposed())
            .with_workers(2)
            .run_random(&cfg, 3, 25, pipeline_transform(PipelineMode::Fixed));
        assert!(!full.stats.budget_hit);
        assert_eq!(report.refined, full.refined);
    }

    #[test]
    fn observer_sees_monotone_progress() {
        let cfg = GenConfig::arithmetic(2);
        let calls = std::sync::Arc::new(AtomicUsize::new(0));
        let calls2 = std::sync::Arc::clone(&calls);
        let report = Campaign::new(Semantics::proposed())
            .with_workers(2)
            .with_shard_size(5)
            .with_observer(move |p: &Progress| {
                assert!(p.checked <= p.total);
                calls2.fetch_add(1, Ordering::Relaxed);
            })
            .run_random(&cfg, 11, 40, pipeline_transform(PipelineMode::Fixed));
        assert_eq!(report.total, 40);
        assert!(
            calls.load(Ordering::Relaxed) >= 40 / 5,
            "one call per shard"
        );
    }

    #[test]
    fn deadline_cuts_off_and_reports_skips() {
        let cfg = GenConfig::arithmetic(3);
        let report = Campaign::new(Semantics::proposed())
            .with_workers(2)
            .with_shard_size(1)
            .with_deadline(Duration::ZERO)
            .run_random(&cfg, 5, 50, pipeline_transform(PipelineMode::Fixed));
        assert!(report.stats.deadline_hit);
        assert_eq!(report.total + report.stats.skipped, 50);
    }

    #[test]
    fn campaign_cache_sees_redundant_corpus() {
        // A no-op transform makes every target identical to its source:
        // the second enumeration of every pair must hit the cache.
        let cfg = GenConfig::arithmetic(1);
        let report = Campaign::new(Semantics::proposed())
            .with_workers(1)
            .run_random(&cfg, 9, 30, |_m| {});
        assert_eq!(report.changed, 0);
        assert!(
            report.stats.cache_hits >= report.total as u64,
            "identical source/target must hit: {:?}",
            report.stats
        );
        assert!(report.stats.cache_hit_rate() > 0.4);
    }
}
