//! Sharded, work-stealing parallel validation campaigns.
//!
//! The §6 methodology — generate millions of tiny functions, optimize
//! each, check refinement — is embarrassingly parallel: every function
//! is validated independently. [`Campaign`] is the engine that
//! exploits this. A campaign splits the corpus into fixed-size *shards*
//! of consecutive function indices; workers (scoped threads) claim
//! shards off a shared atomic counter, so fast workers steal work that
//! slow workers never reach. All workers share one
//! [`OutcomeCache`], so each distinct
//! (canonical function, semantics) pair is enumerated once per
//! campaign, no matter which worker sees it first.
//!
//! ## Determinism
//!
//! A campaign's verdicts are a pure function of (corpus, seed, check
//! options): the same campaign produces the *same*
//! [`ValidationReport`] — byte-identical violations in the same order —
//! at any worker count. Two mechanisms guarantee this:
//!
//! * random corpora derive each function's RNG from its global index
//!   ([`random_functions_range`]),
//!   so which worker generates function *i* is irrelevant;
//! * every [`Violation`] carries its global index, and the merge step
//!   sorts by it, erasing shard-completion order.
//!
//! Only the wall-clock numbers in [`CampaignStats`] (and anything cut
//! off by a [`deadline`](Campaign::with_deadline)) vary between runs.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use frost_core::{Engine, FastHashSet, OutcomeCache, Semantics};
use frost_ir::{function_to_string, Function, FunctionKey, Module};
use frost_refine::{check_refinement_cached, CheckOptions, CheckResult};
use frost_telemetry::{Counter, Histogram};

use crate::checkpoint::CampaignCheckpoint;
use crate::gen::{random_functions_range, ExhaustiveFunctions, GenConfig};
use crate::validate::{ValidationReport, Violation};

/// The engine's process-wide telemetry (see docs/OBSERVABILITY.md):
/// always-on verdict counters under `frost.fuzz.campaign.*`, the
/// shard-claim latency histogram, and the skip-reason tallies. Handles
/// are resolved once per process.
struct CampaignCounters {
    runs: &'static Counter,
    checked: &'static Counter,
    changed: &'static Counter,
    refined: &'static Counter,
    violations: &'static Counter,
    inconclusive: &'static Counter,
    shards: &'static Counter,
    skip_deadline_fns: &'static Counter,
    skip_budget: &'static Counter,
    skip_dedup: &'static Counter,
    resumes: &'static Counter,
    claim_ns: &'static Histogram,
}

fn campaign_counters() -> &'static CampaignCounters {
    static COUNTERS: OnceLock<CampaignCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| CampaignCounters {
        runs: frost_telemetry::counter("frost.fuzz.campaign.runs"),
        checked: frost_telemetry::counter("frost.fuzz.campaign.checked"),
        changed: frost_telemetry::counter("frost.fuzz.campaign.changed"),
        refined: frost_telemetry::counter("frost.fuzz.campaign.refined"),
        violations: frost_telemetry::counter("frost.fuzz.campaign.violations"),
        inconclusive: frost_telemetry::counter("frost.fuzz.campaign.inconclusive"),
        shards: frost_telemetry::counter("frost.fuzz.campaign.shards"),
        skip_deadline_fns: frost_telemetry::counter("frost.fuzz.campaign.skip.deadline_fns"),
        skip_budget: frost_telemetry::counter("frost.fuzz.campaign.skip.budget"),
        skip_dedup: frost_telemetry::counter("frost.fuzz.campaign.skip.dedup"),
        resumes: frost_telemetry::counter("frost.fuzz.campaign.resumes"),
        claim_ns: frost_telemetry::histogram("frost.fuzz.campaign.claim_ns"),
    })
}

/// Wall-clock statistics of a finished campaign, folded into its
/// [`ValidationReport`]. Unlike the verdict counters these are *not*
/// deterministic — they describe one particular run.
#[derive(Clone, Debug, Default)]
pub struct CampaignStats {
    /// Worker threads used.
    pub workers: usize,
    /// Wall-clock duration of the campaign.
    pub wall: Duration,
    /// Functions validated per second of wall-clock time.
    pub functions_per_sec: f64,
    /// Outcome-cache lookups answered from the table.
    pub cache_hits: u64,
    /// Outcome-cache lookups that had to enumerate.
    pub cache_misses: u64,
    /// Distinct (function, semantics) entries the cache ended with.
    pub cache_entries: usize,
    /// `true` if the corpus was truncated by [`Campaign::with_budget`].
    pub budget_hit: bool,
    /// `true` if the [`Campaign::with_deadline`] expired before the
    /// corpus was exhausted.
    pub deadline_hit: bool,
    /// Functions left unchecked when the deadline expired.
    pub skipped: usize,
}

impl CampaignStats {
    /// `hits / (hits + misses)`, or 0 when the cache was off or unused.
    pub fn cache_hit_rate(&self) -> f64 {
        let (h, m) = (self.cache_hits as f64, self.cache_misses as f64);
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }
}

/// The boxed callback installed by [`Campaign::with_observer`].
pub type ProgressObserver = Box<dyn Fn(&Progress) + Send + Sync>;

/// A live snapshot of a running campaign, handed to the observer
/// installed with [`Campaign::with_observer`] after each completed
/// shard.
#[derive(Clone, Copy, Debug)]
pub struct Progress {
    /// Functions validated so far.
    pub checked: usize,
    /// Total functions the campaign will validate.
    pub total: usize,
    /// Functions the transform changed, so far.
    pub changed: usize,
    /// Refinements verified, so far.
    pub refined: usize,
    /// Violations found, so far.
    pub violations: usize,
    /// Inconclusive checks, so far.
    pub inconclusive: usize,
    /// Wall-clock time since the campaign started.
    pub elapsed: Duration,
    /// Throughput so far, in functions per second.
    pub functions_per_sec: f64,
    /// Outcome-cache hit rate so far.
    pub cache_hit_rate: f64,
}

/// A configured validation campaign: the parallel, cached successor of
/// the sequential `validate_transform` loop.
///
/// ```
/// use frost_core::Semantics;
/// use frost_fuzz::{Campaign, GenConfig};
/// use frost_opt::{o2_pipeline, PipelineMode};
///
/// let pm = o2_pipeline(PipelineMode::Fixed);
/// let report = Campaign::new(Semantics::proposed())
///     .with_workers(2)
///     .run_random(&GenConfig::arithmetic(2), 42, 40, |m| {
///         pm.run(m);
///     });
/// assert!(report.is_clean(), "{report}");
/// assert_eq!(report.total, 40);
/// ```
pub struct Campaign {
    opts: CheckOptions,
    workers: usize,
    shard_size: usize,
    budget: Option<usize>,
    deadline: Option<Duration>,
    observer: Option<ProgressObserver>,
    dedup: bool,
}

impl Campaign {
    /// A campaign checking source and target under `sem`, with
    /// auto-detected worker count, shards of 64 functions, no budget
    /// and no deadline.
    pub fn new(sem: Semantics) -> Campaign {
        Campaign::with_options(CheckOptions::new(sem))
    }

    /// A campaign with fully explicit check options (differing
    /// source/target semantics, custom limits or input enumeration).
    pub fn with_options(opts: CheckOptions) -> Campaign {
        Campaign {
            opts,
            workers: 0,
            shard_size: 64,
            budget: None,
            deadline: None,
            observer: None,
            dedup: true,
        }
    }

    /// Returns this campaign with an explicit execution [`Engine`] for
    /// every refinement check (the default is [`Engine::Auto`], which
    /// bit-slices eligible all-i2 functions and falls back to the plan
    /// machine for everything else).
    #[must_use]
    pub fn with_engine(mut self, engine: Engine) -> Campaign {
        self.opts.engine = engine;
        self
    }

    /// Returns this campaign with a fixed worker-thread count. `0`
    /// (the default) auto-detects [`std::thread::available_parallelism`];
    /// `1` runs entirely on the calling thread.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Campaign {
        self.workers = workers;
        self
    }

    /// Returns this campaign with the given shard granularity
    /// (functions claimed per steal). Smaller shards balance better;
    /// larger shards contend less. The default is 64.
    #[must_use]
    pub fn with_shard_size(mut self, shard_size: usize) -> Campaign {
        self.shard_size = shard_size.max(1);
        self
    }

    /// Returns this campaign with an upper bound on functions checked.
    /// The corpus is truncated *before* sharding, so a budget never
    /// affects which verdicts the surviving prefix produces.
    #[must_use]
    pub fn with_budget(mut self, budget: usize) -> Campaign {
        self.budget = Some(budget);
        self
    }

    /// Returns this campaign with a wall-clock deadline. Workers stop
    /// claiming shards once it expires; [`CampaignStats::skipped`]
    /// counts what was left. Deadlines trade determinism for
    /// predictable latency — cut-off campaigns may differ between runs.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Campaign {
        self.deadline = Some(deadline);
        self
    }

    /// Returns this campaign with [`FunctionKey`] dedup on or off for
    /// [`Campaign::run_exhaustive`] (default: on). Dedup guards
    /// overlapping cross-process shards at the cost of holding one
    /// fingerprint per checked function; a single-process sweep of a
    /// duplicate-free space (every odometer position of the §6
    /// generator is structurally distinct) can turn it off to keep the
    /// checkpoint O(cursor) instead of O(space).
    #[must_use]
    pub fn with_dedup(mut self, dedup: bool) -> Campaign {
        self.dedup = dedup;
        self
    }

    /// Returns this campaign with a live-progress observer, invoked by
    /// whichever worker finishes a shard (concurrently — the callback
    /// must be `Sync`).
    #[must_use]
    pub fn with_observer(
        mut self,
        observer: impl Fn(&Progress) + Send + Sync + 'static,
    ) -> Campaign {
        self.observer = Some(Box::new(observer));
        self
    }

    /// Validates `transform` over a materialized corpus (applies the
    /// budget while collecting it).
    pub fn run(
        &self,
        functions: impl IntoIterator<Item = Function>,
        transform: impl Fn(&mut Module) + Sync,
    ) -> ValidationReport {
        let mut corpus: Vec<Function> = Vec::new();
        let mut budget_hit = false;
        for f in functions {
            if self.budget == Some(corpus.len()) {
                budget_hit = true;
                break;
            }
            corpus.push(f);
        }
        self.run_indexed(corpus.len(), budget_hit, &|i| corpus[i].clone(), &transform)
    }

    /// Validates `transform` over `count` randomly generated functions
    /// without materializing the corpus: each worker generates exactly
    /// the functions of the shards it claims, from the per-index RNG
    /// stream. The verdicts equal `self.run(random_functions(cfg, seed,
    /// count), ..)` at any worker count.
    pub fn run_random(
        &self,
        cfg: &GenConfig,
        seed: u64,
        count: usize,
        transform: impl Fn(&mut Module) + Sync,
    ) -> ValidationReport {
        let checked = self.budget.map_or(count, |b| b.min(count));
        let budget_hit = checked < count;
        self.run_indexed(
            checked,
            budget_hit,
            &|i| {
                random_functions_range(cfg, seed, i, 1)
                    .pop()
                    .expect("count is 1")
            },
            &transform,
        )
    }

    /// Validates `transform` over the *entire* exhaustive function
    /// space of `cfg` — the paper's full sweep, not a sample — with
    /// structural dedup and a resumable checkpoint.
    ///
    /// The walk is a sequence of batches: the calling thread pulls the
    /// next `workers × shard_size` functions from the enumeration
    /// *sequentially* (skipping any whose [`FunctionKey`] fingerprint
    /// was already checked, this run or a previous one), then the
    /// workers validate the batch in parallel. Because both the
    /// generator walk and the dedup decisions happen on one thread, the
    /// set of functions checked — and therefore every verdict — is
    /// identical at any worker count.
    ///
    /// `resume` continues a previous sweep: the generator restarts at
    /// the checkpoint's cursor (so `fz{n}` names stay globally stable),
    /// the dedup set is re-seeded, and the returned report is
    /// **cumulative** — an interrupted-and-resumed sweep ends with
    /// byte-identical violations and tallies to an uninterrupted one.
    /// [`Campaign::with_budget`] bounds the functions checked *this
    /// call* (the natural sharding unit for cross-process sweeps);
    /// [`Campaign::with_deadline`] stops pulling new batches when it
    /// expires. Either way the returned [`CampaignCheckpoint`] points
    /// at the exact next unchecked function.
    ///
    /// Only [`ValidationReport::stats`] describes this call alone
    /// (wall-clock, throughput, cache behavior of this process).
    ///
    /// # Panics
    ///
    /// Panics if `resume` was recorded with a different `cfg` (its
    /// cursor does not fit this space).
    pub fn run_exhaustive(
        &self,
        cfg: &GenConfig,
        resume: Option<&CampaignCheckpoint>,
        transform: impl Fn(&mut Module) + Sync,
    ) -> (ValidationReport, CampaignCheckpoint) {
        let start = Instant::now();
        let ctrs = campaign_counters();
        ctrs.runs.incr();
        if resume.is_some() {
            ctrs.resumes.incr();
        }
        let mut generator = match resume {
            Some(cp) => ExhaustiveFunctions::resume(cfg.clone(), &cp.cursor, cp.counter, cp.done)
                .expect("checkpoint cursor does not fit this GenConfig"),
            None => ExhaustiveFunctions::new(cfg.clone()),
        };
        let mut cp = resume.cloned().unwrap_or_default();
        let mut seen: FastHashSet<FunctionKey> = cp.seen.iter().cloned().collect();
        let est_total = generator.approx_size().min(usize::MAX as u128) as usize;

        let cache = OutcomeCache::new();
        let live = LiveCounters::default();
        let batch_cap = {
            let w = if self.workers == 0 {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            } else {
                self.workers
            };
            (self.shard_size.max(1) * w.max(1)).max(1)
        };
        let mut run_span = frost_telemetry::span("fuzz.campaign.exhaustive")
            .field("resumed", resume.is_some())
            .field("batch_cap", batch_cap);

        let mut checked_this_run = 0usize;
        let mut budget_hit = false;
        let mut deadline_hit = false;
        loop {
            if let Some(d) = self.deadline {
                if start.elapsed() >= d {
                    deadline_hit = true;
                    break;
                }
            }
            let cap = match self.budget {
                Some(b) => {
                    let left = b.saturating_sub(checked_this_run);
                    if left == 0 {
                        budget_hit = true;
                        break;
                    }
                    batch_cap.min(left)
                }
                None => batch_cap,
            };

            // Sequential pull: the single-threaded generator walk and
            // dedup decisions are the determinism anchor. A function
            // enters `seen` if and only if this batch will check it.
            let mut batch: Vec<(usize, Function)> = Vec::with_capacity(cap);
            while batch.len() < cap {
                if let Some(d) = self.deadline {
                    if start.elapsed() >= d {
                        deadline_hit = true;
                        break;
                    }
                }
                let index = generator.position() as usize;
                let Some(f) = generator.next() else { break };
                if self.dedup {
                    let key = FunctionKey::of(&f);
                    if !seen.insert(key.clone()) {
                        cp.dedup_skips += 1;
                        ctrs.skip_dedup.incr();
                        continue;
                    }
                    cp.seen.push(key);
                }
                batch.push((index, f));
            }
            if batch.is_empty() {
                break;
            }

            let num = batch.len();
            let workers = self.effective_workers(num.div_ceil(self.shard_size.max(1)));
            ctrs.shards.incr();
            let next_item = AtomicUsize::new(0);
            let batch_ref = &batch;
            let work = || {
                let mut p = Partial::default();
                loop {
                    let i = next_item.fetch_add(1, Ordering::Relaxed);
                    if i >= num {
                        break;
                    }
                    let (index, f) = &batch_ref[i];
                    self.check_fn(*index, f.clone(), &transform, &cache, &mut p, &live, ctrs);
                }
                p
            };
            let partials: Vec<Partial> = if workers <= 1 {
                vec![work()]
            } else {
                std::thread::scope(|s| {
                    let handles: Vec<_> = (0..workers).map(|_| s.spawn(work)).collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("validation worker panicked"))
                        .collect()
                })
            };
            for p in partials {
                cp.total += p.total;
                cp.changed += p.changed;
                cp.refined += p.refined;
                cp.inconclusive += p.inconclusive;
                cp.violations.extend(p.violations);
            }
            checked_this_run += num;
            if let Some(obs) = &self.observer {
                obs(&live.snapshot(est_total, start, &cache));
            }
            if deadline_hit {
                break;
            }
        }

        // Erase batch-completion order; cross-run appends are already
        // index-monotone, so this also keeps resumed reports canonical.
        cp.violations.sort_by_key(|v| v.index);
        let (cursor, counter, done) = generator.cursor();
        cp.cursor = cursor;
        cp.counter = counter;
        cp.done = done;
        let budget_hit = budget_hit && !done;
        if budget_hit {
            ctrs.skip_budget.incr();
        }
        run_span.set("checked", checked_this_run);
        run_span.set("violations", cp.violations.len());
        run_span.set("done", done);
        drop(run_span);

        let wall = start.elapsed();
        let secs = wall.as_secs_f64();
        let report = ValidationReport {
            total: cp.total,
            changed: cp.changed,
            refined: cp.refined,
            inconclusive: cp.inconclusive,
            violations: cp.violations.clone(),
            stats: CampaignStats {
                workers: self.effective_workers(usize::MAX),
                wall,
                functions_per_sec: if secs > 0.0 {
                    checked_this_run as f64 / secs
                } else {
                    0.0
                },
                cache_hits: cache.hits(),
                cache_misses: cache.misses(),
                cache_entries: cache.len(),
                budget_hit,
                deadline_hit,
                skipped: 0,
            },
        };
        (report, cp)
    }

    fn run_indexed(
        &self,
        count: usize,
        budget_hit: bool,
        make: &(impl Fn(usize) -> Function + Sync),
        transform: &(impl Fn(&mut Module) + Sync),
    ) -> ValidationReport {
        let start = Instant::now();
        let num_shards = count.div_ceil(self.shard_size.max(1));
        let workers = self.effective_workers(num_shards);
        let cache = OutcomeCache::new();
        let next_shard = AtomicUsize::new(0);
        let deadline_expired = AtomicBool::new(false);
        let live = LiveCounters::default();
        let ctrs = campaign_counters();
        ctrs.runs.incr();
        let mut run_span = frost_telemetry::span("fuzz.campaign.run")
            .field("count", count)
            .field("shards", num_shards)
            .field("workers", workers);

        let work = || {
            let mut p = Partial::default();
            loop {
                let claim_start = Instant::now();
                if let Some(d) = self.deadline {
                    if start.elapsed() >= d {
                        deadline_expired.store(true, Ordering::Relaxed);
                        break;
                    }
                }
                let shard = next_shard.fetch_add(1, Ordering::Relaxed);
                if shard >= num_shards {
                    break;
                }
                let claim_ns = claim_start.elapsed().as_nanos() as u64;
                ctrs.shards.incr();
                ctrs.claim_ns.record(claim_ns);
                let lo = shard * self.shard_size;
                let hi = (lo + self.shard_size).min(count);
                {
                    let _shard_span = frost_telemetry::span("fuzz.campaign.shard")
                        .field("shard", shard)
                        .field("lo", lo)
                        .field("hi", hi)
                        .field("claim_ns", claim_ns);
                    for i in lo..hi {
                        self.check_one(i, make, transform, &cache, &mut p, &live, ctrs);
                    }
                }
                if let Some(obs) = &self.observer {
                    obs(&live.snapshot(count, start, &cache));
                }
            }
            p
        };

        let partials: Vec<Partial> = if workers <= 1 {
            vec![work()]
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers).map(|_| s.spawn(work)).collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("validation worker panicked"))
                    .collect()
            })
        };

        let mut report = ValidationReport::default();
        for p in partials {
            report.total += p.total;
            report.changed += p.changed;
            report.refined += p.refined;
            report.inconclusive += p.inconclusive;
            report.violations.extend(p.violations);
        }
        // Erase shard-completion order: verdicts come out in corpus
        // order regardless of which worker produced them.
        report.violations.sort_by_key(|v| v.index);

        let deadline_hit = deadline_expired.load(Ordering::Relaxed);
        let skipped = count - report.total;
        if deadline_hit {
            ctrs.skip_deadline_fns.add(skipped as u64);
        }
        if budget_hit {
            ctrs.skip_budget.incr();
        }
        run_span.set("checked", report.total);
        run_span.set("violations", report.violations.len());
        run_span.set("deadline_hit", deadline_hit);
        drop(run_span);

        let wall = start.elapsed();
        let secs = wall.as_secs_f64();
        report.stats = CampaignStats {
            workers,
            wall,
            functions_per_sec: if secs > 0.0 {
                report.total as f64 / secs
            } else {
                0.0
            },
            cache_hits: cache.hits(),
            cache_misses: cache.misses(),
            cache_entries: cache.len(),
            budget_hit,
            deadline_hit,
            skipped,
        };
        report
    }

    #[allow(clippy::too_many_arguments)]
    fn check_one(
        &self,
        index: usize,
        make: &(impl Fn(usize) -> Function + Sync),
        transform: &(impl Fn(&mut Module) + Sync),
        cache: &OutcomeCache,
        p: &mut Partial,
        live: &LiveCounters,
        ctrs: &CampaignCounters,
    ) {
        let f = make(index);
        self.check_fn(index, f, transform, cache, p, live, ctrs);
    }

    /// Checks one already-generated function; the shared verdict path
    /// of [`check_one`](Campaign::check_one) and
    /// [`run_exhaustive`](Campaign::run_exhaustive).
    #[allow(clippy::too_many_arguments)]
    fn check_fn(
        &self,
        index: usize,
        f: Function,
        transform: &(impl Fn(&mut Module) + Sync),
        cache: &OutcomeCache,
        p: &mut Partial,
        live: &LiveCounters,
        ctrs: &CampaignCounters,
    ) {
        let name = f.name.clone();
        let mut before = Module::new();
        before.functions.push(f);
        let mut after = before.clone();
        transform(&mut after);

        p.total += 1;
        live.checked.fetch_add(1, Ordering::Relaxed);
        ctrs.checked.incr();
        if after != before {
            p.changed += 1;
            live.changed.fetch_add(1, Ordering::Relaxed);
            ctrs.changed.incr();
        }
        match check_refinement_cached(&before, &name, &after, &name, &self.opts, cache) {
            CheckResult::Refines => {
                p.refined += 1;
                live.refined.fetch_add(1, Ordering::Relaxed);
                ctrs.refined.incr();
            }
            CheckResult::CounterExample(ce) => {
                live.violations.fetch_add(1, Ordering::Relaxed);
                ctrs.violations.incr();
                p.violations.push(Violation {
                    index,
                    before: function_to_string(before.function(&name).expect("exists")),
                    after: function_to_string(after.function(&name).expect("exists")),
                    counterexample: ce.to_string(),
                });
            }
            CheckResult::Inconclusive(_) => {
                p.inconclusive += 1;
                live.inconclusive.fetch_add(1, Ordering::Relaxed);
                ctrs.inconclusive.incr();
            }
        }
    }

    fn effective_workers(&self, num_shards: usize) -> usize {
        let requested = if self.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.workers
        };
        requested.clamp(1, num_shards.max(1))
    }
}

/// One worker's share of the report, merged after the join.
#[derive(Default)]
struct Partial {
    total: usize,
    changed: usize,
    refined: usize,
    inconclusive: usize,
    violations: Vec<Violation>,
}

/// Shared atomics behind the live [`Progress`] snapshots.
#[derive(Default)]
struct LiveCounters {
    checked: AtomicUsize,
    changed: AtomicUsize,
    refined: AtomicUsize,
    violations: AtomicUsize,
    inconclusive: AtomicUsize,
    _pad: AtomicU64,
}

impl LiveCounters {
    fn snapshot(&self, total: usize, start: Instant, cache: &OutcomeCache) -> Progress {
        let checked = self.checked.load(Ordering::Relaxed);
        let elapsed = start.elapsed();
        let secs = elapsed.as_secs_f64();
        let (h, m) = (cache.hits() as f64, cache.misses() as f64);
        Progress {
            checked,
            total,
            changed: self.changed.load(Ordering::Relaxed),
            refined: self.refined.load(Ordering::Relaxed),
            violations: self.violations.load(Ordering::Relaxed),
            inconclusive: self.inconclusive.load(Ordering::Relaxed),
            elapsed,
            functions_per_sec: if secs > 0.0 {
                checked as f64 / secs
            } else {
                0.0
            },
            cache_hit_rate: if h + m == 0.0 { 0.0 } else { h / (h + m) },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::enumerate_functions;
    use frost_opt::{o2_pipeline, PipelineMode};
    use std::sync::atomic::AtomicUsize;

    fn pipeline_transform(mode: PipelineMode) -> impl Fn(&mut Module) + Sync {
        let pm = o2_pipeline(mode);
        move |m: &mut Module| {
            pm.run(m);
        }
    }

    #[test]
    fn parallel_matches_sequential_on_exhaustive_corpus() {
        let cfg = GenConfig::arithmetic(2);
        let corpus: Vec<Function> = enumerate_functions(cfg).step_by(457).take(120).collect();
        let seq = Campaign::new(Semantics::proposed())
            .with_workers(1)
            .run(corpus.clone(), pipeline_transform(PipelineMode::Fixed));
        let par = Campaign::new(Semantics::proposed())
            .with_workers(4)
            .with_shard_size(8)
            .run(corpus, pipeline_transform(PipelineMode::Fixed));
        assert_eq!(seq.total, par.total);
        assert_eq!(seq.changed, par.changed);
        assert_eq!(seq.refined, par.refined);
        assert_eq!(seq.inconclusive, par.inconclusive);
        assert_eq!(seq.violations.len(), par.violations.len());
        assert_eq!(par.stats.workers, 4);
    }

    #[test]
    fn budget_truncates_deterministically() {
        let cfg = GenConfig::arithmetic(2);
        let report = Campaign::new(Semantics::proposed())
            .with_budget(25)
            .with_workers(2)
            .with_shard_size(4)
            .run_random(&cfg, 3, 100, pipeline_transform(PipelineMode::Fixed));
        assert_eq!(report.total, 25);
        assert!(report.stats.budget_hit);
        let full = Campaign::new(Semantics::proposed())
            .with_workers(2)
            .run_random(&cfg, 3, 25, pipeline_transform(PipelineMode::Fixed));
        assert!(!full.stats.budget_hit);
        assert_eq!(report.refined, full.refined);
    }

    #[test]
    fn observer_sees_monotone_progress() {
        let cfg = GenConfig::arithmetic(2);
        let calls = std::sync::Arc::new(AtomicUsize::new(0));
        let calls2 = std::sync::Arc::clone(&calls);
        let report = Campaign::new(Semantics::proposed())
            .with_workers(2)
            .with_shard_size(5)
            .with_observer(move |p: &Progress| {
                assert!(p.checked <= p.total);
                calls2.fetch_add(1, Ordering::Relaxed);
            })
            .run_random(&cfg, 11, 40, pipeline_transform(PipelineMode::Fixed));
        assert_eq!(report.total, 40);
        assert!(
            calls.load(Ordering::Relaxed) >= 40 / 5,
            "one call per shard"
        );
    }

    #[test]
    fn deadline_cuts_off_and_reports_skips() {
        let cfg = GenConfig::arithmetic(3);
        let report = Campaign::new(Semantics::proposed())
            .with_workers(2)
            .with_shard_size(1)
            .with_deadline(Duration::ZERO)
            .run_random(&cfg, 5, 50, pipeline_transform(PipelineMode::Fixed));
        assert!(report.stats.deadline_hit);
        assert_eq!(report.total + report.stats.skipped, 50);
    }

    fn tiny_undef_cfg() -> GenConfig {
        // 32 one-instruction functions over {a, b, 2, undef}: small
        // enough to sweep in tests, rich enough that the legacy
        // InstCombine pipeline produces §3.1 violations under
        // legacy-GVN semantics.
        GenConfig {
            ops: vec![frost_ir::BinOp::Mul, frost_ir::BinOp::Add],
            consts: vec![2],
            poison_const: false,
            flags: false,
            freeze: false,
            ..GenConfig::arithmetic(1)
        }
        .with_undef()
    }

    fn legacy_transform() -> impl Fn(&mut Module) + Sync {
        let pm = o2_pipeline(PipelineMode::Legacy);
        move |m: &mut Module| {
            pm.run(m);
        }
    }

    fn assert_same_verdicts(a: &ValidationReport, b: &ValidationReport) {
        assert_eq!(a.total, b.total);
        assert_eq!(a.changed, b.changed);
        assert_eq!(a.refined, b.refined);
        assert_eq!(a.inconclusive, b.inconclusive);
        assert_eq!(a.violations, b.violations);
    }

    #[test]
    fn exhaustive_sweep_is_deterministic_across_worker_counts() {
        let cfg = tiny_undef_cfg();
        let opts = CheckOptions::new(Semantics::legacy_gvn());
        let (base, base_cp) = Campaign::with_options(opts).with_workers(1).run_exhaustive(
            &cfg,
            None,
            legacy_transform(),
        );
        assert!(base.total > 0 && base_cp.done);
        assert!(!base.is_clean(), "the tiny space must surface §3.1");
        for workers in [2, 8] {
            let (r, cp) = Campaign::with_options(opts)
                .with_workers(workers)
                .with_shard_size(3)
                .run_exhaustive(&cfg, None, legacy_transform());
            assert_same_verdicts(&base, &r);
            assert_eq!(base_cp, cp, "checkpoints must agree at {workers} workers");
        }
    }

    #[test]
    fn interrupted_sweep_resumes_to_identical_final_report() {
        let cfg = tiny_undef_cfg();
        let opts = CheckOptions::new(Semantics::legacy_gvn());
        let (full, full_cp) = Campaign::with_options(opts).with_workers(2).run_exhaustive(
            &cfg,
            None,
            legacy_transform(),
        );

        // Kill after 10 functions, round-trip the checkpoint through
        // its JSONL artifact, resume to the end.
        let (partial, cp) = Campaign::with_options(opts)
            .with_workers(1)
            .with_budget(10)
            .run_exhaustive(&cfg, None, legacy_transform());
        assert_eq!(partial.total, 10);
        assert!(partial.stats.budget_hit && !cp.done);
        let dir = std::env::temp_dir().join("frost-campaign-resume-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cp.jsonl");
        cp.save_jsonl(&path).unwrap();
        let restored = CampaignCheckpoint::load_jsonl(&path).unwrap();
        assert_eq!(restored, cp);
        std::fs::remove_file(&path).ok();

        let (resumed, resumed_cp) = Campaign::with_options(opts).with_workers(8).run_exhaustive(
            &cfg,
            Some(&restored),
            legacy_transform(),
        );
        assert_same_verdicts(&full, &resumed);
        assert_eq!(full_cp, resumed_cp);
        assert!(resumed_cp.done);
    }

    #[test]
    fn rewound_cursor_skips_already_checked_functions() {
        // A checkpoint whose cursor is rewound to the start but whose
        // dedup set is intact models overlapping cross-process shards:
        // the sweep walks the space again but re-checks nothing.
        let cfg = tiny_undef_cfg();
        let opts = CheckOptions::new(Semantics::legacy_gvn());
        let (full, cp) = Campaign::with_options(opts).with_workers(1).run_exhaustive(
            &cfg,
            None,
            legacy_transform(),
        );
        let rewound = CampaignCheckpoint {
            cursor: Vec::new(),
            counter: 0,
            done: false,
            ..cp.clone()
        };
        let rewound = CampaignCheckpoint {
            cursor: ExhaustiveFunctions::new(cfg.clone()).cursor().0,
            ..rewound
        };
        let (again, cp2) = Campaign::with_options(opts).with_workers(1).run_exhaustive(
            &cfg,
            Some(&rewound),
            legacy_transform(),
        );
        assert_same_verdicts(&full, &again);
        assert_eq!(cp2.dedup_skips, cp.dedup_skips + full.total);
        assert_eq!(cp2.seen, cp.seen);
    }

    #[test]
    fn campaign_cache_sees_redundant_corpus() {
        // A no-op transform makes every target identical to its source:
        // the second enumeration of every pair must hit the cache.
        let cfg = GenConfig::arithmetic(1);
        let report = Campaign::new(Semantics::proposed())
            .with_workers(1)
            .run_random(&cfg, 9, 30, |_m| {});
        assert_eq!(report.changed, 0);
        assert!(
            report.stats.cache_hits >= report.total as u64,
            "identical source/target must hit: {:?}",
            report.stats
        );
        assert!(report.stats.cache_hit_rate() > 0.4);
    }
}
