//! Durable campaign checkpoints: the state a killed exhaustive sweep
//! needs to continue exactly where it stopped.
//!
//! A [`CampaignCheckpoint`] captures three things:
//!
//! * the **generator cursor** — the odometer indices, counter and done
//!   flag of [`ExhaustiveFunctions`](crate::ExhaustiveFunctions), so a
//!   resumed sweep regenerates the *next* unchecked function (function
//!   names `fz{counter}` stay stable across restarts);
//! * the **cumulative verdicts** — tallies plus every
//!   [`Violation`] found so far, so the final report of an interrupted
//!   and resumed sweep is byte-identical to an uninterrupted one;
//! * the **dedup set** — compact [`KeyDigest`] fingerprints of every
//!   function already checked (128 bits each instead of a full
//!   [`FunctionKey`] word encoding), so structural duplicates are
//!   skipped exactly once per sweep even across process boundaries,
//!   at bounded memory;
//! * the **shard identity** — which residue class of a `K`-process
//!   campaign this checkpoint belongs to, so
//!   [`CampaignCheckpoint::merge`] can refuse to combine mismatched or
//!   incomplete shard sets.
//!
//! ## JSONL schema (the checkpoint contract)
//!
//! One JSON object per line, discriminated by `"kind"`:
//!
//! * line 1 — the header: `kind:"checkpoint"`, `version:2`, the cursor
//!   (`cursor`/`counter`/`done`), the shard identity
//!   (`shards`/`shard_id`), the tallies
//!   (`total`/`changed`/`refined`/`inconclusive`/`dedup_skips`), the
//!   peak dedup-set size (`seen_peak`), and the expected body line
//!   counts (`violations`/`seen`);
//! * `kind:"violation"` — one per recorded violation, carrying
//!   `index`/`before`/`after`/`counterexample`;
//! * `kind:"seen"` — one per dedup-set entry, carrying `digest` (the
//!   two `u64` halves of a [`KeyDigest`] rendered as decimal strings,
//!   since JSON numbers cannot hold a full `u64`).
//!
//! Version-1 artifacts (whose `seen` lines carry the fingerprint's raw
//! `words` and whose header lacks the shard fields) still load: the
//! words are re-digested and the shard identity defaults to the
//! single-process `1/0`.
//!
//! [`CampaignCheckpoint::from_jsonl`] validates the artifact with the
//! same hand-rolled byte-level parser pattern as
//! `frost_telemetry::validate_jsonl`: every line must parse as a flat
//! object, carry its kind's required keys, and the body counts must
//! match the header — errors name the first offending line.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use frost_ir::{FunctionKey, KeyDigest};

use crate::validate::Violation;

/// The resumable state of an exhaustive validation sweep. Produced by
/// `Campaign::run_exhaustive`, serialized with
/// [`save_jsonl`](CampaignCheckpoint::save_jsonl), restored with
/// [`load_jsonl`](CampaignCheckpoint::load_jsonl) and passed back as
/// the `resume` argument. Per-shard checkpoints of a multi-process
/// campaign combine with [`CampaignCheckpoint::merge`].
#[derive(Clone, Debug, PartialEq)]
pub struct CampaignCheckpoint {
    /// Odometer indices of the next function to generate.
    pub cursor: Vec<usize>,
    /// Generator counter of the next function (`fz{counter}`).
    pub counter: u64,
    /// `true` once the space is exhausted — resuming yields nothing.
    pub done: bool,
    /// Process-shard count of the campaign that wrote this checkpoint
    /// (`1` for a whole-space sweep).
    pub shards: usize,
    /// Which residue class (`position % shards`) this checkpoint
    /// covers.
    pub shard_id: usize,
    /// Functions checked so far (after dedup).
    pub total: usize,
    /// Functions the transform changed, so far.
    pub changed: usize,
    /// Refinements verified, so far.
    pub refined: usize,
    /// Inconclusive checks, so far.
    pub inconclusive: usize,
    /// Structural duplicates skipped by the dedup set, so far.
    pub dedup_skips: usize,
    /// Largest size the in-memory dedup set reached (for a merged
    /// checkpoint: the sum over shards — the campaign's aggregate
    /// memory bound, since shards run concurrently).
    pub seen_peak: usize,
    /// Every violation found so far, sorted by corpus index.
    pub violations: Vec<Violation>,
    /// The dedup set: compact digests of every function checked so
    /// far, sorted (order carries no meaning; sorting makes equal sets
    /// byte-identical on disk).
    pub seen: Vec<KeyDigest>,
}

impl Default for CampaignCheckpoint {
    fn default() -> CampaignCheckpoint {
        CampaignCheckpoint {
            cursor: Vec::new(),
            counter: 0,
            done: false,
            shards: 1,
            shard_id: 0,
            total: 0,
            changed: 0,
            refined: 0,
            inconclusive: 0,
            dedup_skips: 0,
            seen_peak: 0,
            violations: Vec::new(),
            seen: Vec::new(),
        }
    }
}

fn escape_json(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl CampaignCheckpoint {
    /// Renders the checkpoint as JSONL (header, violations, seen
    /// digests).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(128 + self.seen.len() * 48);
        let _ = write!(out, "{{\"kind\":\"checkpoint\",\"version\":2,\"cursor\":[");
        for (i, ix) in self.cursor.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{ix}");
        }
        let _ = writeln!(
            out,
            "],\"counter\":\"{}\",\"done\":{},\"shards\":{},\"shard_id\":{},\"total\":{},\
             \"changed\":{},\"refined\":{},\"inconclusive\":{},\"dedup_skips\":{},\
             \"seen_peak\":{},\"violations\":{},\"seen\":{}}}",
            self.counter,
            self.done,
            self.shards,
            self.shard_id,
            self.total,
            self.changed,
            self.refined,
            self.inconclusive,
            self.dedup_skips,
            self.seen_peak,
            self.violations.len(),
            self.seen.len(),
        );
        for v in &self.violations {
            let _ = write!(
                out,
                "{{\"kind\":\"violation\",\"index\":{},\"before\":\"",
                v.index
            );
            escape_json(&mut out, &v.before);
            out.push_str("\",\"after\":\"");
            escape_json(&mut out, &v.after);
            out.push_str("\",\"counterexample\":\"");
            escape_json(&mut out, &v.counterexample);
            out.push_str("\"}\n");
        }
        for d in &self.seen {
            let _ = writeln!(
                out,
                "{{\"kind\":\"seen\",\"digest\":[\"{}\",\"{}\"]}}",
                d.hash, d.verify
            );
        }
        out
    }

    /// Parses and validates a checkpoint artifact.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first offending line and why it is
    /// malformed: bad JSON, a missing or mistyped key, an unknown
    /// `kind`, or body line counts that disagree with the header.
    pub fn from_jsonl(text: &str) -> Result<CampaignCheckpoint, String> {
        let mut cp = CampaignCheckpoint::default();
        let (mut want_violations, mut want_seen) = (0usize, 0usize);
        let mut saw_header = false;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let n = lineno + 1;
            let mut p = Parser::new(line);
            let obj = p.object().map_err(|e| format!("line {n}: {e}"))?;
            p.skip_ws();
            if !p.at_end() {
                return Err(format!("line {n}: trailing garbage"));
            }
            let kind = obj.get_str("kind", n)?;
            match kind.as_str() {
                "checkpoint" => {
                    if saw_header {
                        return Err(format!("line {n}: duplicate header"));
                    }
                    saw_header = true;
                    let version = obj.get_u64("version", n)?;
                    if !(1..=2).contains(&version) {
                        return Err(format!("line {n}: unsupported version {version}"));
                    }
                    cp.cursor = obj
                        .get_array("cursor", n)?
                        .iter()
                        .map(|v| v.as_u64(n).map(|w| w as usize))
                        .collect::<Result<_, _>>()?;
                    cp.counter = obj.get_u64("counter", n)?;
                    cp.done = obj.get_bool("done", n)?;
                    if version >= 2 {
                        cp.shards = obj.get_u64("shards", n)? as usize;
                        cp.shard_id = obj.get_u64("shard_id", n)? as usize;
                        cp.seen_peak = obj.get_u64("seen_peak", n)? as usize;
                        if cp.shards == 0 || cp.shard_id >= cp.shards {
                            return Err(format!(
                                "line {n}: shard {}/{} out of range",
                                cp.shard_id, cp.shards
                            ));
                        }
                    }
                    cp.total = obj.get_u64("total", n)? as usize;
                    cp.changed = obj.get_u64("changed", n)? as usize;
                    cp.refined = obj.get_u64("refined", n)? as usize;
                    cp.inconclusive = obj.get_u64("inconclusive", n)? as usize;
                    cp.dedup_skips = obj.get_u64("dedup_skips", n)? as usize;
                    want_violations = obj.get_u64("violations", n)? as usize;
                    want_seen = obj.get_u64("seen", n)? as usize;
                }
                "violation" => {
                    if !saw_header {
                        return Err(format!("line {n}: violation before header"));
                    }
                    cp.violations.push(Violation {
                        index: obj.get_u64("index", n)? as usize,
                        before: obj.get_str("before", n)?,
                        after: obj.get_str("after", n)?,
                        counterexample: obj.get_str("counterexample", n)?,
                    });
                }
                "seen" => {
                    if !saw_header {
                        return Err(format!("line {n}: seen key before header"));
                    }
                    if obj.get("digest").is_some() {
                        let halves = obj
                            .get_array("digest", n)?
                            .iter()
                            .map(|v| v.as_u64(n))
                            .collect::<Result<Vec<u64>, _>>()?;
                        let [hash, verify] = halves[..] else {
                            return Err(format!(
                                "line {n}: digest needs exactly 2 halves, got {}",
                                halves.len()
                            ));
                        };
                        cp.seen.push(KeyDigest { hash, verify });
                    } else {
                        // Version-1 artifacts carry raw fingerprint
                        // words; re-digest them on the way in.
                        let words = obj
                            .get_array("words", n)?
                            .iter()
                            .map(|v| v.as_u64(n))
                            .collect::<Result<Vec<u64>, _>>()?;
                        cp.seen.push(FunctionKey::from_words(words).digest());
                    }
                }
                other => return Err(format!("line {n}: unknown kind '{other}'")),
            }
        }
        if !saw_header {
            return Err("missing checkpoint header".into());
        }
        if cp.violations.len() != want_violations {
            return Err(format!(
                "header promises {want_violations} violations, found {}",
                cp.violations.len()
            ));
        }
        if cp.seen.len() != want_seen {
            return Err(format!(
                "header promises {want_seen} seen keys, found {}",
                cp.seen.len()
            ));
        }
        Ok(cp)
    }

    /// Writes the checkpoint to `path` (atomically: a temp file in the
    /// same directory, then rename), so a kill mid-save leaves either
    /// the old checkpoint or the new one, never a torn file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_jsonl(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_jsonl())?;
        std::fs::rename(&tmp, path)
    }

    /// Reads and validates a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; validation failures surface as
    /// [`io::ErrorKind::InvalidData`] with the offending line in the
    /// message.
    pub fn load_jsonl(path: impl AsRef<Path>) -> io::Result<CampaignCheckpoint> {
        let text = std::fs::read_to_string(path)?;
        CampaignCheckpoint::from_jsonl(&text).map_err(io::Error::other)
    }

    /// Merges the per-shard checkpoints of a `K`-process campaign into
    /// one whole-space summary: tallies sum, violations concatenate
    /// and re-sort by corpus index, the dedup sets union, and
    /// `seen_peak` sums (shards run concurrently, so the campaign's
    /// aggregate memory bound is the sum of per-process peaks). The
    /// result is marked `shards: 1, shard_id: 0` and is `done` only
    /// when every shard is — a finished merge is byte-identical to the
    /// checkpoint of a single-process sweep of the same space.
    ///
    /// The order of `parts` does not matter.
    ///
    /// # Errors
    ///
    /// Returns a message when `parts` is not a complete, consistent
    /// shard set: empty input, disagreeing `shards` values, a part
    /// whose `shards` does not match the part count, or shard ids that
    /// are not exactly `{0, …, K-1}`.
    pub fn merge(parts: &[CampaignCheckpoint]) -> Result<CampaignCheckpoint, String> {
        let k = parts.len();
        if k == 0 {
            return Err("cannot merge zero checkpoints".into());
        }
        let mut present = vec![false; k];
        for p in parts {
            if p.shards != k {
                return Err(format!(
                    "checkpoint for shard {}/{} merged with {k} part(s)",
                    p.shard_id, p.shards
                ));
            }
            if p.shard_id >= k {
                return Err(format!("shard id {} out of range 0..{k}", p.shard_id));
            }
            if present[p.shard_id] {
                return Err(format!("duplicate checkpoint for shard {}", p.shard_id));
            }
            present[p.shard_id] = true;
        }
        // All ids in range, none duplicated, count matches: the set is
        // exactly {0, …, K-1}.
        let furthest = parts
            .iter()
            .max_by_key(|p| p.counter)
            .expect("parts is non-empty");
        let mut merged = CampaignCheckpoint {
            cursor: furthest.cursor.clone(),
            counter: furthest.counter,
            done: parts.iter().all(|p| p.done),
            ..CampaignCheckpoint::default()
        };
        for p in parts {
            merged.total += p.total;
            merged.changed += p.changed;
            merged.refined += p.refined;
            merged.inconclusive += p.inconclusive;
            merged.dedup_skips += p.dedup_skips;
            merged.seen_peak += p.seen_peak;
            merged.violations.extend(p.violations.iter().cloned());
            merged.seen.extend(p.seen.iter().copied());
        }
        merged.violations.sort_by_key(|v| v.index);
        merged.seen.sort_unstable();
        merged.seen.dedup();
        Ok(merged)
    }
}

/// One parsed value from a checkpoint line. `u64`s are carried as
/// decimal strings on the wire (JSON numbers are doubles), so
/// [`JsonValue::as_u64`] accepts both forms.
#[derive(Clone, Debug, PartialEq)]
enum JsonValue {
    Str(String),
    Num(f64),
    Bool(bool),
    Array(Vec<JsonValue>),
}

impl JsonValue {
    fn as_u64(&self, lineno: usize) -> Result<u64, String> {
        match self {
            JsonValue::Str(s) => s
                .parse::<u64>()
                .map_err(|_| format!("line {lineno}: '{s}' is not a u64")),
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Ok(*n as u64)
            }
            other => Err(format!("line {lineno}: {other:?} is not a u64")),
        }
    }
}

/// The parsed object of one line, with per-key typed accessors that
/// blame the line on failure.
struct LineObject(Vec<(String, JsonValue)>);

impl LineObject {
    fn get(&self, key: &str) -> Option<&JsonValue> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn get_str(&self, key: &str, lineno: usize) -> Result<String, String> {
        match self.get(key) {
            Some(JsonValue::Str(s)) => Ok(s.clone()),
            _ => Err(format!("line {lineno}: missing string key '{key}'")),
        }
    }

    fn get_u64(&self, key: &str, lineno: usize) -> Result<u64, String> {
        self.get(key)
            .ok_or(format!("line {lineno}: missing key '{key}'"))?
            .as_u64(lineno)
    }

    fn get_bool(&self, key: &str, lineno: usize) -> Result<bool, String> {
        match self.get(key) {
            Some(JsonValue::Bool(b)) => Ok(*b),
            _ => Err(format!("line {lineno}: missing bool key '{key}'")),
        }
    }

    fn get_array(&self, key: &str, lineno: usize) -> Result<&[JsonValue], String> {
        match self.get(key) {
            Some(JsonValue::Array(a)) => Ok(a),
            _ => Err(format!("line {lineno}: missing array key '{key}'")),
        }
    }
}

/// Byte-level JSON-line parser (same pattern as the telemetry artifact
/// validator): just enough JSON for the schema above, with byte-offset
/// error messages.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the raw bytes through.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or("truncated UTF-8 sequence")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8")?);
                    self.pos = start + len;
                }
            }
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b) if b == b'-' || b.is_ascii_digit() => {
                let start = self.pos;
                self.pos += 1;
                while self.bytes.get(self.pos).is_some_and(|b| {
                    b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-')
                }) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
                text.parse::<f64>()
                    .map(JsonValue::Num)
                    .map_err(|_| format!("bad number '{text}'"))
            }
            other => Err(format!("unexpected value start {other:?}")),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("expected '{lit}' at byte {}", self.pos))
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(out));
        }
        loop {
            out.push(self.value()?);
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(out));
                }
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<LineObject, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(LineObject(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(LineObject(fields));
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xf0 => 4,
        b if b >= 0xe0 => 3,
        _ => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CampaignCheckpoint {
        let key = FunctionKey::from_words(vec![3, u64::MAX, 0x1234_5678_9abc_def0]);
        CampaignCheckpoint {
            cursor: vec![12, 0, 345],
            counter: u64::MAX - 7,
            done: false,
            shards: 4,
            shard_id: 2,
            total: 99,
            changed: 40,
            refined: 97,
            inconclusive: 1,
            dedup_skips: 5,
            seen_peak: 2,
            violations: vec![Violation {
                index: 41,
                before: "define i2 @fz41() {\n  \"quoted\" \\ tab\t\n}".into(),
                after: "define i2 @fz41() {}".into(),
                counterexample: "args (0, poison): src ret 1, tgt UB".into(),
            }],
            seen: vec![key.digest(), FunctionKey::from_words(vec![]).digest()],
        }
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let cp = sample();
        let text = cp.to_jsonl();
        let back = CampaignCheckpoint::from_jsonl(&text).expect("round trip validates");
        assert_eq!(back, cp);
        // u64 digest halves survive even above 2^53 (carried as
        // strings).
        assert_eq!(
            back.seen[0],
            FunctionKey::from_words(vec![3, u64::MAX, 0x1234_5678_9abc_def0]).digest()
        );
        assert_eq!(back.counter, u64::MAX - 7);
        assert_eq!((back.shards, back.shard_id), (4, 2));
    }

    #[test]
    fn version_1_artifacts_still_load() {
        // A pre-sharding checkpoint: no shard fields, no seen_peak,
        // and `seen` lines carrying raw fingerprint words.
        let key = FunctionKey::from_words(vec![7, 9]);
        let text = "{\"kind\":\"checkpoint\",\"version\":1,\"cursor\":[1,2],\"counter\":\"3\",\
                    \"done\":false,\"total\":2,\"changed\":1,\"refined\":2,\"inconclusive\":0,\
                    \"dedup_skips\":0,\"violations\":0,\"seen\":1}\n\
                    {\"kind\":\"seen\",\"words\":[\"7\",\"9\"]}\n";
        let cp = CampaignCheckpoint::from_jsonl(text).expect("v1 loads");
        assert_eq!((cp.shards, cp.shard_id, cp.seen_peak), (1, 0, 0));
        assert_eq!(cp.seen, vec![key.digest()]);
        assert_eq!(cp.total, 2);
    }

    #[test]
    fn save_and_load_through_a_file() {
        let dir = std::env::temp_dir().join("frost-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cp.jsonl");
        let cp = sample();
        cp.save_jsonl(&path).unwrap();
        assert_eq!(CampaignCheckpoint::load_jsonl(&path).unwrap(), cp);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn validator_rejects_malformed_artifacts() {
        assert!(CampaignCheckpoint::from_jsonl("").is_err(), "no header");
        assert!(
            CampaignCheckpoint::from_jsonl("not json\n").is_err(),
            "bad line"
        );
        assert!(
            CampaignCheckpoint::from_jsonl("{\"kind\":\"seen\",\"words\":[]}\n").is_err(),
            "body before header"
        );
        let mut text = sample().to_jsonl();
        text.push_str("{\"kind\":\"seen\",\"words\":[\"1\"]}\n");
        assert!(
            CampaignCheckpoint::from_jsonl(&text)
                .unwrap_err()
                .contains("seen keys"),
            "count mismatch is caught"
        );
        let trailing = sample()
            .to_jsonl()
            .replace("\"done\":false", "\"done\":false} x");
        assert!(CampaignCheckpoint::from_jsonl(&trailing).is_err());
    }

    #[test]
    fn unknown_kinds_and_versions_are_rejected() {
        let base = sample();
        let future = base.to_jsonl().replace("\"version\":2", "\"version\":9");
        assert!(CampaignCheckpoint::from_jsonl(&future)
            .unwrap_err()
            .contains("version"));
        let mut text = base.to_jsonl();
        text.push_str("{\"kind\":\"mystery\"}\n");
        assert!(CampaignCheckpoint::from_jsonl(&text)
            .unwrap_err()
            .contains("unknown kind"));
    }

    fn shard_part(shards: usize, shard_id: usize) -> CampaignCheckpoint {
        let d = |w: u64| FunctionKey::from_words(vec![w]).digest();
        CampaignCheckpoint {
            cursor: vec![shard_id],
            counter: 10 + shard_id as u64,
            done: true,
            shards,
            shard_id,
            total: 5,
            changed: 2,
            refined: 4,
            inconclusive: 1,
            dedup_skips: shard_id,
            seen_peak: 5,
            violations: vec![Violation {
                index: 100 - shard_id,
                before: String::new(),
                after: String::new(),
                counterexample: String::new(),
            }],
            seen: vec![d(shard_id as u64), d(99)],
        }
    }

    #[test]
    fn merge_sums_sorts_and_unions() {
        let parts = [shard_part(2, 1), shard_part(2, 0)];
        let m = CampaignCheckpoint::merge(&parts).expect("complete shard set");
        assert_eq!((m.shards, m.shard_id), (1, 0));
        assert!(m.done);
        assert_eq!(m.total, 10);
        assert_eq!(m.changed, 4);
        assert_eq!(m.dedup_skips, 1);
        assert_eq!(m.seen_peak, 10, "peaks sum across concurrent shards");
        // Violations re-sorted by corpus index regardless of part
        // order.
        let idx: Vec<usize> = m.violations.iter().map(|v| v.index).collect();
        assert_eq!(idx, vec![99, 100]);
        // The shared digest `d(99)` appears once in the union.
        assert_eq!(m.seen.len(), 3);
        // Cursor comes from the furthest-advanced shard.
        assert_eq!(m.counter, 11);
        assert_eq!(m.cursor, vec![1]);
        // Order-independent.
        let swapped = CampaignCheckpoint::merge(&[shard_part(2, 0), shard_part(2, 1)]).unwrap();
        assert_eq!(m, swapped);
    }

    #[test]
    fn merge_rejects_incomplete_or_mismatched_shard_sets() {
        assert!(CampaignCheckpoint::merge(&[]).is_err(), "empty");
        assert!(
            CampaignCheckpoint::merge(&[shard_part(2, 0)]).is_err(),
            "missing shard 1"
        );
        assert!(
            CampaignCheckpoint::merge(&[shard_part(2, 0), shard_part(2, 0)]).is_err(),
            "duplicate shard"
        );
        assert!(
            CampaignCheckpoint::merge(&[shard_part(2, 0), shard_part(3, 1)]).is_err(),
            "disagreeing shard counts"
        );
        let unfinished = CampaignCheckpoint {
            done: false,
            ..shard_part(2, 1)
        };
        let m = CampaignCheckpoint::merge(&[shard_part(2, 0), unfinished]).unwrap();
        assert!(!m.done, "merge of an unfinished shard is not done");
    }
}
