//! Durable campaign checkpoints: the state a killed exhaustive sweep
//! needs to continue exactly where it stopped.
//!
//! A [`CampaignCheckpoint`] captures three things:
//!
//! * the **generator cursor** — the odometer indices, counter and done
//!   flag of [`ExhaustiveFunctions`](crate::ExhaustiveFunctions), so a
//!   resumed sweep regenerates the *next* unchecked function (function
//!   names `fz{counter}` stay stable across restarts);
//! * the **cumulative verdicts** — tallies plus every
//!   [`Violation`] found so far, so the final report of an interrupted
//!   and resumed sweep is byte-identical to an uninterrupted one;
//! * the **dedup set** — the [`FunctionKey`] fingerprints already
//!   checked, serialized as their raw word encodings, so structural
//!   duplicates are skipped exactly once per sweep even across process
//!   boundaries.
//!
//! ## JSONL schema (the checkpoint contract)
//!
//! One JSON object per line, discriminated by `"kind"`:
//!
//! * line 1 — the header: `kind:"checkpoint"`, `version:1`, the cursor
//!   (`cursor`/`counter`/`done`), the tallies
//!   (`total`/`changed`/`refined`/`inconclusive`/`dedup_skips`), and
//!   the expected body line counts (`violations`/`seen`);
//! * `kind:"violation"` — one per recorded violation, carrying
//!   `index`/`before`/`after`/`counterexample`;
//! * `kind:"seen"` — one per dedup-set entry, carrying `words` (the
//!   fingerprint's `u64` words rendered as decimal strings, since JSON
//!   numbers cannot hold a full `u64`).
//!
//! [`CampaignCheckpoint::from_jsonl`] validates the artifact with the
//! same hand-rolled byte-level parser pattern as
//! `frost_telemetry::validate_jsonl`: every line must parse as a flat
//! object, carry its kind's required keys, and the body counts must
//! match the header — errors name the first offending line.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

use frost_ir::FunctionKey;

use crate::validate::Violation;

/// The resumable state of an exhaustive validation sweep. Produced by
/// `Campaign::run_exhaustive`, serialized with
/// [`save_jsonl`](CampaignCheckpoint::save_jsonl), restored with
/// [`load_jsonl`](CampaignCheckpoint::load_jsonl) and passed back as
/// the `resume` argument.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CampaignCheckpoint {
    /// Odometer indices of the next function to generate.
    pub cursor: Vec<usize>,
    /// Generator counter of the next function (`fz{counter}`).
    pub counter: u64,
    /// `true` once the space is exhausted — resuming yields nothing.
    pub done: bool,
    /// Functions checked so far (after dedup).
    pub total: usize,
    /// Functions the transform changed, so far.
    pub changed: usize,
    /// Refinements verified, so far.
    pub refined: usize,
    /// Inconclusive checks, so far.
    pub inconclusive: usize,
    /// Structural duplicates skipped by the dedup set, so far.
    pub dedup_skips: usize,
    /// Every violation found so far, sorted by corpus index.
    pub violations: Vec<Violation>,
    /// The dedup set in insertion order: fingerprints of every function
    /// checked so far.
    pub seen: Vec<FunctionKey>,
}

fn escape_json(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

impl CampaignCheckpoint {
    /// Renders the checkpoint as JSONL (header, violations, seen keys).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(128 + self.seen.len() * 48);
        let _ = write!(out, "{{\"kind\":\"checkpoint\",\"version\":1,\"cursor\":[");
        for (i, ix) in self.cursor.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{ix}");
        }
        let _ = writeln!(
            out,
            "],\"counter\":\"{}\",\"done\":{},\"total\":{},\"changed\":{},\"refined\":{},\
             \"inconclusive\":{},\"dedup_skips\":{},\"violations\":{},\"seen\":{}}}",
            self.counter,
            self.done,
            self.total,
            self.changed,
            self.refined,
            self.inconclusive,
            self.dedup_skips,
            self.violations.len(),
            self.seen.len(),
        );
        for v in &self.violations {
            let _ = write!(
                out,
                "{{\"kind\":\"violation\",\"index\":{},\"before\":\"",
                v.index
            );
            escape_json(&mut out, &v.before);
            out.push_str("\",\"after\":\"");
            escape_json(&mut out, &v.after);
            out.push_str("\",\"counterexample\":\"");
            escape_json(&mut out, &v.counterexample);
            out.push_str("\"}\n");
        }
        for key in &self.seen {
            out.push_str("{\"kind\":\"seen\",\"words\":[");
            for (i, w) in key.as_words().iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{w}\"");
            }
            out.push_str("]}\n");
        }
        out
    }

    /// Parses and validates a checkpoint artifact.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first offending line and why it is
    /// malformed: bad JSON, a missing or mistyped key, an unknown
    /// `kind`, or body line counts that disagree with the header.
    pub fn from_jsonl(text: &str) -> Result<CampaignCheckpoint, String> {
        let mut cp = CampaignCheckpoint::default();
        let (mut want_violations, mut want_seen) = (0usize, 0usize);
        let mut saw_header = false;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let n = lineno + 1;
            let mut p = Parser::new(line);
            let obj = p.object().map_err(|e| format!("line {n}: {e}"))?;
            p.skip_ws();
            if !p.at_end() {
                return Err(format!("line {n}: trailing garbage"));
            }
            let kind = obj.get_str("kind", n)?;
            match kind.as_str() {
                "checkpoint" => {
                    if saw_header {
                        return Err(format!("line {n}: duplicate header"));
                    }
                    saw_header = true;
                    let version = obj.get_u64("version", n)?;
                    if version != 1 {
                        return Err(format!("line {n}: unsupported version {version}"));
                    }
                    cp.cursor = obj
                        .get_array("cursor", n)?
                        .iter()
                        .map(|v| v.as_u64(n).map(|w| w as usize))
                        .collect::<Result<_, _>>()?;
                    cp.counter = obj.get_u64("counter", n)?;
                    cp.done = obj.get_bool("done", n)?;
                    cp.total = obj.get_u64("total", n)? as usize;
                    cp.changed = obj.get_u64("changed", n)? as usize;
                    cp.refined = obj.get_u64("refined", n)? as usize;
                    cp.inconclusive = obj.get_u64("inconclusive", n)? as usize;
                    cp.dedup_skips = obj.get_u64("dedup_skips", n)? as usize;
                    want_violations = obj.get_u64("violations", n)? as usize;
                    want_seen = obj.get_u64("seen", n)? as usize;
                }
                "violation" => {
                    if !saw_header {
                        return Err(format!("line {n}: violation before header"));
                    }
                    cp.violations.push(Violation {
                        index: obj.get_u64("index", n)? as usize,
                        before: obj.get_str("before", n)?,
                        after: obj.get_str("after", n)?,
                        counterexample: obj.get_str("counterexample", n)?,
                    });
                }
                "seen" => {
                    if !saw_header {
                        return Err(format!("line {n}: seen key before header"));
                    }
                    let words = obj
                        .get_array("words", n)?
                        .iter()
                        .map(|v| v.as_u64(n))
                        .collect::<Result<Vec<u64>, _>>()?;
                    cp.seen.push(FunctionKey::from_words(words));
                }
                other => return Err(format!("line {n}: unknown kind '{other}'")),
            }
        }
        if !saw_header {
            return Err("missing checkpoint header".into());
        }
        if cp.violations.len() != want_violations {
            return Err(format!(
                "header promises {want_violations} violations, found {}",
                cp.violations.len()
            ));
        }
        if cp.seen.len() != want_seen {
            return Err(format!(
                "header promises {want_seen} seen keys, found {}",
                cp.seen.len()
            ));
        }
        Ok(cp)
    }

    /// Writes the checkpoint to `path` (atomically: a temp file in the
    /// same directory, then rename), so a kill mid-save leaves either
    /// the old checkpoint or the new one, never a torn file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save_jsonl(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, self.to_jsonl())?;
        std::fs::rename(&tmp, path)
    }

    /// Reads and validates a checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; validation failures surface as
    /// [`io::ErrorKind::InvalidData`] with the offending line in the
    /// message.
    pub fn load_jsonl(path: impl AsRef<Path>) -> io::Result<CampaignCheckpoint> {
        let text = std::fs::read_to_string(path)?;
        CampaignCheckpoint::from_jsonl(&text).map_err(io::Error::other)
    }
}

/// One parsed value from a checkpoint line. `u64`s are carried as
/// decimal strings on the wire (JSON numbers are doubles), so
/// [`JsonValue::as_u64`] accepts both forms.
#[derive(Clone, Debug, PartialEq)]
enum JsonValue {
    Str(String),
    Num(f64),
    Bool(bool),
    Array(Vec<JsonValue>),
}

impl JsonValue {
    fn as_u64(&self, lineno: usize) -> Result<u64, String> {
        match self {
            JsonValue::Str(s) => s
                .parse::<u64>()
                .map_err(|_| format!("line {lineno}: '{s}' is not a u64")),
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Ok(*n as u64)
            }
            other => Err(format!("line {lineno}: {other:?} is not a u64")),
        }
    }
}

/// The parsed object of one line, with per-key typed accessors that
/// blame the line on failure.
struct LineObject(Vec<(String, JsonValue)>);

impl LineObject {
    fn get(&self, key: &str) -> Option<&JsonValue> {
        self.0.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn get_str(&self, key: &str, lineno: usize) -> Result<String, String> {
        match self.get(key) {
            Some(JsonValue::Str(s)) => Ok(s.clone()),
            _ => Err(format!("line {lineno}: missing string key '{key}'")),
        }
    }

    fn get_u64(&self, key: &str, lineno: usize) -> Result<u64, String> {
        self.get(key)
            .ok_or(format!("line {lineno}: missing key '{key}'"))?
            .as_u64(lineno)
    }

    fn get_bool(&self, key: &str, lineno: usize) -> Result<bool, String> {
        match self.get(key) {
            Some(JsonValue::Bool(b)) => Ok(*b),
            _ => Err(format!("line {lineno}: missing bool key '{key}'")),
        }
    }

    fn get_array(&self, key: &str, lineno: usize) -> Result<&[JsonValue], String> {
        match self.get(key) {
            Some(JsonValue::Array(a)) => Ok(a),
            _ => Err(format!("line {lineno}: missing array key '{key}'")),
        }
    }
}

/// Byte-level JSON-line parser (same pattern as the telemetry artifact
/// validator): just enough JSON for the schema above, with byte-offset
/// error messages.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Parser<'a> {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the raw bytes through.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let chunk = self
                        .bytes
                        .get(start..start + len)
                        .ok_or("truncated UTF-8 sequence")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8")?);
                    self.pos = start + len;
                }
            }
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b) if b == b'-' || b.is_ascii_digit() => {
                let start = self.pos;
                self.pos += 1;
                while self.bytes.get(self.pos).is_some_and(|b| {
                    b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-')
                }) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap_or("");
                text.parse::<f64>()
                    .map(JsonValue::Num)
                    .map_err(|_| format!("bad number '{text}'"))
            }
            other => Err(format!("unexpected value start {other:?}")),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("expected '{lit}' at byte {}", self.pos))
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(out));
        }
        loop {
            out.push(self.value()?);
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(out));
                }
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn object(&mut self) -> Result<LineObject, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(LineObject(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(LineObject(fields));
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        b if b < 0x80 => 1,
        b if b >= 0xf0 => 4,
        b if b >= 0xe0 => 3,
        _ => 2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CampaignCheckpoint {
        let key = FunctionKey::from_words(vec![3, u64::MAX, 0x1234_5678_9abc_def0]);
        CampaignCheckpoint {
            cursor: vec![12, 0, 345],
            counter: u64::MAX - 7,
            done: false,
            total: 99,
            changed: 40,
            refined: 97,
            inconclusive: 1,
            dedup_skips: 5,
            violations: vec![Violation {
                index: 41,
                before: "define i2 @fz41() {\n  \"quoted\" \\ tab\t\n}".into(),
                after: "define i2 @fz41() {}".into(),
                counterexample: "args (0, poison): src ret 1, tgt UB".into(),
            }],
            seen: vec![key.clone(), FunctionKey::from_words(vec![])],
        }
    }

    #[test]
    fn jsonl_round_trips_exactly() {
        let cp = sample();
        let text = cp.to_jsonl();
        let back = CampaignCheckpoint::from_jsonl(&text).expect("round trip validates");
        assert_eq!(back, cp);
        // u64 words survive even above 2^53 (carried as strings).
        assert_eq!(
            back.seen[0].as_words(),
            &[3, u64::MAX, 0x1234_5678_9abc_def0]
        );
        assert_eq!(back.counter, u64::MAX - 7);
    }

    #[test]
    fn save_and_load_through_a_file() {
        let dir = std::env::temp_dir().join("frost-checkpoint-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cp.jsonl");
        let cp = sample();
        cp.save_jsonl(&path).unwrap();
        assert_eq!(CampaignCheckpoint::load_jsonl(&path).unwrap(), cp);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn validator_rejects_malformed_artifacts() {
        assert!(CampaignCheckpoint::from_jsonl("").is_err(), "no header");
        assert!(
            CampaignCheckpoint::from_jsonl("not json\n").is_err(),
            "bad line"
        );
        assert!(
            CampaignCheckpoint::from_jsonl("{\"kind\":\"seen\",\"words\":[]}\n").is_err(),
            "body before header"
        );
        let mut text = sample().to_jsonl();
        text.push_str("{\"kind\":\"seen\",\"words\":[\"1\"]}\n");
        assert!(
            CampaignCheckpoint::from_jsonl(&text)
                .unwrap_err()
                .contains("seen keys"),
            "count mismatch is caught"
        );
        let trailing = sample()
            .to_jsonl()
            .replace("\"done\":false", "\"done\":false} x");
        assert!(CampaignCheckpoint::from_jsonl(&trailing).is_err());
    }

    #[test]
    fn unknown_kinds_and_versions_are_rejected() {
        let base = sample();
        let future = base.to_jsonl().replace("\"version\":1", "\"version\":9");
        assert!(CampaignCheckpoint::from_jsonl(&future)
            .unwrap_err()
            .contains("version"));
        let mut text = base.to_jsonl();
        text.push_str("{\"kind\":\"mystery\"}\n");
        assert!(CampaignCheckpoint::from_jsonl(&text)
            .unwrap_err()
            .contains("unknown kind"));
    }
}
