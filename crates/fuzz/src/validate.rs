//! The translation-validation driver (§6, "Testing the prototype"):
//! run a pass (or a whole pipeline) over generated functions and check
//! each result against the original with the exhaustive refinement
//! checker.

use std::fmt;

use frost_core::Semantics;
use frost_ir::{Function, Module};

use crate::campaign::{Campaign, CampaignStats};

/// The outcome of a validation campaign: per-verdict tallies, the
/// violations themselves, and the run's [`CampaignStats`].
#[derive(Clone, Debug, Default)]
pub struct ValidationReport {
    /// Functions processed.
    pub total: usize,
    /// The transformation changed the function.
    pub changed: usize,
    /// Refinement verified.
    pub refined: usize,
    /// Refinement violations, with the offending function (before) and
    /// the counterexample description, sorted by corpus index.
    pub violations: Vec<Violation>,
    /// Checks that could not complete (resource limits).
    pub inconclusive: usize,
    /// Throughput and cache statistics of the run that produced this
    /// report. Everything above is deterministic; this is not.
    pub stats: CampaignStats,
}

/// A single refinement violation found by the campaign.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Global corpus index of the offending function — with the
    /// campaign's seed, enough to regenerate it.
    pub index: usize,
    /// Textual IR before the transformation.
    pub before: String,
    /// Textual IR after.
    pub after: String,
    /// Rendered counterexample.
    pub counterexample: String,
}

impl ValidationReport {
    /// Returns `true` if no violation was found.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for ValidationReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} functions, {} changed, {} refined, {} violations, {} inconclusive",
            self.total,
            self.changed,
            self.refined,
            self.violations.len(),
            self.inconclusive
        )
    }
}

/// Validates `transform` over every function yielded by `functions`,
/// under `sem` for both source and target.
///
/// The transform receives a module containing a single function and
/// mutates it in place.
///
/// This is the sequential, single-threaded entry point, kept for small
/// corpora and tests; it is a [`Campaign`] pinned to one worker.
/// Anything §6-sized should configure a [`Campaign`] directly and use
/// its parallel workers.
pub fn validate_transform(
    functions: impl IntoIterator<Item = Function>,
    sem: Semantics,
    transform: impl Fn(&mut Module) + Sync,
) -> ValidationReport {
    Campaign::new(sem).with_workers(1).run(functions, transform)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{enumerate_functions, random_functions, GenConfig};
    use frost_opt::{o2_pipeline, Dce, InstCombine, Pass, PipelineMode};

    #[test]
    fn fixed_instcombine_is_clean_on_arithmetic_sample() {
        let cfg = GenConfig::arithmetic(2);
        let fns = enumerate_functions(cfg).step_by(991).take(150);
        let report = validate_transform(fns, Semantics::proposed(), |m| {
            for f in &mut m.functions {
                InstCombine::new(PipelineMode::Fixed).apply(f);
                Dce::new().apply(f);
                f.compact();
            }
        });
        assert!(
            report.is_clean(),
            "violations found:\n{}",
            report
                .violations
                .iter()
                .map(|v| format!("{}\n=>\n{}\n{}", v.before, v.after, v.counterexample))
                .collect::<Vec<_>>()
                .join("\n---\n")
        );
        assert!(
            report.changed > 0,
            "the sample must exercise rewrites: {report}"
        );
    }

    #[test]
    fn legacy_instcombine_violations_are_found_with_undef() {
        // §3.1's mul->add rule fires on `mul undef, 2`-shaped inputs and
        // the checker flags it under legacy semantics.
        let cfg = GenConfig {
            ops: vec![frost_ir::BinOp::Mul],
            consts: vec![2],
            poison_const: false,
            flags: false,
            freeze: false,
            ..GenConfig::arithmetic(1)
        }
        .with_undef();
        let report = validate_transform(enumerate_functions(cfg), Semantics::legacy_gvn(), |m| {
            for f in &mut m.functions {
                InstCombine::new(PipelineMode::Legacy).apply(f);
                f.compact();
            }
        });
        assert!(
            !report.is_clean(),
            "expected at least one §3.1 violation: {report}"
        );
        let v = &report.violations[0];
        assert!(v.before.contains("mul"), "{}", v.before);
    }

    #[test]
    fn fixed_o2_pipeline_is_clean_on_random_selects() {
        let cfg = GenConfig::with_selects(3);
        let fns = random_functions(cfg, 7, 60);
        let pm = o2_pipeline(PipelineMode::Fixed);
        let report = validate_transform(fns, Semantics::proposed(), |m| {
            pm.run(m);
        });
        assert!(
            report.is_clean(),
            "violations found:\n{}",
            report
                .violations
                .iter()
                .map(|v| format!("{}\n=>\n{}\n{}", v.before, v.after, v.counterexample))
                .collect::<Vec<_>>()
                .join("\n---\n")
        );
        assert_eq!(report.total, 60);
    }
}
