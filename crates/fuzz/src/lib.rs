//! # frost-fuzz
//!
//! The opt-fuzz analogue for frost (§6 of *"Taming Undefined Behavior in
//! LLVM"*): exhaustive and random generation of small IR functions over
//! narrow integer types, plus a [validation driver](validate) that runs
//! optimization passes over the generated corpus and checks every result
//! against the original with the exhaustive refinement checker
//! (`frost-refine`) — the same methodology the paper used to "increase
//! confidence that Alive and LLVM agree on the semantics of the IR".
//!
//! ```
//! use frost_core::Semantics;
//! use frost_fuzz::{enumerate_functions, validate_transform, GenConfig};
//! use frost_opt::{Dce, InstCombine, Pass, PipelineMode};
//!
//! let cfg = GenConfig::arithmetic(1);
//! let report = validate_transform(
//!     enumerate_functions(cfg).take(200),
//!     Semantics::proposed(),
//!     |m| {
//!         for f in &mut m.functions {
//!             InstCombine::new(PipelineMode::Fixed).apply(f);
//!             Dce::new().apply(f);
//!             f.compact();
//!         }
//!     },
//! );
//! assert!(report.is_clean(), "{report}");
//! ```

#![warn(missing_docs)]

pub mod campaign;
pub mod checkpoint;
pub mod gen;
pub mod validate;

pub use campaign::{Campaign, CampaignStats, Progress};
pub use checkpoint::CampaignCheckpoint;
pub use gen::{
    enumerate_functions, random_functions, random_functions_range, ExhaustiveFunctions, GenConfig,
    Pruning,
};
pub use validate::{validate_transform, ValidationReport, Violation};
