//! Exhaustive and random generation of small IR functions, after
//! opt-fuzz (§6 of the paper: "exhaustively generate all LLVM functions
//! with three instructions over 2-bit integer arithmetic").
//!
//! Functions are straight-line over a narrow integer type (i2 by
//! default) with two integer arguments; the generator optionally mixes
//! in `icmp` (producing i1 values), `select`, and `freeze`, with
//! `poison`/`undef` constants. Enumeration is an odometer over
//! per-slot option lists, exposed as a lazy iterator so huge spaces can
//! be sampled with `step_by`.

use frost_ir::{BinOp, BlockId, Cond, Flags, Function, Inst, InstId, Param, Terminator, Ty, Value};
use frost_rng::{splitmix64, SmallRng};

/// Configuration of the generated function space.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// The narrow integer type (the paper uses i2).
    pub int_bits: u32,
    /// Number of instructions per function.
    pub num_insts: usize,
    /// Binary opcodes to include.
    pub ops: Vec<BinOp>,
    /// Include `nsw`/`nuw`/`exact` variants where supported.
    pub flags: bool,
    /// Include `icmp` (with these conditions) and `select` over the
    /// resulting booleans.
    pub conds: Vec<Cond>,
    /// Include `freeze`.
    pub freeze: bool,
    /// Integer constants to use as operands.
    pub consts: Vec<u128>,
    /// Include the `poison` constant as an operand.
    pub poison_const: bool,
    /// Include the `undef` constant as an operand (legacy semantics).
    pub undef_const: bool,
}

impl GenConfig {
    /// The paper's setting, scaled for in-process checking: i2
    /// arithmetic, all binary opcodes with attributes, no comparisons.
    pub fn arithmetic(num_insts: usize) -> GenConfig {
        GenConfig {
            int_bits: 2,
            num_insts,
            ops: BinOp::ALL.to_vec(),
            flags: true,
            conds: Vec::new(),
            freeze: true,
            consts: vec![0, 1, 2, 3],
            poison_const: true,
            undef_const: false,
        }
    }

    /// A compact space that still exercises every §3.4 select shape.
    pub fn with_selects(num_insts: usize) -> GenConfig {
        GenConfig {
            int_bits: 2,
            num_insts,
            ops: vec![BinOp::Add, BinOp::And, BinOp::Or, BinOp::UDiv],
            flags: true,
            conds: vec![Cond::Eq, Cond::Ult, Cond::Slt],
            freeze: true,
            consts: vec![0, 1, 3],
            poison_const: true,
            undef_const: false,
        }
    }

    /// Enables `undef` operands (for legacy-semantics hunting).
    pub fn with_undef(mut self) -> GenConfig {
        self.undef_const = true;
        self
    }
}

/// One instruction choice at a slot, given the values available so far.
#[derive(Clone, Debug)]
enum Template {
    Bin {
        op: BinOp,
        flags: Flags,
        lhs: Value,
        rhs: Value,
    },
    Icmp {
        cond: Cond,
        lhs: Value,
        rhs: Value,
    },
    Select {
        cond: Value,
        tval: Value,
        fval: Value,
    },
    Freeze {
        val: Value,
        bool_ty: bool,
    },
}

/// The values available as operands before slot `k`, split by type.
struct Avail {
    ints: Vec<Value>,
    bools: Vec<Value>,
}

fn available(cfg: &GenConfig, prefix: &[Template]) -> Avail {
    let mut ints: Vec<Value> = vec![Value::Arg(0), Value::Arg(1)];
    for &c in &cfg.consts {
        ints.push(Value::int(cfg.int_bits, c));
    }
    if cfg.poison_const {
        ints.push(Value::poison(Ty::Int(cfg.int_bits)));
    }
    if cfg.undef_const {
        ints.push(Value::undef(Ty::Int(cfg.int_bits)));
    }
    let mut bools: Vec<Value> = vec![Value::bool(false), Value::bool(true)];
    for (i, t) in prefix.iter().enumerate() {
        let v = Value::Inst(InstId(i as u32));
        match t {
            Template::Bin { .. } | Template::Select { .. } => ints.push(v),
            Template::Icmp { .. } => bools.push(v),
            Template::Freeze { bool_ty, .. } => {
                if *bool_ty {
                    bools.push(v);
                } else {
                    ints.push(v);
                }
            }
        }
    }
    Avail { ints, bools }
}

fn flag_variants(cfg: &GenConfig, op: BinOp) -> Vec<Flags> {
    if !cfg.flags {
        return vec![Flags::NONE];
    }
    if op.supports_wrap_flags() {
        vec![Flags::NONE, Flags::NSW, Flags::NUW, Flags::NSW_NUW]
    } else if op.supports_exact() {
        vec![Flags::NONE, Flags::EXACT]
    } else {
        vec![Flags::NONE]
    }
}

/// All templates legal at a slot with the given available values.
fn slot_options(cfg: &GenConfig, avail: &Avail) -> Vec<Template> {
    let mut out = Vec::new();
    for &op in &cfg.ops {
        for flags in flag_variants(cfg, op) {
            for lhs in &avail.ints {
                for rhs in &avail.ints {
                    out.push(Template::Bin {
                        op,
                        flags,
                        lhs: lhs.clone(),
                        rhs: rhs.clone(),
                    });
                }
            }
        }
    }
    for &cond in &cfg.conds {
        for lhs in &avail.ints {
            for rhs in &avail.ints {
                out.push(Template::Icmp {
                    cond,
                    lhs: lhs.clone(),
                    rhs: rhs.clone(),
                });
            }
        }
    }
    if !cfg.conds.is_empty() {
        for cond in &avail.bools {
            for tval in &avail.ints {
                for fval in &avail.ints {
                    out.push(Template::Select {
                        cond: cond.clone(),
                        tval: tval.clone(),
                        fval: fval.clone(),
                    });
                }
            }
        }
    }
    if cfg.freeze {
        for val in &avail.ints {
            out.push(Template::Freeze {
                val: val.clone(),
                bool_ty: false,
            });
        }
    }
    out
}

fn build_function(cfg: &GenConfig, templates: &[Template], name: &str) -> Function {
    let int_ty = Ty::Int(cfg.int_bits);
    let mut func = Function {
        name: name.to_string(),
        params: vec![
            Param {
                name: "a".into(),
                ty: int_ty.clone(),
            },
            Param {
                name: "b".into(),
                ty: int_ty.clone(),
            },
        ],
        ret_ty: Ty::Void, // patched below
        blocks: vec![frost_ir::Block::new("entry")],
        insts: Vec::with_capacity(templates.len()),
    };
    for t in templates {
        let inst = match t {
            Template::Bin {
                op,
                flags,
                lhs,
                rhs,
            } => Inst::Bin {
                op: *op,
                flags: *flags,
                ty: int_ty.clone(),
                lhs: lhs.clone(),
                rhs: rhs.clone(),
            },
            Template::Icmp { cond, lhs, rhs } => Inst::Icmp {
                cond: *cond,
                ty: int_ty.clone(),
                lhs: lhs.clone(),
                rhs: rhs.clone(),
            },
            Template::Select { cond, tval, fval } => Inst::Select {
                cond: cond.clone(),
                ty: int_ty.clone(),
                tval: tval.clone(),
                fval: fval.clone(),
            },
            Template::Freeze { val, bool_ty } => Inst::Freeze {
                ty: if *bool_ty { Ty::i1() } else { int_ty.clone() },
                val: val.clone(),
            },
        };
        let id = func.add_inst(inst);
        func.blocks[0].insts.push(id);
    }
    let last = InstId((templates.len() - 1) as u32);
    func.ret_ty = func.inst(last).result_ty();
    func.blocks[0].term = Terminator::Ret(Some(Value::Inst(last)));
    let _ = BlockId::ENTRY;
    func
}

/// Lazy exhaustive enumeration of the function space.
pub struct ExhaustiveFunctions {
    cfg: GenConfig,
    /// Odometer indices, one per instruction slot.
    indices: Vec<usize>,
    /// Chosen templates for the current prefix.
    templates: Vec<Template>,
    /// Option lists per slot (computed from the current prefix).
    options: Vec<Vec<Template>>,
    counter: u64,
    done: bool,
}

impl ExhaustiveFunctions {
    /// Starts enumeration.
    pub fn new(cfg: GenConfig) -> ExhaustiveFunctions {
        assert!(cfg.num_insts >= 1, "need at least one instruction");
        let mut e = ExhaustiveFunctions {
            cfg,
            indices: Vec::new(),
            templates: Vec::new(),
            options: Vec::new(),
            counter: 0,
            done: false,
        };
        e.fill_from(0);
        e
    }

    /// (Re)computes options and picks index 0 for slots `from..`.
    fn fill_from(&mut self, from: usize) {
        self.indices.truncate(from);
        self.templates.truncate(from);
        self.options.truncate(from);
        for k in from..self.cfg.num_insts {
            let avail = available(&self.cfg, &self.templates);
            let opts = slot_options(&self.cfg, &avail);
            assert!(!opts.is_empty(), "slot {k} has no options");
            self.templates.push(opts[0].clone());
            self.options.push(opts);
            self.indices.push(0);
        }
    }

    /// Advances the odometer; returns `false` at the end of the space.
    fn advance(&mut self) -> bool {
        let mut k = self.cfg.num_insts;
        loop {
            if k == 0 {
                return false;
            }
            k -= 1;
            if self.indices[k] + 1 < self.options[k].len() {
                self.indices[k] += 1;
                self.templates[k] = self.options[k][self.indices[k]].clone();
                self.fill_from(k + 1);
                return true;
            }
        }
    }

    /// Total size of the space (product of option counts along the
    /// current prefix; exact when option counts do not depend on earlier
    /// choices' *types*, an upper-ballpark otherwise).
    pub fn approx_size(&self) -> u128 {
        self.options.iter().map(|o| o.len() as u128).product()
    }

    /// The odometer position identifying the *next* function this
    /// iterator will yield: `(indices, counter, done)`. Feed it back to
    /// [`ExhaustiveFunctions::resume`] (with the same config) to
    /// continue the walk where it stopped — this is what
    /// `CampaignCheckpoint` serializes.
    pub fn cursor(&self) -> (Vec<usize>, u64, bool) {
        (self.indices.clone(), self.counter, self.done)
    }

    /// The generator counter of the next function (its `fz{n}` name and
    /// its global corpus index).
    pub fn position(&self) -> u64 {
        self.counter
    }

    /// Resumes enumeration at a cursor previously captured with
    /// [`ExhaustiveFunctions::cursor`]. The templates and option lists
    /// are recomputed slot by slot, so a resumed iterator is
    /// indistinguishable from one that walked to the cursor itself.
    ///
    /// # Errors
    ///
    /// Returns a message when the cursor does not fit `cfg` — wrong
    /// number of slots or an index out of range for its option list
    /// (both symptoms of resuming with a different configuration).
    pub fn resume(
        cfg: GenConfig,
        indices: &[usize],
        counter: u64,
        done: bool,
    ) -> Result<ExhaustiveFunctions, String> {
        assert!(cfg.num_insts >= 1, "need at least one instruction");
        let mut e = ExhaustiveFunctions {
            cfg,
            indices: Vec::new(),
            templates: Vec::new(),
            options: Vec::new(),
            counter,
            done,
        };
        if done {
            return Ok(e);
        }
        if indices.len() != e.cfg.num_insts {
            return Err(format!(
                "cursor has {} slots, config generates {} instructions",
                indices.len(),
                e.cfg.num_insts
            ));
        }
        for (k, &ix) in indices.iter().enumerate() {
            let avail = available(&e.cfg, &e.templates);
            let opts = slot_options(&e.cfg, &avail);
            if ix >= opts.len() {
                return Err(format!(
                    "slot {k}: cursor index {ix} out of range (0..{})",
                    opts.len()
                ));
            }
            e.templates.push(opts[ix].clone());
            e.options.push(opts);
            e.indices.push(ix);
        }
        Ok(e)
    }
}

impl Iterator for ExhaustiveFunctions {
    type Item = Function;

    fn next(&mut self) -> Option<Function> {
        if self.done {
            return None;
        }
        let name = format!("fz{}", self.counter);
        let f = build_function(&self.cfg, &self.templates, &name);
        self.counter += 1;
        if !self.advance() {
            self.done = true;
        }
        Some(f)
    }
}

/// Enumerates every function of the space.
pub fn enumerate_functions(cfg: GenConfig) -> ExhaustiveFunctions {
    ExhaustiveFunctions::new(cfg)
}

/// Generates `count` random functions from the space (uniform over
/// slot options, seeded for reproducibility).
pub fn random_functions(cfg: GenConfig, seed: u64, count: usize) -> Vec<Function> {
    random_functions_range(&cfg, seed, 0, count)
}

/// Generates the functions at indices `start..start + count` of the
/// seeded random stream, with each function drawn from its own
/// index-derived generator.
///
/// Because function `i` depends only on `(seed, i)` — never on how the
/// index range is partitioned — a sharded campaign generating each
/// shard's slice independently produces *exactly* the functions a
/// sequential `random_functions(cfg, seed, n)` call would, regardless
/// of shard size or thread count. This is the determinism anchor of
/// `Campaign::run_random`.
pub fn random_functions_range(
    cfg: &GenConfig,
    seed: u64,
    start: usize,
    count: usize,
) -> Vec<Function> {
    let mut out = Vec::with_capacity(count);
    for i in start..start + count {
        let mut rng = SmallRng::seed_from_u64(splitmix64(seed ^ splitmix64(i as u64)));
        let mut templates: Vec<Template> = Vec::with_capacity(cfg.num_insts);
        for _ in 0..cfg.num_insts {
            let avail = available(cfg, &templates);
            let opts = slot_options(cfg, &avail);
            templates.push(opts[rng.gen_range(0..opts.len())].clone());
        }
        out.push(build_function(cfg, &templates, &format!("rf{i}")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_single_instruction_space_exactly() {
        let cfg = GenConfig {
            int_bits: 2,
            num_insts: 1,
            ops: vec![BinOp::Add],
            flags: false,
            conds: Vec::new(),
            freeze: false,
            consts: vec![0, 1],
            poison_const: false,
            undef_const: false,
        };
        // Operands: a, b, 0, 1 -> 16 pairs, one op.
        let fns: Vec<Function> = enumerate_functions(cfg).collect();
        assert_eq!(fns.len(), 16);
        // All distinct.
        let mut texts: Vec<String> = fns.iter().map(frost_ir::function_to_string).collect();
        texts.sort();
        texts.dedup();
        assert_eq!(texts.len(), 16);
    }

    #[test]
    fn generated_functions_verify() {
        let cfg = GenConfig::with_selects(2);
        for f in enumerate_functions(cfg).step_by(97).take(200) {
            frost_ir::verify::verify_function_legacy(&f)
                .unwrap_or_else(|e| panic!("{}\n{e:?}", frost_ir::function_to_string(&f)));
        }
    }

    #[test]
    fn space_size_matches_iteration_for_small_spaces() {
        let cfg = GenConfig {
            int_bits: 2,
            num_insts: 2,
            ops: vec![BinOp::Xor],
            flags: false,
            conds: Vec::new(),
            freeze: false,
            consts: vec![0],
            poison_const: false,
            undef_const: false,
        };
        let e = enumerate_functions(cfg);
        // slot0: operands {a, b, 0} -> 9; slot1: {a, b, 0, t0} -> 16.
        assert_eq!(e.approx_size(), 9 * 16);
        assert_eq!(e.count(), 9 * 16);
    }

    #[test]
    fn random_functions_are_reproducible() {
        let cfg = GenConfig::arithmetic(3);
        let a = random_functions(cfg.clone(), 42, 10);
        let b = random_functions(cfg, 42, 10);
        let ta: Vec<String> = a.iter().map(frost_ir::function_to_string).collect();
        let tb: Vec<String> = b.iter().map(frost_ir::function_to_string).collect();
        assert_eq!(ta, tb);
        for f in &a {
            assert!(frost_ir::verify::verify_function_legacy(f).is_ok());
        }
    }

    #[test]
    fn range_generation_matches_sequential() {
        // Sharded generation must reproduce the sequential stream no
        // matter where the range is split.
        let cfg = GenConfig::arithmetic(2);
        let seq: Vec<String> = random_functions(cfg.clone(), 11, 12)
            .iter()
            .map(frost_ir::function_to_string)
            .collect();
        let a = random_functions_range(&cfg, 11, 0, 5);
        let b = random_functions_range(&cfg, 11, 5, 7);
        let joined: Vec<String> = a
            .iter()
            .chain(&b)
            .map(frost_ir::function_to_string)
            .collect();
        assert_eq!(joined, seq);
    }

    #[test]
    fn resumed_enumeration_matches_uninterrupted_walk() {
        let cfg = GenConfig::with_selects(2);
        let full: Vec<String> = enumerate_functions(cfg.clone())
            .take(500)
            .map(|f| frost_ir::function_to_string(&f))
            .collect();
        let mut head = enumerate_functions(cfg.clone());
        let mut walked: Vec<String> = head
            .by_ref()
            .take(123)
            .map(|f| frost_ir::function_to_string(&f))
            .collect();
        let (indices, counter, done) = head.cursor();
        assert_eq!(counter, 123);
        let resumed = ExhaustiveFunctions::resume(cfg, &indices, counter, done).unwrap();
        walked.extend(
            resumed
                .take(500 - 123)
                .map(|f| frost_ir::function_to_string(&f)),
        );
        assert_eq!(walked, full, "resume must continue the same walk");
    }

    #[test]
    fn resume_rejects_mismatched_cursors() {
        let cfg = GenConfig::arithmetic(2);
        assert!(ExhaustiveFunctions::resume(cfg.clone(), &[0], 0, false).is_err());
        assert!(ExhaustiveFunctions::resume(cfg.clone(), &[0, usize::MAX], 0, false).is_err());
        // A done cursor resumes to an immediately-exhausted iterator.
        let mut fin = ExhaustiveFunctions::resume(cfg, &[], 42, true).unwrap();
        assert!(fin.next().is_none());
    }

    #[test]
    fn undef_constants_appear_when_enabled() {
        let cfg = GenConfig::arithmetic(1).with_undef();
        let any_undef = enumerate_functions(cfg).take(50_000).any(|f| {
            f.insts.iter().any(|i| {
                let mut has = false;
                i.for_each_operand(|v| {
                    has |= v.as_const().is_some_and(frost_ir::Constant::contains_undef)
                });
                has
            })
        });
        assert!(any_undef);
    }
}
