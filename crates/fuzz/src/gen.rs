//! Exhaustive and random generation of small IR functions, after
//! opt-fuzz (§6 of the paper: "exhaustively generate all LLVM functions
//! with three instructions over 2-bit integer arithmetic").
//!
//! Functions are straight-line over a narrow integer type (i2 by
//! default) with two integer arguments; the generator optionally mixes
//! in `icmp` (producing i1 values), `select`, and `freeze`, with
//! `poison`/`undef` constants. Enumeration is an odometer over
//! per-slot option lists, exposed as a lazy iterator so huge spaces can
//! be sampled with `step_by`.

use std::sync::OnceLock;

use frost_ir::{BinOp, BlockId, Cond, Flags, Function, Inst, InstId, Param, Terminator, Ty, Value};
use frost_rng::{splitmix64, SmallRng};

/// Generation-time canonicalization: which structurally redundant
/// shapes the enumerator skips *before* a function is ever built,
/// instead of checking them and deduplicating afterwards.
///
/// Pruning shrinks the space beyond what [`frost_ir::FunctionKey`]
/// dedup removes: a pruned-out function is not α-equivalent to its
/// canonical representative, only equivalent *modulo* operand
/// commutativity or dead-code elimination. The full 2-instruction CI
/// sweep therefore stays unpruned; pruning is the opt-in lever that
/// makes the 3-instruction space tractable (see DESIGN.md).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct Pruning {
    /// Enumerate only `lhs ≤ rhs` operand orders for commutative binops
    /// and symmetric icmps. This also normalizes constant position:
    /// non-constants rank before constants, so `add 1, %a` is skipped
    /// in favor of `add %a, 1`.
    pub canonical_operands: bool,
    /// Enumerate only functions in which every intermediate result is
    /// referenced by a later instruction (the last result is returned).
    /// A function with a dead intermediate DCEs to a function of a
    /// smaller space, so sweeping each size with this prune on covers
    /// the same behaviors as the unpruned union of all sizes.
    pub live_intermediates: bool,
}

impl Pruning {
    /// No pruning: the complete raw space (the default).
    pub const NONE: Pruning = Pruning {
        canonical_operands: false,
        live_intermediates: false,
    };
    /// Every prune the enumerator knows.
    pub const FULL: Pruning = Pruning {
        canonical_operands: true,
        live_intermediates: true,
    };

    /// `true` if any prune is enabled.
    pub fn any(self) -> bool {
        self.canonical_operands || self.live_intermediates
    }
}

/// Configuration of the generated function space.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// The narrow integer type (the paper uses i2).
    pub int_bits: u32,
    /// Number of instructions per function.
    pub num_insts: usize,
    /// Binary opcodes to include.
    pub ops: Vec<BinOp>,
    /// Include `nsw`/`nuw`/`exact` variants where supported.
    pub flags: bool,
    /// Include `icmp` (with these conditions) and `select` over the
    /// resulting booleans.
    pub conds: Vec<Cond>,
    /// Include `freeze`.
    pub freeze: bool,
    /// Integer constants to use as operands.
    pub consts: Vec<u128>,
    /// Include the `poison` constant as an operand.
    pub poison_const: bool,
    /// Include the `undef` constant as an operand (legacy semantics).
    pub undef_const: bool,
    /// Generate memory programs: the function takes a single pointer
    /// parameter `%p: iN*` (instead of two integer arguments) and the
    /// template mix becomes `alloca` / `load` / `store` / `gep` (small
    /// constant indices) / `ptrtoint` / `inttoptr`. `inttoptr` only
    /// becomes available once a `ptrtoint` result exists, so every
    /// forged pointer in the space is a laundered round-trip — exactly
    /// the §5 shapes the block-based memory model is about. Memory
    /// spaces are enumerated unpruned ([`Pruning`] reasons about
    /// integer templates only).
    pub memory: bool,
    /// Include the `assume` guard: every available `i1` value (icmp
    /// results, frozen booleans, the literals) can be asserted as a
    /// fact. Guards are void, so guarded functions return the most
    /// recent *value-producing* result instead of the syntactically
    /// last one (or `void` when every slot is a guard). Construction
    /// goes through the descriptor table's
    /// [`make_guard`](frost_ir::Descriptor::make_guard), so a new guard
    /// opcode needs no generator arm.
    pub guards: bool,
    /// Generation-time canonicalization (default: [`Pruning::NONE`]).
    pub prune: Pruning,
}

impl GenConfig {
    /// The paper's setting, scaled for in-process checking: i2
    /// arithmetic, all binary opcodes with attributes, no comparisons.
    pub fn arithmetic(num_insts: usize) -> GenConfig {
        GenConfig {
            int_bits: 2,
            num_insts,
            ops: BinOp::ALL.to_vec(),
            flags: true,
            conds: Vec::new(),
            freeze: true,
            consts: vec![0, 1, 2, 3],
            poison_const: true,
            undef_const: false,
            memory: false,
            guards: false,
            prune: Pruning::NONE,
        }
    }

    /// A compact space that still exercises every §3.4 select shape.
    pub fn with_selects(num_insts: usize) -> GenConfig {
        GenConfig {
            int_bits: 2,
            num_insts,
            ops: vec![BinOp::Add, BinOp::And, BinOp::Or, BinOp::UDiv],
            flags: true,
            conds: vec![Cond::Eq, Cond::Ult, Cond::Slt],
            freeze: true,
            consts: vec![0, 1, 3],
            poison_const: true,
            undef_const: false,
            memory: false,
            guards: false,
            prune: Pruning::NONE,
        }
    }

    /// The §5 memory space: straight-line i8 programs over one pointer
    /// parameter, mixing `alloca`, `load`, `store`, small-constant
    /// `gep`, and `ptrtoint`/`inttoptr` round-trips. Paired with
    /// initial-memory enumeration (`InputOptions::with_memory_values`
    /// in frost-refine) this exhausts tiny programs × tiny memories,
    /// the memory analogue of the paper's §6 arithmetic sweep.
    pub fn memory(num_insts: usize) -> GenConfig {
        GenConfig {
            int_bits: 8,
            num_insts,
            ops: Vec::new(),
            flags: false,
            conds: Vec::new(),
            freeze: false,
            consts: vec![0, 1],
            poison_const: false,
            undef_const: false,
            memory: true,
            guards: false,
            prune: Pruning::NONE,
        }
    }

    /// The guarded space: i2 arithmetic with comparisons, `freeze`, and
    /// the `assume` guard, so every §3-style shape the guard-driven
    /// pass band reasons about — `assume` on an icmp fact, on a frozen
    /// fact, on a literal, on poison — is enumerated. Kept to one binop
    /// and two conditions so the 2-instruction space stays exhaustible
    /// in CI.
    pub fn guards(num_insts: usize) -> GenConfig {
        GenConfig {
            int_bits: 2,
            num_insts,
            ops: vec![BinOp::Add],
            flags: true,
            conds: vec![Cond::Eq, Cond::Ult],
            freeze: true,
            consts: vec![0, 1],
            poison_const: true,
            undef_const: false,
            memory: false,
            guards: true,
            prune: Pruning::NONE,
        }
    }

    /// Enables `undef` operands (for legacy-semantics hunting).
    pub fn with_undef(mut self) -> GenConfig {
        self.undef_const = true;
        self
    }

    /// Returns this configuration with the given generation-time
    /// [`Pruning`]. The pruned space is a deterministic subsequence of
    /// the unpruned walk, but cursors are *not* interchangeable between
    /// prune settings — resume with the configuration that produced the
    /// checkpoint.
    #[must_use]
    pub fn with_pruning(mut self, prune: Pruning) -> GenConfig {
        self.prune = prune;
        self
    }
}

/// Always-on enumerator telemetry (`frost.fuzz.gen.pruned.*`; see
/// docs/OBSERVABILITY.md). Each counter tallies candidate templates
/// rejected while an option list was being built — one rejection can
/// stand for a whole subtree of skipped functions when it happens at a
/// non-final slot, so these prove the cut is happening (and where), not
/// a function-count delta. A template failing several filters is
/// counted once, by the first filter that rejects it (canonical order
/// before liveness).
struct GenCounters {
    pruned_commutative: &'static frost_telemetry::Counter,
    pruned_const_position: &'static frost_telemetry::Counter,
    pruned_dead: &'static frost_telemetry::Counter,
}

fn gen_counters() -> &'static GenCounters {
    static COUNTERS: OnceLock<GenCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| GenCounters {
        pruned_commutative: frost_telemetry::counter("frost.fuzz.gen.pruned.commutative"),
        pruned_const_position: frost_telemetry::counter("frost.fuzz.gen.pruned.const_position"),
        pruned_dead: frost_telemetry::counter("frost.fuzz.gen.pruned.dead"),
    })
}

/// One instruction choice at a slot, given the values available so far.
#[derive(Clone, Debug)]
enum Template {
    Bin {
        op: BinOp,
        flags: Flags,
        lhs: Value,
        rhs: Value,
    },
    Icmp {
        cond: Cond,
        lhs: Value,
        rhs: Value,
    },
    Select {
        cond: Value,
        tval: Value,
        fval: Value,
    },
    Freeze {
        val: Value,
        bool_ty: bool,
    },
    /// `alloca iN` — a fresh one-element block.
    Alloca,
    /// `load iN` through an available pointer.
    MemLoad {
        ptr: Value,
    },
    /// `store iN` of an available integer through an available pointer.
    MemStore {
        val: Value,
        ptr: Value,
    },
    /// `getelementptr iN, ptr, idx` with a small constant index.
    MemGep {
        base: Value,
        idx: u128,
    },
    /// `ptrtoint ptr to i32` — publishes the address.
    MemPtrToInt {
        val: Value,
    },
    /// `inttoptr i32 to iN*` — forges a pointer from a published
    /// address (only offered once a `ptrtoint` result is available).
    MemIntToPtr {
        val: Value,
    },
    /// `assume i1 %c` — asserts an available boolean fact (void).
    Assume {
        cond: Value,
    },
}

/// The values available as operands before slot `k`, split by type.
struct Avail {
    ints: Vec<Value>,
    bools: Vec<Value>,
    /// Pointer-typed values (`iN*`): the pointer parameter, allocas,
    /// geps, forged `inttoptr` results. Memory spaces only.
    ptrs: Vec<Value>,
    /// `i32` addresses published by `ptrtoint`. Memory spaces only.
    addrs: Vec<Value>,
}

fn available(cfg: &GenConfig, prefix: &[Template]) -> Avail {
    let mut ints: Vec<Value> = Vec::new();
    let mut ptrs: Vec<Value> = Vec::new();
    let mut addrs: Vec<Value> = Vec::new();
    if cfg.memory {
        ptrs.push(Value::Arg(0));
    } else {
        ints.push(Value::Arg(0));
        ints.push(Value::Arg(1));
    }
    for &c in &cfg.consts {
        ints.push(Value::int(cfg.int_bits, c));
    }
    if cfg.poison_const {
        ints.push(Value::poison(Ty::Int(cfg.int_bits)));
    }
    if cfg.undef_const {
        ints.push(Value::undef(Ty::Int(cfg.int_bits)));
    }
    let mut bools: Vec<Value> = vec![Value::bool(false), Value::bool(true)];
    for (i, t) in prefix.iter().enumerate() {
        let v = Value::Inst(InstId(i as u32));
        match t {
            Template::Bin { .. } | Template::Select { .. } | Template::MemLoad { .. } => {
                ints.push(v);
            }
            Template::Icmp { .. } => bools.push(v),
            Template::Freeze { bool_ty, .. } => {
                if *bool_ty {
                    bools.push(v);
                } else {
                    ints.push(v);
                }
            }
            Template::Alloca | Template::MemGep { .. } | Template::MemIntToPtr { .. } => {
                ptrs.push(v);
            }
            Template::MemPtrToInt { .. } => addrs.push(v),
            // Void results (ResultKind::Void in the descriptor table)
            // never join the availability lists.
            Template::MemStore { .. } | Template::Assume { .. } => {}
        }
    }
    Avail {
        ints,
        bools,
        ptrs,
        addrs,
    }
}

fn flag_variants(cfg: &GenConfig, op: BinOp) -> Vec<Flags> {
    if !cfg.flags {
        return vec![Flags::NONE];
    }
    if op.supports_wrap_flags() {
        vec![Flags::NONE, Flags::NSW, Flags::NUW, Flags::NSW_NUW]
    } else if op.supports_exact() {
        vec![Flags::NONE, Flags::EXACT]
    } else {
        vec![Flags::NONE]
    }
}

impl Template {
    /// `true` if this template's result is `i1` (it lands in
    /// `avail.bools` for later slots).
    fn result_is_bool(&self) -> bool {
        match self {
            Template::Icmp { .. } => true,
            Template::Freeze { bool_ty, .. } => *bool_ty,
            _ => false,
        }
    }

    /// `true` if this template's instruction produces no value
    /// (`ResultKind::Void` in the descriptor table) — its slot never
    /// joins the availability lists and contributes nothing to the
    /// liveness backlog.
    fn is_void(&self) -> bool {
        match self {
            Template::MemStore { .. } => true,
            Template::Assume { .. } => {
                frost_ir::Opcode::Assume.descriptor().result == frost_ir::ResultKind::Void
            }
            _ => false,
        }
    }

    /// Calls `f` with every operand of this template.
    fn for_each_operand(&self, mut f: impl FnMut(&Value)) {
        match self {
            Template::Bin { lhs, rhs, .. } | Template::Icmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            Template::Select { cond, tval, fval } => {
                f(cond);
                f(tval);
                f(fval);
            }
            Template::Freeze { val, .. }
            | Template::MemLoad { ptr: val }
            | Template::MemGep { base: val, .. }
            | Template::MemPtrToInt { val }
            | Template::MemIntToPtr { val }
            | Template::Assume { cond: val } => f(val),
            Template::MemStore { val, ptr } => {
                f(val);
                f(ptr);
            }
            Template::Alloca => {}
        }
    }
}

/// The operand order key of the canonical-operand prune: non-constants
/// (arguments, instruction results) rank before constants, ties broken
/// by position in the availability list. Commutative/symmetric
/// instructions keep only `rank(lhs) ≤ rank(rhs)`, which both fixes an
/// operand order and pushes constants to the right.
fn operand_rank(avail: &[Value], v: &Value) -> (bool, usize) {
    let pos = avail
        .iter()
        .position(|a| a == v)
        .expect("operand drawn from the availability list");
    (v.as_const().is_some(), pos)
}

/// State the liveness prune threads through option-list construction:
/// which prefix results are still unreferenced, and how many
/// references one future slot can retire per type.
struct LivePrune {
    /// Indices of unreferenced int-typed prefix results.
    unref_ints: Vec<u32>,
    /// Indices of unreferenced bool-typed prefix results.
    unref_bools: Vec<u32>,
    /// Max distinct int intermediates one future template can use.
    per_slot_ints: usize,
    /// Max distinct bool intermediates one future template can use
    /// (only a select condition consumes a bool).
    per_slot_bools: usize,
    /// Slots after the one being filled.
    slots_left: usize,
}

impl LivePrune {
    fn of(cfg: &GenConfig, prefix: &[Template]) -> LivePrune {
        let mut referenced = vec![false; prefix.len()];
        for t in prefix {
            t.for_each_operand(|v| {
                if let Value::Inst(id) = v {
                    referenced[id.0 as usize] = true;
                }
            });
        }
        let (mut unref_ints, mut unref_bools) = (Vec::new(), Vec::new());
        for (i, t) in prefix.iter().enumerate() {
            if !referenced[i] {
                if t.result_is_bool() {
                    unref_bools.push(i as u32);
                } else {
                    unref_ints.push(i as u32);
                }
            }
        }
        let mut per_slot_ints = 0;
        if !cfg.ops.is_empty() || !cfg.conds.is_empty() {
            per_slot_ints = 2; // binop/icmp operands, select arms
        } else if cfg.freeze {
            per_slot_ints = 1;
        }
        LivePrune {
            unref_ints,
            unref_bools,
            per_slot_ints,
            // A select condition or an assume fact consumes a bool.
            per_slot_bools: usize::from(!cfg.conds.is_empty() || cfg.guards),
            slots_left: cfg.num_insts - prefix.len() - 1,
        }
    }

    /// `true` if choosing `t` here keeps a fully-live completion
    /// reachable: the final slot must retire every outstanding
    /// intermediate, earlier slots must not let the backlog outgrow
    /// what the remaining slots can reference.
    fn admits(&self, t: &Template) -> bool {
        let mut ints_left = self.unref_ints.len();
        let mut bools_left = self.unref_bools.len();
        // Dedupe operands (`xor %0, %0` retires one intermediate, not
        // two); templates have ≤ 3 operands, so a tiny array suffices.
        let mut seen = [u32::MAX; 3];
        let mut n = 0;
        t.for_each_operand(|v| {
            if let Value::Inst(id) = v {
                if seen[..n].contains(&id.0) {
                    return;
                }
                seen[n] = id.0;
                n += 1;
                if self.unref_ints.contains(&id.0) {
                    ints_left -= 1;
                }
                if self.unref_bools.contains(&id.0) {
                    bools_left -= 1;
                }
            }
        });
        if self.slots_left == 0 {
            return ints_left == 0 && bools_left == 0;
        }
        // This slot's own result joins the backlog — unless it is void
        // (a guard): nothing to retire.
        if t.is_void() {
        } else if t.result_is_bool() {
            bools_left += 1;
        } else {
            ints_left += 1;
        }
        ints_left <= self.per_slot_ints * self.slots_left
            && bools_left <= self.per_slot_bools * self.slots_left
    }
}

/// All templates legal at the slot following `prefix`, with the
/// configured prunes applied (see [`Pruning`]); rejected candidates are
/// tallied on the `frost.fuzz.gen.pruned.*` counters.
fn slot_options(cfg: &GenConfig, prefix: &[Template]) -> Vec<Template> {
    let avail = available(cfg, prefix);
    let live = cfg
        .prune
        .live_intermediates
        .then(|| LivePrune::of(cfg, prefix));
    let mut out = Vec::new();
    let mut keep = |t: Template| {
        if cfg.prune.canonical_operands {
            let symmetric = match &t {
                Template::Bin { op, .. } => op.is_commutative(),
                Template::Icmp { cond, .. } => matches!(cond, Cond::Eq | Cond::Ne),
                _ => false,
            };
            if symmetric {
                let (lhs, rhs) = match &t {
                    Template::Bin { lhs, rhs, .. } | Template::Icmp { lhs, rhs, .. } => (lhs, rhs),
                    _ => unreachable!(),
                };
                let (lc, lr) = operand_rank(&avail.ints, lhs);
                let (rc, rr) = operand_rank(&avail.ints, rhs);
                if (lc, lr) > (rc, rr) {
                    if lc && !rc {
                        gen_counters().pruned_const_position.incr();
                    } else {
                        gen_counters().pruned_commutative.incr();
                    }
                    return;
                }
            }
        }
        if let Some(live) = &live {
            if !live.admits(&t) {
                gen_counters().pruned_dead.incr();
                return;
            }
        }
        out.push(t);
    };
    for &op in &cfg.ops {
        for flags in flag_variants(cfg, op) {
            for lhs in &avail.ints {
                for rhs in &avail.ints {
                    keep(Template::Bin {
                        op,
                        flags,
                        lhs: lhs.clone(),
                        rhs: rhs.clone(),
                    });
                }
            }
        }
    }
    for &cond in &cfg.conds {
        for lhs in &avail.ints {
            for rhs in &avail.ints {
                keep(Template::Icmp {
                    cond,
                    lhs: lhs.clone(),
                    rhs: rhs.clone(),
                });
            }
        }
    }
    if !cfg.conds.is_empty() {
        for cond in &avail.bools {
            for tval in &avail.ints {
                for fval in &avail.ints {
                    keep(Template::Select {
                        cond: cond.clone(),
                        tval: tval.clone(),
                        fval: fval.clone(),
                    });
                }
            }
        }
    }
    if cfg.freeze {
        for val in &avail.ints {
            keep(Template::Freeze {
                val: val.clone(),
                bool_ty: false,
            });
        }
        if cfg.guards {
            // Frozen facts: `assume i1 (freeze %c)` is exactly the
            // laundering shape the freeze-aware guard band reasons
            // about, so guarded spaces also freeze booleans. (Gated on
            // `guards` to leave historical select-space walks — and
            // their checkpoints — untouched.)
            for val in &avail.bools {
                keep(Template::Freeze {
                    val: val.clone(),
                    bool_ty: true,
                });
            }
        }
    }
    if cfg.guards {
        for cond in &avail.bools {
            keep(Template::Assume { cond: cond.clone() });
        }
    }
    if cfg.memory {
        keep(Template::Alloca);
        for ptr in &avail.ptrs {
            keep(Template::MemLoad { ptr: ptr.clone() });
            for val in &avail.ints {
                keep(Template::MemStore {
                    val: val.clone(),
                    ptr: ptr.clone(),
                });
            }
            // Indices 0 (identity), 1 (one-past-end of a 1-byte block,
            // inbounds-legal), 2 (out of bounds → deferred poison).
            for idx in [0u128, 1, 2] {
                keep(Template::MemGep {
                    base: ptr.clone(),
                    idx,
                });
            }
            keep(Template::MemPtrToInt { val: ptr.clone() });
        }
        for addr in &avail.addrs {
            keep(Template::MemIntToPtr { val: addr.clone() });
        }
    }
    out
}

fn build_function(cfg: &GenConfig, templates: &[Template], name: &str) -> Function {
    let int_ty = Ty::Int(cfg.int_bits);
    let ptr_ty = Ty::ptr_to(int_ty.clone());
    let params = if cfg.memory {
        vec![Param {
            name: "p".into(),
            ty: ptr_ty.clone(),
        }]
    } else {
        vec![
            Param {
                name: "a".into(),
                ty: int_ty.clone(),
            },
            Param {
                name: "b".into(),
                ty: int_ty.clone(),
            },
        ]
    };
    let mut func = Function {
        name: name.to_string(),
        params,
        ret_ty: Ty::Void, // patched below
        blocks: vec![frost_ir::Block::new("entry")],
        insts: Vec::with_capacity(templates.len()),
    };
    for t in templates {
        let inst = match t {
            Template::Bin {
                op,
                flags,
                lhs,
                rhs,
            } => Inst::Bin {
                op: *op,
                flags: *flags,
                ty: int_ty.clone(),
                lhs: lhs.clone(),
                rhs: rhs.clone(),
            },
            Template::Icmp { cond, lhs, rhs } => Inst::Icmp {
                cond: *cond,
                ty: int_ty.clone(),
                lhs: lhs.clone(),
                rhs: rhs.clone(),
            },
            Template::Select { cond, tval, fval } => Inst::Select {
                cond: cond.clone(),
                ty: int_ty.clone(),
                tval: tval.clone(),
                fval: fval.clone(),
            },
            Template::Freeze { val, bool_ty } => Inst::Freeze {
                ty: if *bool_ty { Ty::i1() } else { int_ty.clone() },
                val: val.clone(),
            },
            Template::Alloca => Inst::Alloca { ty: int_ty.clone() },
            Template::MemLoad { ptr } => Inst::Load {
                ty: int_ty.clone(),
                ptr: ptr.clone(),
            },
            Template::MemStore { val, ptr } => Inst::Store {
                ty: int_ty.clone(),
                val: val.clone(),
                ptr: ptr.clone(),
            },
            Template::MemGep { base, idx } => Inst::Gep {
                elem_ty: int_ty.clone(),
                base: base.clone(),
                idx_ty: Ty::Int(cfg.int_bits),
                idx: Value::int(cfg.int_bits, *idx),
                inbounds: true,
            },
            Template::MemPtrToInt { val } => Inst::PtrToInt {
                from_ty: ptr_ty.clone(),
                to_ty: Ty::Int(frost_ir::PTR_BITS),
                val: val.clone(),
            },
            Template::MemIntToPtr { val } => Inst::IntToPtr {
                from_ty: Ty::Int(frost_ir::PTR_BITS),
                to_ty: ptr_ty.clone(),
                val: val.clone(),
            },
            // Guards are built by the descriptor table itself, so a new
            // guard opcode would need only a template arm naming its
            // row, not bespoke construction.
            Template::Assume { cond } => frost_ir::Opcode::Assume
                .descriptor()
                .make_guard(cond.clone())
                .expect("assume row is a guard"),
        };
        let id = func.add_inst(inst);
        func.blocks[0].insts.push(id);
    }
    if cfg.memory {
        // Return the most recent integer result — a loaded byte or a
        // published address. Pointer results stay unreturned: block
        // indices are allocation-order-relative, so returning a raw
        // `Ptr` would make behavior depend on how a transform renumbers
        // allocas rather than on what the program computes.
        let ret = templates.iter().enumerate().rev().find_map(|(i, t)| {
            matches!(t, Template::MemLoad { .. } | Template::MemPtrToInt { .. })
                .then_some(InstId(i as u32))
        });
        match ret {
            Some(id) => {
                func.ret_ty = func.inst(id).result_ty();
                func.blocks[0].term = Terminator::Ret(Some(Value::Inst(id)));
            }
            None => {
                func.ret_ty = Ty::Void;
                func.blocks[0].term = Terminator::Ret(None);
            }
        }
    } else {
        // Return the most recent value-producing result (per the
        // descriptor table's `ResultKind`). In guard-free spaces every
        // slot produces a value, so this is the syntactically last
        // instruction — the historical behavior; guards are void and
        // skipped (a function of only guards returns void).
        let ret = (0..func.insts.len())
            .rev()
            .find(|&i| func.insts[i].descriptor().result == frost_ir::ResultKind::Value);
        match ret {
            Some(i) => {
                let id = InstId(i as u32);
                func.ret_ty = func.inst(id).result_ty();
                func.blocks[0].term = Terminator::Ret(Some(Value::Inst(id)));
            }
            None => {
                func.ret_ty = Ty::Void;
                func.blocks[0].term = Terminator::Ret(None);
            }
        }
    }
    let _ = BlockId::ENTRY;
    func
}

/// Lazy exhaustive enumeration of the function space.
pub struct ExhaustiveFunctions {
    cfg: GenConfig,
    /// Odometer indices, one per instruction slot.
    indices: Vec<usize>,
    /// Chosen templates for the current prefix.
    templates: Vec<Template>,
    /// Option lists per slot (computed from the current prefix).
    options: Vec<Vec<Template>>,
    counter: u64,
    done: bool,
}

impl ExhaustiveFunctions {
    /// Starts enumeration.
    pub fn new(cfg: GenConfig) -> ExhaustiveFunctions {
        assert!(cfg.num_insts >= 1, "need at least one instruction");
        let mut e = ExhaustiveFunctions {
            cfg,
            indices: Vec::new(),
            templates: Vec::new(),
            options: Vec::new(),
            counter: 0,
            done: false,
        };
        if !e.fill_from(0) && !e.advance() {
            e.done = true;
        }
        e
    }

    /// (Re)computes options and picks index 0 for slots `from..`.
    /// Returns `false` if some slot's (pruned) option list came up
    /// empty — the prefix admits no live completion; the partially
    /// filled slots are left for [`ExhaustiveFunctions::advance`] to
    /// bump past.
    fn fill_from(&mut self, from: usize) -> bool {
        self.indices.truncate(from);
        self.templates.truncate(from);
        self.options.truncate(from);
        for k in from..self.cfg.num_insts {
            let opts = slot_options(&self.cfg, &self.templates);
            if opts.is_empty() {
                assert!(
                    self.cfg.prune.any(),
                    "slot {k} has no options in an unpruned space"
                );
                return false;
            }
            self.templates.push(opts[0].clone());
            self.options.push(opts);
            self.indices.push(0);
        }
        true
    }

    /// Advances the odometer; returns `false` at the end of the space.
    fn advance(&mut self) -> bool {
        loop {
            // Find the deepest *filled* slot with room (a pruned walk
            // may be holding a partial prefix after a failed fill).
            let mut k = self.indices.len();
            loop {
                if k == 0 {
                    return false;
                }
                k -= 1;
                if self.indices[k] + 1 < self.options[k].len() {
                    break;
                }
            }
            self.indices[k] += 1;
            self.templates[k] = self.options[k][self.indices[k]].clone();
            if self.fill_from(k + 1) {
                return true;
            }
        }
    }

    /// Fast-forwards the walk past the next `n` functions, exactly as
    /// if [`Iterator::next`] were called `n` times and the results
    /// discarded — but jumps within the final slot's option list
    /// instead of rebuilding templates, so striding over a
    /// cross-process shard's foreign residues costs a few index
    /// additions per stride. The counter advances with the skip, so
    /// `fz{n}` names and global corpus indices stay exact.
    ///
    /// (Named to dodge [`Iterator::skip`], whose by-value receiver
    /// would win method resolution over an inherent `skip`.)
    pub fn fast_forward(&mut self, n: u64) {
        let mut left = n;
        while left > 0 && !self.done {
            let k = self.cfg.num_insts - 1;
            let room = (self.options[k].len() - 1 - self.indices[k]) as u64;
            if room >= left {
                self.indices[k] += left as usize;
                self.templates[k] = self.options[k][self.indices[k]].clone();
                self.counter += left;
                return;
            }
            // Exhaust the final slot (`room` in-slot steps plus the
            // carry into earlier slots).
            self.indices[k] += room as usize;
            self.counter += room + 1;
            left -= room + 1;
            if !self.advance() {
                self.done = true;
            }
        }
    }

    /// Total size of the space (product of option counts along the
    /// current prefix; exact when option counts do not depend on earlier
    /// choices' *types*, an upper-ballpark otherwise).
    pub fn approx_size(&self) -> u128 {
        self.options.iter().map(|o| o.len() as u128).product()
    }

    /// The odometer position identifying the *next* function this
    /// iterator will yield: `(indices, counter, done)`. Feed it back to
    /// [`ExhaustiveFunctions::resume`] (with the same config) to
    /// continue the walk where it stopped — this is what
    /// `CampaignCheckpoint` serializes.
    pub fn cursor(&self) -> (Vec<usize>, u64, bool) {
        (self.indices.clone(), self.counter, self.done)
    }

    /// The generator counter of the next function (its `fz{n}` name and
    /// its global corpus index).
    pub fn position(&self) -> u64 {
        self.counter
    }

    /// Resumes enumeration at a cursor previously captured with
    /// [`ExhaustiveFunctions::cursor`]. The templates and option lists
    /// are recomputed slot by slot, so a resumed iterator is
    /// indistinguishable from one that walked to the cursor itself.
    ///
    /// # Errors
    ///
    /// Returns a message when the cursor does not fit `cfg` — wrong
    /// number of slots or an index out of range for its option list
    /// (both symptoms of resuming with a different configuration).
    pub fn resume(
        cfg: GenConfig,
        indices: &[usize],
        counter: u64,
        done: bool,
    ) -> Result<ExhaustiveFunctions, String> {
        assert!(cfg.num_insts >= 1, "need at least one instruction");
        let mut e = ExhaustiveFunctions {
            cfg,
            indices: Vec::new(),
            templates: Vec::new(),
            options: Vec::new(),
            counter,
            done,
        };
        if done {
            return Ok(e);
        }
        if indices.len() != e.cfg.num_insts {
            return Err(format!(
                "cursor has {} slots, config generates {} instructions",
                indices.len(),
                e.cfg.num_insts
            ));
        }
        for (k, &ix) in indices.iter().enumerate() {
            let opts = slot_options(&e.cfg, &e.templates);
            if ix >= opts.len() {
                return Err(format!(
                    "slot {k}: cursor index {ix} out of range (0..{})",
                    opts.len()
                ));
            }
            e.templates.push(opts[ix].clone());
            e.options.push(opts);
            e.indices.push(ix);
        }
        Ok(e)
    }
}

impl Iterator for ExhaustiveFunctions {
    type Item = Function;

    fn next(&mut self) -> Option<Function> {
        if self.done {
            return None;
        }
        let name = format!("fz{}", self.counter);
        let f = build_function(&self.cfg, &self.templates, &name);
        self.counter += 1;
        if !self.advance() {
            self.done = true;
        }
        Some(f)
    }
}

/// Enumerates every function of the space.
pub fn enumerate_functions(cfg: GenConfig) -> ExhaustiveFunctions {
    ExhaustiveFunctions::new(cfg)
}

/// Generates `count` random functions from the space (uniform over
/// slot options, seeded for reproducibility).
pub fn random_functions(cfg: GenConfig, seed: u64, count: usize) -> Vec<Function> {
    random_functions_range(&cfg, seed, 0, count)
}

/// Generates the functions at indices `start..start + count` of the
/// seeded random stream, with each function drawn from its own
/// index-derived generator.
///
/// Because function `i` depends only on `(seed, i)` — never on how the
/// index range is partitioned — a sharded campaign generating each
/// shard's slice independently produces *exactly* the functions a
/// sequential `random_functions(cfg, seed, n)` call would, regardless
/// of shard size or thread count. This is the determinism anchor of
/// `Campaign::run_random`.
pub fn random_functions_range(
    cfg: &GenConfig,
    seed: u64,
    start: usize,
    count: usize,
) -> Vec<Function> {
    let mut out = Vec::with_capacity(count);
    for i in start..start + count {
        let mut rng = SmallRng::seed_from_u64(splitmix64(seed ^ splitmix64(i as u64)));
        let mut templates: Vec<Template> = Vec::with_capacity(cfg.num_insts);
        for _ in 0..cfg.num_insts {
            let opts = slot_options(cfg, &templates);
            templates.push(opts[rng.gen_range(0..opts.len())].clone());
        }
        out.push(build_function(cfg, &templates, &format!("rf{i}")));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerates_single_instruction_space_exactly() {
        let cfg = GenConfig {
            int_bits: 2,
            num_insts: 1,
            ops: vec![BinOp::Add],
            flags: false,
            conds: Vec::new(),
            freeze: false,
            consts: vec![0, 1],
            poison_const: false,
            undef_const: false,
            memory: false,
            guards: false,
            prune: Pruning::NONE,
        };
        // Operands: a, b, 0, 1 -> 16 pairs, one op.
        let fns: Vec<Function> = enumerate_functions(cfg).collect();
        assert_eq!(fns.len(), 16);
        // All distinct.
        let mut texts: Vec<String> = fns.iter().map(frost_ir::function_to_string).collect();
        texts.sort();
        texts.dedup();
        assert_eq!(texts.len(), 16);
    }

    #[test]
    fn generated_functions_verify() {
        let cfg = GenConfig::with_selects(2);
        for f in enumerate_functions(cfg).step_by(97).take(200) {
            frost_ir::verify::verify_function_legacy(&f)
                .unwrap_or_else(|e| panic!("{}\n{e:?}", frost_ir::function_to_string(&f)));
        }
    }

    #[test]
    fn space_size_matches_iteration_for_small_spaces() {
        let cfg = GenConfig {
            int_bits: 2,
            num_insts: 2,
            ops: vec![BinOp::Xor],
            flags: false,
            conds: Vec::new(),
            freeze: false,
            consts: vec![0],
            poison_const: false,
            undef_const: false,
            memory: false,
            guards: false,
            prune: Pruning::NONE,
        };
        let e = enumerate_functions(cfg);
        // slot0: operands {a, b, 0} -> 9; slot1: {a, b, 0, t0} -> 16.
        assert_eq!(e.approx_size(), 9 * 16);
        assert_eq!(e.count(), 9 * 16);
    }

    #[test]
    fn random_functions_are_reproducible() {
        let cfg = GenConfig::arithmetic(3);
        let a = random_functions(cfg.clone(), 42, 10);
        let b = random_functions(cfg, 42, 10);
        let ta: Vec<String> = a.iter().map(frost_ir::function_to_string).collect();
        let tb: Vec<String> = b.iter().map(frost_ir::function_to_string).collect();
        assert_eq!(ta, tb);
        for f in &a {
            assert!(frost_ir::verify::verify_function_legacy(f).is_ok());
        }
    }

    #[test]
    fn range_generation_matches_sequential() {
        // Sharded generation must reproduce the sequential stream no
        // matter where the range is split.
        let cfg = GenConfig::arithmetic(2);
        let seq: Vec<String> = random_functions(cfg.clone(), 11, 12)
            .iter()
            .map(frost_ir::function_to_string)
            .collect();
        let a = random_functions_range(&cfg, 11, 0, 5);
        let b = random_functions_range(&cfg, 11, 5, 7);
        let joined: Vec<String> = a
            .iter()
            .chain(&b)
            .map(frost_ir::function_to_string)
            .collect();
        assert_eq!(joined, seq);
    }

    #[test]
    fn resumed_enumeration_matches_uninterrupted_walk() {
        let cfg = GenConfig::with_selects(2);
        let full: Vec<String> = enumerate_functions(cfg.clone())
            .take(500)
            .map(|f| frost_ir::function_to_string(&f))
            .collect();
        let mut head = enumerate_functions(cfg.clone());
        let mut walked: Vec<String> = head
            .by_ref()
            .take(123)
            .map(|f| frost_ir::function_to_string(&f))
            .collect();
        let (indices, counter, done) = head.cursor();
        assert_eq!(counter, 123);
        let resumed = ExhaustiveFunctions::resume(cfg, &indices, counter, done).unwrap();
        walked.extend(
            resumed
                .take(500 - 123)
                .map(|f| frost_ir::function_to_string(&f)),
        );
        assert_eq!(walked, full, "resume must continue the same walk");
    }

    #[test]
    fn resume_rejects_mismatched_cursors() {
        let cfg = GenConfig::arithmetic(2);
        assert!(ExhaustiveFunctions::resume(cfg.clone(), &[0], 0, false).is_err());
        assert!(ExhaustiveFunctions::resume(cfg.clone(), &[0, usize::MAX], 0, false).is_err());
        // A done cursor resumes to an immediately-exhausted iterator.
        let mut fin = ExhaustiveFunctions::resume(cfg, &[], 42, true).unwrap();
        assert!(fin.next().is_none());
    }

    /// The tiny xor-only space the pruning tests reason about by hand:
    /// operands `{a, b, 0}` plus intermediates, one opcode, no flags.
    fn xor_cfg(num_insts: usize) -> GenConfig {
        GenConfig {
            int_bits: 2,
            num_insts,
            ops: vec![BinOp::Xor],
            flags: false,
            conds: Vec::new(),
            freeze: false,
            consts: vec![0],
            poison_const: false,
            undef_const: false,
            memory: false,
            guards: false,
            prune: Pruning::NONE,
        }
    }

    #[test]
    fn canonical_operands_halve_the_symmetric_space() {
        // Unpruned: 3 × 3 ordered pairs. Canonical (rank(lhs) ≤
        // rank(rhs) over a < b < 0): (a,a) (a,b) (a,0) (b,b) (b,0)
        // (0,0) — the 3 unordered swaps are gone, and the constant
        // always sits on the right.
        let prune = Pruning {
            canonical_operands: true,
            live_intermediates: false,
        };
        let before = frost_telemetry::snapshot();
        let fns: Vec<Function> = enumerate_functions(xor_cfg(1).with_pruning(prune)).collect();
        assert_eq!(fns.len(), 6);
        for f in &fns {
            let s = frost_ir::function_to_string(f);
            assert!(
                !s.contains("xor i2 0, %"),
                "constant operand must be normalized to the rhs:\n{s}"
            );
        }
        let d = frost_telemetry::snapshot().delta(&before);
        assert_eq!(
            d.counter("frost.fuzz.gen.pruned.commutative")
                + d.counter("frost.fuzz.gen.pruned.const_position"),
            3,
            "the three skipped pairs must be tallied"
        );
        assert_eq!(
            enumerate_functions(xor_cfg(1)).count(),
            9,
            "the unpruned space is untouched"
        );
    }

    #[test]
    fn full_pruning_keeps_only_live_canonical_functions() {
        // Slot 0: the 6 canonical pairs. Slot 1 must reference t0 and
        // stay canonical over a < b < t0 < 0 (non-consts before the
        // constant): (a,t0) (b,t0) (t0,t0) (t0,0) — 4 choices.
        let before = frost_telemetry::snapshot();
        let fns: Vec<Function> =
            enumerate_functions(xor_cfg(2).with_pruning(Pruning::FULL)).collect();
        assert_eq!(fns.len(), 6 * 4);
        let keys: std::collections::HashSet<frost_ir::FunctionKey> =
            fns.iter().map(frost_ir::FunctionKey::of).collect();
        assert_eq!(keys.len(), 6 * 4, "pruned functions are key-distinct");
        for f in &fns {
            // Every intermediate (all but the returned last result) is
            // referenced by a later instruction.
            let mut referenced = vec![false; f.insts.len()];
            for inst in &f.insts {
                inst.for_each_operand(|v| {
                    if let Value::Inst(id) = v {
                        referenced[id.0 as usize] = true;
                    }
                });
            }
            assert!(
                referenced[..f.insts.len() - 1].iter().all(|&r| r),
                "dead intermediate in {}",
                frost_ir::function_to_string(f)
            );
        }
        let d = frost_telemetry::snapshot().delta(&before);
        assert!(d.counter("frost.fuzz.gen.pruned.dead") > 0);
        assert_eq!(enumerate_functions(xor_cfg(2)).count(), 9 * 16);
    }

    #[test]
    fn pruned_walk_is_a_subsequence_of_the_unpruned_walk() {
        // Pruning only *removes* entries from the walk — the survivors
        // come out in the same relative order the unpruned odometer
        // would yield them. (Positions are renumbered densely, so
        // compare bodies under a fixed name, not `fz{n}` texts.)
        let body = |mut f: Function| {
            f.name = "f".into();
            frost_ir::function_to_string(&f)
        };
        let all: Vec<String> = enumerate_functions(xor_cfg(2)).map(body).collect();
        let pruned: Vec<String> = enumerate_functions(xor_cfg(2).with_pruning(Pruning::FULL))
            .map(body)
            .collect();
        let mut it = all.iter();
        for p in &pruned {
            assert!(
                it.any(|a| a == p),
                "pruned walk yielded a function missing from (or out of order in) the unpruned walk"
            );
        }
    }

    #[test]
    fn skip_matches_sequential_next_calls() {
        for cfg in [
            xor_cfg(2),                                       // 144 functions, unpruned
            xor_cfg(2).with_pruning(Pruning::FULL),           // 24, prune-aware carry
            GenConfig::with_selects(2),                       // mixed types
            GenConfig::guards(2),                             // void guard slots
            GenConfig::guards(2).with_pruning(Pruning::FULL), // guard-aware liveness
        ] {
            let total = enumerate_functions(cfg.clone()).count().min(600);
            for n in [0, 1, 2, 5, total - 1, total, total + 3] {
                let mut stepped = enumerate_functions(cfg.clone());
                for _ in 0..n {
                    let _ = stepped.next();
                }
                let mut skipped = enumerate_functions(cfg.clone());
                skipped.fast_forward(n as u64);
                assert_eq!(
                    skipped.cursor(),
                    stepped.cursor(),
                    "cursor mismatch after skip({n})"
                );
                assert_eq!(
                    skipped.next().map(|f| frost_ir::function_to_string(&f)),
                    stepped.next().map(|f| frost_ir::function_to_string(&f)),
                    "next function mismatch after skip({n})"
                );
            }
        }
    }

    #[test]
    fn resume_continues_a_pruned_walk() {
        let cfg = GenConfig::with_selects(2).with_pruning(Pruning::FULL);
        let full: Vec<String> = enumerate_functions(cfg.clone())
            .take(300)
            .map(|f| frost_ir::function_to_string(&f))
            .collect();
        let mut head = enumerate_functions(cfg.clone());
        let mut walked: Vec<String> = head
            .by_ref()
            .take(97)
            .map(|f| frost_ir::function_to_string(&f))
            .collect();
        let (indices, counter, done) = head.cursor();
        let resumed = ExhaustiveFunctions::resume(cfg, &indices, counter, done).unwrap();
        walked.extend(
            resumed
                .take(300 - 97)
                .map(|f| frost_ir::function_to_string(&f)),
        );
        assert_eq!(walked, full, "resume must continue the pruned walk");
    }

    #[test]
    fn memory_space_generates_verified_memory_programs() {
        let mut saw_load = false;
        let mut saw_store = false;
        let mut saw_roundtrip = false;
        let mut count = 0usize;
        for f in enumerate_functions(GenConfig::memory(3)) {
            count += 1;
            frost_ir::verify::verify_function(&f)
                .unwrap_or_else(|e| panic!("{}\n{e:?}", frost_ir::function_to_string(&f)));
            let mut has_p2i = false;
            let mut has_i2p = false;
            for inst in &f.insts {
                match inst {
                    Inst::Load { .. } => saw_load = true,
                    Inst::Store { .. } => saw_store = true,
                    Inst::PtrToInt { .. } => has_p2i = true,
                    Inst::IntToPtr { .. } => has_i2p = true,
                    _ => {}
                }
            }
            saw_roundtrip |= has_p2i && has_i2p;
        }
        assert!(count > 500, "3-slot memory space has {count} programs");
        assert!(saw_load && saw_store, "loads and stores appear");
        assert!(
            saw_roundtrip,
            "ptrtoint/inttoptr laundering chains are in the space"
        );
    }

    #[test]
    fn memory_programs_never_return_pointers() {
        for f in enumerate_functions(GenConfig::memory(2)) {
            assert!(
                !matches!(f.ret_ty, Ty::Ptr(_)),
                "pointer return in {}",
                frost_ir::function_to_string(&f)
            );
            if let Terminator::Ret(Some(v)) = &f.blocks[0].term {
                let Value::Inst(id) = v else {
                    panic!("generated returns are instruction results");
                };
                assert!(matches!(
                    f.inst(*id),
                    Inst::Load { .. } | Inst::PtrToInt { .. }
                ));
            }
        }
    }

    #[test]
    fn guarded_space_generates_verified_guarded_programs() {
        let mut saw_assume_on_icmp = false;
        let mut saw_assume_on_frozen = false;
        let mut saw_void_ret = false;
        let mut count = 0usize;
        for f in enumerate_functions(GenConfig::guards(2)) {
            count += 1;
            frost_ir::verify::verify_function(&f)
                .unwrap_or_else(|e| panic!("{}\n{e:?}", frost_ir::function_to_string(&f)));
            for inst in &f.insts {
                let Inst::Assume { cond } = inst else {
                    continue;
                };
                if let Value::Inst(id) = cond {
                    match f.inst(*id) {
                        Inst::Icmp { .. } => saw_assume_on_icmp = true,
                        Inst::Freeze { .. } => saw_assume_on_frozen = true,
                        _ => {}
                    }
                }
            }
            saw_void_ret |= f.ret_ty.is_void();
            // A guarded function still returns its most recent *value*,
            // never a guard's slot.
            if let Terminator::Ret(Some(Value::Inst(id))) = &f.blocks[0].term {
                assert!(
                    !f.inst(*id).descriptor().is_guard(),
                    "returned a guard slot in {}",
                    frost_ir::function_to_string(&f)
                );
            }
        }
        assert!(count > 1_000, "2-slot guarded space has {count} programs");
        assert!(
            saw_assume_on_icmp,
            "assume over an icmp fact is in the space"
        );
        assert!(
            saw_assume_on_frozen,
            "assume over a frozen (laundered) fact is in the space"
        );
        assert!(saw_void_ret, "all-guard functions return void");
    }

    #[test]
    fn guarded_resume_continues_the_walk() {
        let cfg = GenConfig::guards(2);
        let full: Vec<String> = enumerate_functions(cfg.clone())
            .take(400)
            .map(|f| frost_ir::function_to_string(&f))
            .collect();
        let mut head = enumerate_functions(cfg.clone());
        let mut walked: Vec<String> = head
            .by_ref()
            .take(151)
            .map(|f| frost_ir::function_to_string(&f))
            .collect();
        let (indices, counter, done) = head.cursor();
        let resumed = ExhaustiveFunctions::resume(cfg, &indices, counter, done).unwrap();
        walked.extend(
            resumed
                .take(400 - 151)
                .map(|f| frost_ir::function_to_string(&f)),
        );
        assert_eq!(walked, full, "resume must continue the guarded walk");
    }

    #[test]
    fn undef_constants_appear_when_enabled() {
        let cfg = GenConfig::arithmetic(1).with_undef();
        let any_undef = enumerate_functions(cfg).take(50_000).any(|f| {
            f.insts.iter().any(|i| {
                let mut has = false;
                i.for_each_operand(|v| {
                    has |= v.as_const().is_some_and(frost_ir::Constant::contains_undef)
                });
                has
            })
        });
        assert!(any_undef);
    }
}
