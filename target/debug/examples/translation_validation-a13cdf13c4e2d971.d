/root/repo/target/debug/examples/translation_validation-a13cdf13c4e2d971.d: crates/frost/../../examples/translation_validation.rs

/root/repo/target/debug/examples/translation_validation-a13cdf13c4e2d971: crates/frost/../../examples/translation_validation.rs

crates/frost/../../examples/translation_validation.rs:
