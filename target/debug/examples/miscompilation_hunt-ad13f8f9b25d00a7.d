/root/repo/target/debug/examples/miscompilation_hunt-ad13f8f9b25d00a7.d: crates/frost/../../examples/miscompilation_hunt.rs

/root/repo/target/debug/examples/miscompilation_hunt-ad13f8f9b25d00a7: crates/frost/../../examples/miscompilation_hunt.rs

crates/frost/../../examples/miscompilation_hunt.rs:
