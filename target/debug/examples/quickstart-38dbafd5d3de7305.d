/root/repo/target/debug/examples/quickstart-38dbafd5d3de7305.d: crates/frost/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-38dbafd5d3de7305: crates/frost/../../examples/quickstart.rs

crates/frost/../../examples/quickstart.rs:
