/root/repo/target/debug/examples/bitfield_freeze-0e3b0c09f0d9d22b.d: crates/frost/../../examples/bitfield_freeze.rs

/root/repo/target/debug/examples/bitfield_freeze-0e3b0c09f0d9d22b: crates/frost/../../examples/bitfield_freeze.rs

crates/frost/../../examples/bitfield_freeze.rs:
