/root/repo/target/debug/deps/frost-7c1c8ccd0c13cbbe.d: crates/frost/src/lib.rs

/root/repo/target/debug/deps/frost-7c1c8ccd0c13cbbe: crates/frost/src/lib.rs

crates/frost/src/lib.rs:
