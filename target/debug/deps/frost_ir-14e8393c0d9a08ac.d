/root/repo/target/debug/deps/frost_ir-14e8393c0d9a08ac.d: crates/ir/src/lib.rs crates/ir/src/analysis/mod.rs crates/ir/src/analysis/known_bits.rs crates/ir/src/analysis/scev.rs crates/ir/src/builder.rs crates/ir/src/cfg.rs crates/ir/src/dom.rs crates/ir/src/function.rs crates/ir/src/inst.rs crates/ir/src/loops.rs crates/ir/src/parse.rs crates/ir/src/print.rs crates/ir/src/types.rs crates/ir/src/value.rs crates/ir/src/verify.rs

/root/repo/target/debug/deps/frost_ir-14e8393c0d9a08ac: crates/ir/src/lib.rs crates/ir/src/analysis/mod.rs crates/ir/src/analysis/known_bits.rs crates/ir/src/analysis/scev.rs crates/ir/src/builder.rs crates/ir/src/cfg.rs crates/ir/src/dom.rs crates/ir/src/function.rs crates/ir/src/inst.rs crates/ir/src/loops.rs crates/ir/src/parse.rs crates/ir/src/print.rs crates/ir/src/types.rs crates/ir/src/value.rs crates/ir/src/verify.rs

crates/ir/src/lib.rs:
crates/ir/src/analysis/mod.rs:
crates/ir/src/analysis/known_bits.rs:
crates/ir/src/analysis/scev.rs:
crates/ir/src/builder.rs:
crates/ir/src/cfg.rs:
crates/ir/src/dom.rs:
crates/ir/src/function.rs:
crates/ir/src/inst.rs:
crates/ir/src/loops.rs:
crates/ir/src/parse.rs:
crates/ir/src/print.rs:
crates/ir/src/types.rs:
crates/ir/src/value.rs:
crates/ir/src/verify.rs:
