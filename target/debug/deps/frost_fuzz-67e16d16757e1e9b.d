/root/repo/target/debug/deps/frost_fuzz-67e16d16757e1e9b.d: crates/fuzz/src/lib.rs crates/fuzz/src/campaign.rs crates/fuzz/src/gen.rs crates/fuzz/src/validate.rs

/root/repo/target/debug/deps/libfrost_fuzz-67e16d16757e1e9b.rlib: crates/fuzz/src/lib.rs crates/fuzz/src/campaign.rs crates/fuzz/src/gen.rs crates/fuzz/src/validate.rs

/root/repo/target/debug/deps/libfrost_fuzz-67e16d16757e1e9b.rmeta: crates/fuzz/src/lib.rs crates/fuzz/src/campaign.rs crates/fuzz/src/gen.rs crates/fuzz/src/validate.rs

crates/fuzz/src/lib.rs:
crates/fuzz/src/campaign.rs:
crates/fuzz/src/gen.rs:
crates/fuzz/src/validate.rs:
