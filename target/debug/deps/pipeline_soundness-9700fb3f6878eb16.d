/root/repo/target/debug/deps/pipeline_soundness-9700fb3f6878eb16.d: crates/frost/../../tests/pipeline_soundness.rs

/root/repo/target/debug/deps/pipeline_soundness-9700fb3f6878eb16: crates/frost/../../tests/pipeline_soundness.rs

crates/frost/../../tests/pipeline_soundness.rs:
