/root/repo/target/debug/deps/end_to_end-9e822e9381fb818e.d: crates/frost/../../tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-9e822e9381fb818e: crates/frost/../../tests/end_to_end.rs

crates/frost/../../tests/end_to_end.rs:
