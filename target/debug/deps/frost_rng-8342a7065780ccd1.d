/root/repo/target/debug/deps/frost_rng-8342a7065780ccd1.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libfrost_rng-8342a7065780ccd1.rlib: crates/rng/src/lib.rs

/root/repo/target/debug/deps/libfrost_rng-8342a7065780ccd1.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
