/root/repo/target/debug/deps/frost_core-f399dbbe0ce9b506.d: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/error.rs crates/core/src/exec.rs crates/core/src/mem.rs crates/core/src/ops.rs crates/core/src/outcome.rs crates/core/src/sem.rs crates/core/src/val.rs

/root/repo/target/debug/deps/libfrost_core-f399dbbe0ce9b506.rlib: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/error.rs crates/core/src/exec.rs crates/core/src/mem.rs crates/core/src/ops.rs crates/core/src/outcome.rs crates/core/src/sem.rs crates/core/src/val.rs

/root/repo/target/debug/deps/libfrost_core-f399dbbe0ce9b506.rmeta: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/error.rs crates/core/src/exec.rs crates/core/src/mem.rs crates/core/src/ops.rs crates/core/src/outcome.rs crates/core/src/sem.rs crates/core/src/val.rs

crates/core/src/lib.rs:
crates/core/src/cache.rs:
crates/core/src/error.rs:
crates/core/src/exec.rs:
crates/core/src/mem.rs:
crates/core/src/ops.rs:
crates/core/src/outcome.rs:
crates/core/src/sem.rs:
crates/core/src/val.rs:
