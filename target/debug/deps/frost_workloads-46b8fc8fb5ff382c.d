/root/repo/target/debug/deps/frost_workloads-46b8fc8fb5ff382c.d: crates/workloads/src/lib.rs crates/workloads/src/lnt.rs crates/workloads/src/single_file.rs crates/workloads/src/spec.rs

/root/repo/target/debug/deps/libfrost_workloads-46b8fc8fb5ff382c.rlib: crates/workloads/src/lib.rs crates/workloads/src/lnt.rs crates/workloads/src/single_file.rs crates/workloads/src/spec.rs

/root/repo/target/debug/deps/libfrost_workloads-46b8fc8fb5ff382c.rmeta: crates/workloads/src/lib.rs crates/workloads/src/lnt.rs crates/workloads/src/single_file.rs crates/workloads/src/spec.rs

crates/workloads/src/lib.rs:
crates/workloads/src/lnt.rs:
crates/workloads/src/single_file.rs:
crates/workloads/src/spec.rs:
