/root/repo/target/debug/deps/properties-635ebea9b44f88b3.d: crates/frost/../../tests/properties.rs

/root/repo/target/debug/deps/properties-635ebea9b44f88b3: crates/frost/../../tests/properties.rs

crates/frost/../../tests/properties.rs:
