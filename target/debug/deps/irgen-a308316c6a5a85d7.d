/root/repo/target/debug/deps/irgen-a308316c6a5a85d7.d: crates/cc/tests/irgen.rs

/root/repo/target/debug/deps/irgen-a308316c6a5a85d7: crates/cc/tests/irgen.rs

crates/cc/tests/irgen.rs:
