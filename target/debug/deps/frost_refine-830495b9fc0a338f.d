/root/repo/target/debug/deps/frost_refine-830495b9fc0a338f.d: crates/refine/src/lib.rs crates/refine/src/check.rs crates/refine/src/inputs.rs crates/refine/src/lattice.rs

/root/repo/target/debug/deps/frost_refine-830495b9fc0a338f: crates/refine/src/lib.rs crates/refine/src/check.rs crates/refine/src/inputs.rs crates/refine/src/lattice.rs

crates/refine/src/lib.rs:
crates/refine/src/check.rs:
crates/refine/src/inputs.rs:
crates/refine/src/lattice.rs:
