/root/repo/target/debug/deps/frost_bench-2ecbcd7720ba8655.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/harness.rs crates/bench/src/microbench.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libfrost_bench-2ecbcd7720ba8655.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/harness.rs crates/bench/src/microbench.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libfrost_bench-2ecbcd7720ba8655.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/harness.rs crates/bench/src/microbench.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/harness.rs:
crates/bench/src/microbench.rs:
crates/bench/src/table.rs:
