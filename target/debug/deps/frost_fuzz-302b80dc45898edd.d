/root/repo/target/debug/deps/frost_fuzz-302b80dc45898edd.d: crates/fuzz/src/lib.rs crates/fuzz/src/campaign.rs crates/fuzz/src/gen.rs crates/fuzz/src/validate.rs

/root/repo/target/debug/deps/frost_fuzz-302b80dc45898edd: crates/fuzz/src/lib.rs crates/fuzz/src/campaign.rs crates/fuzz/src/gen.rs crates/fuzz/src/validate.rs

crates/fuzz/src/lib.rs:
crates/fuzz/src/campaign.rs:
crates/fuzz/src/gen.rs:
crates/fuzz/src/validate.rs:
