/root/repo/target/debug/deps/frost_rng-9ddd16589fc4bfc5.d: crates/rng/src/lib.rs

/root/repo/target/debug/deps/frost_rng-9ddd16589fc4bfc5: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
