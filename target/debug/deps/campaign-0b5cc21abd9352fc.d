/root/repo/target/debug/deps/campaign-0b5cc21abd9352fc.d: crates/frost/../../tests/campaign.rs

/root/repo/target/debug/deps/campaign-0b5cc21abd9352fc: crates/frost/../../tests/campaign.rs

crates/frost/../../tests/campaign.rs:
