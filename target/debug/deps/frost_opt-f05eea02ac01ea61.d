/root/repo/target/debug/deps/frost_opt-f05eea02ac01ea61.d: crates/opt/src/lib.rs crates/opt/src/codegenprepare.rs crates/opt/src/dce.rs crates/opt/src/gvn.rs crates/opt/src/indvar.rs crates/opt/src/inline.rs crates/opt/src/instcombine.rs crates/opt/src/jump_threading.rs crates/opt/src/licm.rs crates/opt/src/loop_sink.rs crates/opt/src/loop_unswitch.rs crates/opt/src/pass.rs crates/opt/src/reassociate.rs crates/opt/src/sccp.rs crates/opt/src/simplifycfg.rs crates/opt/src/util.rs

/root/repo/target/debug/deps/frost_opt-f05eea02ac01ea61: crates/opt/src/lib.rs crates/opt/src/codegenprepare.rs crates/opt/src/dce.rs crates/opt/src/gvn.rs crates/opt/src/indvar.rs crates/opt/src/inline.rs crates/opt/src/instcombine.rs crates/opt/src/jump_threading.rs crates/opt/src/licm.rs crates/opt/src/loop_sink.rs crates/opt/src/loop_unswitch.rs crates/opt/src/pass.rs crates/opt/src/reassociate.rs crates/opt/src/sccp.rs crates/opt/src/simplifycfg.rs crates/opt/src/util.rs

crates/opt/src/lib.rs:
crates/opt/src/codegenprepare.rs:
crates/opt/src/dce.rs:
crates/opt/src/gvn.rs:
crates/opt/src/indvar.rs:
crates/opt/src/inline.rs:
crates/opt/src/instcombine.rs:
crates/opt/src/jump_threading.rs:
crates/opt/src/licm.rs:
crates/opt/src/loop_sink.rs:
crates/opt/src/loop_unswitch.rs:
crates/opt/src/pass.rs:
crates/opt/src/reassociate.rs:
crates/opt/src/sccp.rs:
crates/opt/src/simplifycfg.rs:
crates/opt/src/util.rs:
