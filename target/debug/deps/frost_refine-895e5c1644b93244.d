/root/repo/target/debug/deps/frost_refine-895e5c1644b93244.d: crates/refine/src/lib.rs crates/refine/src/check.rs crates/refine/src/inputs.rs crates/refine/src/lattice.rs

/root/repo/target/debug/deps/libfrost_refine-895e5c1644b93244.rlib: crates/refine/src/lib.rs crates/refine/src/check.rs crates/refine/src/inputs.rs crates/refine/src/lattice.rs

/root/repo/target/debug/deps/libfrost_refine-895e5c1644b93244.rmeta: crates/refine/src/lib.rs crates/refine/src/check.rs crates/refine/src/inputs.rs crates/refine/src/lattice.rs

crates/refine/src/lib.rs:
crates/refine/src/check.rs:
crates/refine/src/inputs.rs:
crates/refine/src/lattice.rs:
