/root/repo/target/debug/deps/frost_cc-3d4042764a096d63.d: crates/cc/src/lib.rs crates/cc/src/ast.rs crates/cc/src/irgen.rs crates/cc/src/parse.rs

/root/repo/target/debug/deps/libfrost_cc-3d4042764a096d63.rlib: crates/cc/src/lib.rs crates/cc/src/ast.rs crates/cc/src/irgen.rs crates/cc/src/parse.rs

/root/repo/target/debug/deps/libfrost_cc-3d4042764a096d63.rmeta: crates/cc/src/lib.rs crates/cc/src/ast.rs crates/cc/src/irgen.rs crates/cc/src/parse.rs

crates/cc/src/lib.rs:
crates/cc/src/ast.rs:
crates/cc/src/irgen.rs:
crates/cc/src/parse.rs:
