/root/repo/target/debug/deps/frost-f3c031615dd1a03d.d: crates/frost/src/lib.rs

/root/repo/target/debug/deps/libfrost-f3c031615dd1a03d.rlib: crates/frost/src/lib.rs

/root/repo/target/debug/deps/libfrost-f3c031615dd1a03d.rmeta: crates/frost/src/lib.rs

crates/frost/src/lib.rs:
