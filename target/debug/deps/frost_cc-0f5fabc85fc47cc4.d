/root/repo/target/debug/deps/frost_cc-0f5fabc85fc47cc4.d: crates/cc/src/lib.rs crates/cc/src/ast.rs crates/cc/src/irgen.rs crates/cc/src/parse.rs

/root/repo/target/debug/deps/frost_cc-0f5fabc85fc47cc4: crates/cc/src/lib.rs crates/cc/src/ast.rs crates/cc/src/irgen.rs crates/cc/src/parse.rs

crates/cc/src/lib.rs:
crates/cc/src/ast.rs:
crates/cc/src/irgen.rs:
crates/cc/src/parse.rs:
