/root/repo/target/debug/deps/frost_backend-cedccd872f713c49.d: crates/backend/src/lib.rs crates/backend/src/encode.rs crates/backend/src/isel.rs crates/backend/src/mir.rs crates/backend/src/regalloc.rs crates/backend/src/sim.rs

/root/repo/target/debug/deps/libfrost_backend-cedccd872f713c49.rlib: crates/backend/src/lib.rs crates/backend/src/encode.rs crates/backend/src/isel.rs crates/backend/src/mir.rs crates/backend/src/regalloc.rs crates/backend/src/sim.rs

/root/repo/target/debug/deps/libfrost_backend-cedccd872f713c49.rmeta: crates/backend/src/lib.rs crates/backend/src/encode.rs crates/backend/src/isel.rs crates/backend/src/mir.rs crates/backend/src/regalloc.rs crates/backend/src/sim.rs

crates/backend/src/lib.rs:
crates/backend/src/encode.rs:
crates/backend/src/isel.rs:
crates/backend/src/mir.rs:
crates/backend/src/regalloc.rs:
crates/backend/src/sim.rs:
