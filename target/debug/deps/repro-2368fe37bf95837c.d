/root/repo/target/debug/deps/repro-2368fe37bf95837c.d: crates/bench/src/bin/repro.rs

/root/repo/target/debug/deps/repro-2368fe37bf95837c: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
