/root/repo/target/debug/deps/frost_workloads-0b6242577a919d12.d: crates/workloads/src/lib.rs crates/workloads/src/lnt.rs crates/workloads/src/single_file.rs crates/workloads/src/spec.rs

/root/repo/target/debug/deps/frost_workloads-0b6242577a919d12: crates/workloads/src/lib.rs crates/workloads/src/lnt.rs crates/workloads/src/single_file.rs crates/workloads/src/spec.rs

crates/workloads/src/lib.rs:
crates/workloads/src/lnt.rs:
crates/workloads/src/single_file.rs:
crates/workloads/src/spec.rs:
