/root/repo/target/debug/deps/frost_bench-988dd3b271a7d6f1.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/harness.rs crates/bench/src/microbench.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/frost_bench-988dd3b271a7d6f1: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/harness.rs crates/bench/src/microbench.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/harness.rs:
crates/bench/src/microbench.rs:
crates/bench/src/table.rs:
