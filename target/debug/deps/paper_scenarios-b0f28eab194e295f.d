/root/repo/target/debug/deps/paper_scenarios-b0f28eab194e295f.d: crates/frost/../../tests/paper_scenarios.rs

/root/repo/target/debug/deps/paper_scenarios-b0f28eab194e295f: crates/frost/../../tests/paper_scenarios.rs

crates/frost/../../tests/paper_scenarios.rs:
