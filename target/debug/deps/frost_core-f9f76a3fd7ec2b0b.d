/root/repo/target/debug/deps/frost_core-f9f76a3fd7ec2b0b.d: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/error.rs crates/core/src/exec.rs crates/core/src/mem.rs crates/core/src/ops.rs crates/core/src/outcome.rs crates/core/src/sem.rs crates/core/src/val.rs

/root/repo/target/debug/deps/frost_core-f9f76a3fd7ec2b0b: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/error.rs crates/core/src/exec.rs crates/core/src/mem.rs crates/core/src/ops.rs crates/core/src/outcome.rs crates/core/src/sem.rs crates/core/src/val.rs

crates/core/src/lib.rs:
crates/core/src/cache.rs:
crates/core/src/error.rs:
crates/core/src/exec.rs:
crates/core/src/mem.rs:
crates/core/src/ops.rs:
crates/core/src/outcome.rs:
crates/core/src/sem.rs:
crates/core/src/val.rs:
