/root/repo/target/debug/deps/frost_backend-5f055ef6b214fedd.d: crates/backend/src/lib.rs crates/backend/src/encode.rs crates/backend/src/isel.rs crates/backend/src/mir.rs crates/backend/src/regalloc.rs crates/backend/src/sim.rs

/root/repo/target/debug/deps/frost_backend-5f055ef6b214fedd: crates/backend/src/lib.rs crates/backend/src/encode.rs crates/backend/src/isel.rs crates/backend/src/mir.rs crates/backend/src/regalloc.rs crates/backend/src/sim.rs

crates/backend/src/lib.rs:
crates/backend/src/encode.rs:
crates/backend/src/isel.rs:
crates/backend/src/mir.rs:
crates/backend/src/regalloc.rs:
crates/backend/src/sim.rs:
