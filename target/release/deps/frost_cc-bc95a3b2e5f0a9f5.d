/root/repo/target/release/deps/frost_cc-bc95a3b2e5f0a9f5.d: crates/cc/src/lib.rs crates/cc/src/ast.rs crates/cc/src/irgen.rs crates/cc/src/parse.rs

/root/repo/target/release/deps/libfrost_cc-bc95a3b2e5f0a9f5.rlib: crates/cc/src/lib.rs crates/cc/src/ast.rs crates/cc/src/irgen.rs crates/cc/src/parse.rs

/root/repo/target/release/deps/libfrost_cc-bc95a3b2e5f0a9f5.rmeta: crates/cc/src/lib.rs crates/cc/src/ast.rs crates/cc/src/irgen.rs crates/cc/src/parse.rs

crates/cc/src/lib.rs:
crates/cc/src/ast.rs:
crates/cc/src/irgen.rs:
crates/cc/src/parse.rs:
