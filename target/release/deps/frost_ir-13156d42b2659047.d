/root/repo/target/release/deps/frost_ir-13156d42b2659047.d: crates/ir/src/lib.rs crates/ir/src/analysis/mod.rs crates/ir/src/analysis/known_bits.rs crates/ir/src/analysis/scev.rs crates/ir/src/builder.rs crates/ir/src/cfg.rs crates/ir/src/dom.rs crates/ir/src/function.rs crates/ir/src/inst.rs crates/ir/src/loops.rs crates/ir/src/parse.rs crates/ir/src/print.rs crates/ir/src/types.rs crates/ir/src/value.rs crates/ir/src/verify.rs

/root/repo/target/release/deps/libfrost_ir-13156d42b2659047.rlib: crates/ir/src/lib.rs crates/ir/src/analysis/mod.rs crates/ir/src/analysis/known_bits.rs crates/ir/src/analysis/scev.rs crates/ir/src/builder.rs crates/ir/src/cfg.rs crates/ir/src/dom.rs crates/ir/src/function.rs crates/ir/src/inst.rs crates/ir/src/loops.rs crates/ir/src/parse.rs crates/ir/src/print.rs crates/ir/src/types.rs crates/ir/src/value.rs crates/ir/src/verify.rs

/root/repo/target/release/deps/libfrost_ir-13156d42b2659047.rmeta: crates/ir/src/lib.rs crates/ir/src/analysis/mod.rs crates/ir/src/analysis/known_bits.rs crates/ir/src/analysis/scev.rs crates/ir/src/builder.rs crates/ir/src/cfg.rs crates/ir/src/dom.rs crates/ir/src/function.rs crates/ir/src/inst.rs crates/ir/src/loops.rs crates/ir/src/parse.rs crates/ir/src/print.rs crates/ir/src/types.rs crates/ir/src/value.rs crates/ir/src/verify.rs

crates/ir/src/lib.rs:
crates/ir/src/analysis/mod.rs:
crates/ir/src/analysis/known_bits.rs:
crates/ir/src/analysis/scev.rs:
crates/ir/src/builder.rs:
crates/ir/src/cfg.rs:
crates/ir/src/dom.rs:
crates/ir/src/function.rs:
crates/ir/src/inst.rs:
crates/ir/src/loops.rs:
crates/ir/src/parse.rs:
crates/ir/src/print.rs:
crates/ir/src/types.rs:
crates/ir/src/value.rs:
crates/ir/src/verify.rs:
