/root/repo/target/release/deps/widening-95826e38cfe74377.d: crates/bench/benches/widening.rs

/root/repo/target/release/deps/widening-95826e38cfe74377: crates/bench/benches/widening.rs

crates/bench/benches/widening.rs:
