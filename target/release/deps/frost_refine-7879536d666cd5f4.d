/root/repo/target/release/deps/frost_refine-7879536d666cd5f4.d: crates/refine/src/lib.rs crates/refine/src/check.rs crates/refine/src/inputs.rs crates/refine/src/lattice.rs

/root/repo/target/release/deps/libfrost_refine-7879536d666cd5f4.rlib: crates/refine/src/lib.rs crates/refine/src/check.rs crates/refine/src/inputs.rs crates/refine/src/lattice.rs

/root/repo/target/release/deps/libfrost_refine-7879536d666cd5f4.rmeta: crates/refine/src/lib.rs crates/refine/src/check.rs crates/refine/src/inputs.rs crates/refine/src/lattice.rs

crates/refine/src/lib.rs:
crates/refine/src/check.rs:
crates/refine/src/inputs.rs:
crates/refine/src/lattice.rs:
