/root/repo/target/release/deps/optfuzz_validate-b0ea6b827828e003.d: crates/bench/benches/optfuzz_validate.rs

/root/repo/target/release/deps/optfuzz_validate-b0ea6b827828e003: crates/bench/benches/optfuzz_validate.rs

crates/bench/benches/optfuzz_validate.rs:
