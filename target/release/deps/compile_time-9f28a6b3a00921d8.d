/root/repo/target/release/deps/compile_time-9f28a6b3a00921d8.d: crates/bench/benches/compile_time.rs

/root/repo/target/release/deps/compile_time-9f28a6b3a00921d8: crates/bench/benches/compile_time.rs

crates/bench/benches/compile_time.rs:
