/root/repo/target/release/deps/repro-550f2625b2764331.d: crates/bench/src/bin/repro.rs

/root/repo/target/release/deps/repro-550f2625b2764331: crates/bench/src/bin/repro.rs

crates/bench/src/bin/repro.rs:
