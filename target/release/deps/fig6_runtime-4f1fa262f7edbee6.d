/root/repo/target/release/deps/fig6_runtime-4f1fa262f7edbee6.d: crates/bench/benches/fig6_runtime.rs

/root/repo/target/release/deps/fig6_runtime-4f1fa262f7edbee6: crates/bench/benches/fig6_runtime.rs

crates/bench/benches/fig6_runtime.rs:
