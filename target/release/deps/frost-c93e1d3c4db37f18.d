/root/repo/target/release/deps/frost-c93e1d3c4db37f18.d: crates/frost/src/lib.rs

/root/repo/target/release/deps/libfrost-c93e1d3c4db37f18.rlib: crates/frost/src/lib.rs

/root/repo/target/release/deps/libfrost-c93e1d3c4db37f18.rmeta: crates/frost/src/lib.rs

crates/frost/src/lib.rs:
