/root/repo/target/release/deps/frost_core-4c8b8edd05595706.d: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/error.rs crates/core/src/exec.rs crates/core/src/mem.rs crates/core/src/ops.rs crates/core/src/outcome.rs crates/core/src/sem.rs crates/core/src/val.rs

/root/repo/target/release/deps/libfrost_core-4c8b8edd05595706.rlib: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/error.rs crates/core/src/exec.rs crates/core/src/mem.rs crates/core/src/ops.rs crates/core/src/outcome.rs crates/core/src/sem.rs crates/core/src/val.rs

/root/repo/target/release/deps/libfrost_core-4c8b8edd05595706.rmeta: crates/core/src/lib.rs crates/core/src/cache.rs crates/core/src/error.rs crates/core/src/exec.rs crates/core/src/mem.rs crates/core/src/ops.rs crates/core/src/outcome.rs crates/core/src/sem.rs crates/core/src/val.rs

crates/core/src/lib.rs:
crates/core/src/cache.rs:
crates/core/src/error.rs:
crates/core/src/exec.rs:
crates/core/src/mem.rs:
crates/core/src/ops.rs:
crates/core/src/outcome.rs:
crates/core/src/sem.rs:
crates/core/src/val.rs:
