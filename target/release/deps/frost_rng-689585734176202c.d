/root/repo/target/release/deps/frost_rng-689585734176202c.d: crates/rng/src/lib.rs

/root/repo/target/release/deps/libfrost_rng-689585734176202c.rlib: crates/rng/src/lib.rs

/root/repo/target/release/deps/libfrost_rng-689585734176202c.rmeta: crates/rng/src/lib.rs

crates/rng/src/lib.rs:
