/root/repo/target/release/deps/frost_bench-59e8dbf6ba33955f.d: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/harness.rs crates/bench/src/microbench.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libfrost_bench-59e8dbf6ba33955f.rlib: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/harness.rs crates/bench/src/microbench.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libfrost_bench-59e8dbf6ba33955f.rmeta: crates/bench/src/lib.rs crates/bench/src/experiments.rs crates/bench/src/harness.rs crates/bench/src/microbench.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments.rs:
crates/bench/src/harness.rs:
crates/bench/src/microbench.rs:
crates/bench/src/table.rs:
