/root/repo/target/release/deps/frost_workloads-f69cd96250e30339.d: crates/workloads/src/lib.rs crates/workloads/src/lnt.rs crates/workloads/src/single_file.rs crates/workloads/src/spec.rs

/root/repo/target/release/deps/libfrost_workloads-f69cd96250e30339.rlib: crates/workloads/src/lib.rs crates/workloads/src/lnt.rs crates/workloads/src/single_file.rs crates/workloads/src/spec.rs

/root/repo/target/release/deps/libfrost_workloads-f69cd96250e30339.rmeta: crates/workloads/src/lib.rs crates/workloads/src/lnt.rs crates/workloads/src/single_file.rs crates/workloads/src/spec.rs

crates/workloads/src/lib.rs:
crates/workloads/src/lnt.rs:
crates/workloads/src/single_file.rs:
crates/workloads/src/spec.rs:
