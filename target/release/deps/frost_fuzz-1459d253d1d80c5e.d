/root/repo/target/release/deps/frost_fuzz-1459d253d1d80c5e.d: crates/fuzz/src/lib.rs crates/fuzz/src/campaign.rs crates/fuzz/src/gen.rs crates/fuzz/src/validate.rs

/root/repo/target/release/deps/libfrost_fuzz-1459d253d1d80c5e.rlib: crates/fuzz/src/lib.rs crates/fuzz/src/campaign.rs crates/fuzz/src/gen.rs crates/fuzz/src/validate.rs

/root/repo/target/release/deps/libfrost_fuzz-1459d253d1d80c5e.rmeta: crates/fuzz/src/lib.rs crates/fuzz/src/campaign.rs crates/fuzz/src/gen.rs crates/fuzz/src/validate.rs

crates/fuzz/src/lib.rs:
crates/fuzz/src/campaign.rs:
crates/fuzz/src/gen.rs:
crates/fuzz/src/validate.rs:
