/root/repo/target/release/deps/semantics_engine-abea765daf46a9fd.d: crates/bench/benches/semantics_engine.rs

/root/repo/target/release/deps/semantics_engine-abea765daf46a9fd: crates/bench/benches/semantics_engine.rs

crates/bench/benches/semantics_engine.rs:
