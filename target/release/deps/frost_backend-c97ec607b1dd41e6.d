/root/repo/target/release/deps/frost_backend-c97ec607b1dd41e6.d: crates/backend/src/lib.rs crates/backend/src/encode.rs crates/backend/src/isel.rs crates/backend/src/mir.rs crates/backend/src/regalloc.rs crates/backend/src/sim.rs

/root/repo/target/release/deps/libfrost_backend-c97ec607b1dd41e6.rlib: crates/backend/src/lib.rs crates/backend/src/encode.rs crates/backend/src/isel.rs crates/backend/src/mir.rs crates/backend/src/regalloc.rs crates/backend/src/sim.rs

/root/repo/target/release/deps/libfrost_backend-c97ec607b1dd41e6.rmeta: crates/backend/src/lib.rs crates/backend/src/encode.rs crates/backend/src/isel.rs crates/backend/src/mir.rs crates/backend/src/regalloc.rs crates/backend/src/sim.rs

crates/backend/src/lib.rs:
crates/backend/src/encode.rs:
crates/backend/src/isel.rs:
crates/backend/src/mir.rs:
crates/backend/src/regalloc.rs:
crates/backend/src/sim.rs:
