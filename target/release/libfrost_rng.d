/root/repo/target/release/libfrost_rng.rlib: /root/repo/crates/rng/src/lib.rs
