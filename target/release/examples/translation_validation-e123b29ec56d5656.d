/root/repo/target/release/examples/translation_validation-e123b29ec56d5656.d: crates/frost/../../examples/translation_validation.rs

/root/repo/target/release/examples/translation_validation-e123b29ec56d5656: crates/frost/../../examples/translation_validation.rs

crates/frost/../../examples/translation_validation.rs:
