/root/repo/target/release/examples/miscompilation_hunt-2c67f15c7515d14a.d: crates/frost/../../examples/miscompilation_hunt.rs

/root/repo/target/release/examples/miscompilation_hunt-2c67f15c7515d14a: crates/frost/../../examples/miscompilation_hunt.rs

crates/frost/../../examples/miscompilation_hunt.rs:
