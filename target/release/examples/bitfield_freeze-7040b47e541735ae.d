/root/repo/target/release/examples/bitfield_freeze-7040b47e541735ae.d: crates/frost/../../examples/bitfield_freeze.rs

/root/repo/target/release/examples/bitfield_freeze-7040b47e541735ae: crates/frost/../../examples/bitfield_freeze.rs

crates/frost/../../examples/bitfield_freeze.rs:
