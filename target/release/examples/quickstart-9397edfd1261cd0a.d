/root/repo/target/release/examples/quickstart-9397edfd1261cd0a.d: crates/frost/../../examples/quickstart.rs

/root/repo/target/release/examples/quickstart-9397edfd1261cd0a: crates/frost/../../examples/quickstart.rs

crates/frost/../../examples/quickstart.rs:
