#!/usr/bin/env sh
# The tier-1 gate: everything a PR must pass, in the order a failure is
# cheapest to report. Run from anywhere; operates on the workspace root.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> plan-vs-reference differential smoke (tests/exec_plan.rs)"
# A thin §6 stride through both the plan engine and the retained
# reference tree-walk, under both semantics — keeps the reference
# interpreter from silently rotting.
cargo test -q --release -p frost --test exec_plan differential_smoke

echo "==> tiny-memory differential gate (tests/exec_plan.rs)"
# Memory programs (alloca/load/store/gep/int<->ptr casts) through both
# engines, crossed against every <=2-byte initial memory — outcome
# sets must be byte-identical, including deferred-vs-immediate OOB UB.
cargo test -q --release -p frost --test exec_plan \
    memory_programs_match_reference_over_every_tiny_memory

echo "==> telemetry smoke (docs/OBSERVABILITY.md contract)"
# The quickstart with tracing on must produce a non-empty, schema-valid
# telemetry.jsonl; the sweep's own validator is the checker, so the
# gate needs no python/jq.
rm -f telemetry.jsonl
FROST_TRACE=json FROST_TRACE_FILE=telemetry.jsonl \
    cargo run -q --release -p frost --example quickstart >/dev/null
test -s telemetry.jsonl || {
    echo "ci: telemetry.jsonl missing or empty" >&2
    exit 1
}
cargo run -q --release -p frost-bench --bin repro -- --validate-trace telemetry.jsonl

echo "==> §6 sweep with tracing on (emits telemetry.jsonl artifact)"
FROST_TRACE_FILE=telemetry.jsonl \
    cargo run -q --release -p frost-bench --bin repro -- \
    --experiment optfuzz --budget 200 --trace --counters

echo "==> full unsampled 2-inst exhaustive sweep (wall-clock budget)"
# The complete 2,661,792-function i2 arithmetic space through fixed
# InstCombine on Engine::Auto — ~20 seconds at the measured ~150k fn/s.
# The deadline is a parachute, not a sample: if the box is slow enough
# to hit it, the checkpoint line below fails the gate loudly instead of
# silently shipping a partial sweep. The run also emits the
# machine-readable BENCH_sweep.json benchmark record, which must pass
# the telemetry validator.
rm -f sweep-ci.jsonl BENCH_sweep.json
cargo run -q --release -p frost-bench --bin repro -- \
    --experiment sweep --seconds 600 --checkpoint sweep-ci.jsonl \
    --bench-json BENCH_sweep.json \
    | tee sweep-ci.out
grep -q "complete=true" sweep-ci.out || {
    echo "ci: full 2-inst sweep did not complete within budget" >&2
    exit 1
}
grep -q "violations=0" sweep-ci.out || {
    echo "ci: full 2-inst sweep found violations in fixed mode" >&2
    exit 1
}
cargo run -q --release -p frost-bench --bin repro -- \
    --validate-trace BENCH_sweep.json

echo "==> memory-domain exhaustive sweep (2-inst, every initial memory)"
# The block-based memory domain enters the perf trajectory: the full
# 2-instruction memory-program space (alloca/load/store/gep/casts ×
# every {0x00,0x01,0xFF,poison} initial memory) through the fixed
# alias-aware GVN must complete with zero violations, and its
# BENCH_mem.json record must pass the telemetry validator.
rm -f BENCH_mem.json
cargo run -q --release -p frost-bench --bin repro -- \
    --experiment sweep --mem --seconds 600 \
    --bench-json BENCH_mem.json \
    | tee sweep-mem-ci.out
grep -q "complete=true" sweep-mem-ci.out || {
    echo "ci: 2-inst memory sweep did not complete within budget" >&2
    exit 1
}
grep -q "violations=0" sweep-mem-ci.out || {
    echo "ci: memory sweep found violations in fixed alias-aware mode" >&2
    exit 1
}
cargo run -q --release -p frost-bench --bin repro -- \
    --validate-trace BENCH_mem.json
rm -f sweep-mem-ci.out

echo "==> guarded-program exhaustive sweep (2-inst, assume/unreachable)"
# The guarded domain: every 2-instruction program over raw, compared,
# and frozen assume facts (poison constants included) through the fixed
# assume-simplify + guard-dce band must complete with zero violations,
# and its BENCH_guard.json record must pass the telemetry validator.
# Guarded functions are plan-only (frost.core.bitslice.guard_rejects),
# so this also exercises the Engine::Auto fallback path at scale.
rm -f BENCH_guard.json
cargo run -q --release -p frost-bench --bin repro -- \
    --experiment sweep --guards --seconds 600 \
    --bench-json BENCH_guard.json \
    | tee sweep-guard-ci.out
grep -q "complete=true" sweep-guard-ci.out || {
    echo "ci: 2-inst guarded sweep did not complete within budget" >&2
    exit 1
}
grep -q "violations=0" sweep-guard-ci.out || {
    echo "ci: guarded sweep found violations in the fixed guard band" >&2
    exit 1
}
cargo run -q --release -p frost-bench --bin repro -- \
    --validate-trace BENCH_guard.json
rm -f sweep-guard-ci.out

echo "==> 3-inst sharded sweep slice + merge smoke (bounded)"
# A bounded slice of the 3-instruction space (6.3B functions unpruned,
# 87.5M after generation-time pruning) as a 2-process campaign: each
# shard sweeps its residue class under a per-shard budget, then the
# coordinator merges the checkpoints. The merged summary must be
# byte-identical to a single-process sweep of the same 2N-function
# prefix — the union-equals-whole guarantee the campaign tests prove,
# exercised end-to-end through the CLI. Stays well inside the
# 10-minute parachute (~1 s of checking per leg at measured rates).
rm -f sweep-shard0.jsonl sweep-shard1.jsonl sweep-merged.jsonl
cargo run -q --release -p frost-bench --bin repro -- \
    --experiment sweep --insts 3 --prune --budget 20000 \
    --shards 2 --shard-id 0 --checkpoint sweep-shard0.jsonl >/dev/null
cargo run -q --release -p frost-bench --bin repro -- \
    --experiment sweep --insts 3 --prune --budget 20000 \
    --shards 2 --shard-id 1 --checkpoint sweep-shard1.jsonl >/dev/null
cargo run -q --release -p frost-bench --bin repro -- \
    --experiment sweep --merge sweep-shard0.jsonl --merge sweep-shard1.jsonl \
    --checkpoint sweep-merged.jsonl \
    | grep "^sweep:" > sweep-merged.out
cargo run -q --release -p frost-bench --bin repro -- \
    --experiment sweep --insts 3 --prune --budget 40000 \
    | grep "^sweep:" > sweep-single3.out
cmp sweep-merged.out sweep-single3.out || {
    echo "ci: merged 2-shard sweep diverges from single-process reference" >&2
    diff sweep-merged.out sweep-single3.out >&2 || true
    exit 1
}
rm -f sweep-shard0.jsonl sweep-shard1.jsonl sweep-merged.jsonl \
    sweep-merged.out sweep-single3.out

echo "==> textual IR roundtrip fidelity (full §6 corpus + 10k fuzz sample)"
# Every function of the unsampled §6 exhaustive spaces, a 10k random
# sample of the deeper spaces, and every workload module (pre- and
# post-O2) must survive print -> parse with its FunctionKey intact.
cargo run -q --release -p frost-bench --bin repro -- \
    --experiment roundtrip --fuzz 10000 \
    | tee roundtrip-ci.out
grep -q "^roundtrip: checked=" roundtrip-ci.out || {
    echo "ci: roundtrip gate produced no summary" >&2
    exit 1
}
grep "^roundtrip: " roundtrip-ci.out | grep -q "mismatches=0" || {
    echo "ci: print->parse roundtrip mismatches found" >&2
    exit 1
}
rm -f roundtrip-ci.out

echo "==> doc examples parse (README / IR_REFERENCE / DESIGN + examples/*.fir)"
# Every fenced fir block in the documentation and every committed
# example module must parse; crates/ir/tests/doc_examples.rs is the
# checker, so the gate needs no extra tooling.
cargo test -q --release -p frost-ir --test doc_examples

echo "==> repro --input smoke (the 5.4 load-widening pair)"
# The sound vector widening and the intentionally-UNSOUND scalar one
# must both run to a verdict (exit 0 — verdicts are results, not
# errors) and land on the expected sides.
cargo run -q --release -p frost-bench --bin repro -- \
    --input examples/load_widen_vector.fir | tee input-ci.out
grep -q "@widen -> @widen.tgt: sound" input-ci.out || {
    echo "ci: vector load widening no longer validates as sound" >&2
    exit 1
}
cargo run -q --release -p frost-bench --bin repro -- \
    --input examples/load_widen_scalar.fir | tee input-ci.out
grep -q "@widen -> @widen.tgt: UNSOUND" input-ci.out || {
    echo "ci: scalar load widening no longer caught as unsound" >&2
    exit 1
}
rm -f input-ci.out

echo "==> checkpoint kill/resume determinism smoke"
# Interrupt a small sweep mid-flight with a tight budget, resume it
# from the checkpoint, and require the final summary to be identical
# to a single uninterrupted run (the summary excludes wall-clock
# columns by construction).
rm -f sweep-resume.jsonl
cargo run -q --release -p frost-bench --bin repro -- \
    --experiment sweep --insts 1 --budget 100 --checkpoint sweep-resume.jsonl \
    >/dev/null
grep -q '"done":false' sweep-resume.jsonl || {
    echo "ci: interrupted sweep checkpoint claims completion" >&2
    exit 1
}
cargo run -q --release -p frost-bench --bin repro -- \
    --experiment sweep --insts 1 --checkpoint sweep-resume.jsonl \
    | grep "^sweep:" > sweep-resumed.out
cargo run -q --release -p frost-bench --bin repro -- \
    --experiment sweep --insts 1 \
    | grep "^sweep:" > sweep-oneshot.out
cmp sweep-resumed.out sweep-oneshot.out || {
    echo "ci: resumed sweep diverges from uninterrupted run" >&2
    diff sweep-resumed.out sweep-oneshot.out >&2 || true
    exit 1
}
rm -f sweep-ci.jsonl sweep-ci.out sweep-resume.jsonl sweep-resumed.out sweep-oneshot.out

echo "ci: all green"
