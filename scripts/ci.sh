#!/usr/bin/env sh
# The tier-1 gate: everything a PR must pass, in the order a failure is
# cheapest to report. Run from anywhere; operates on the workspace root.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "ci: all green"
