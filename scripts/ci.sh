#!/usr/bin/env sh
# The tier-1 gate: everything a PR must pass, in the order a failure is
# cheapest to report. Run from anywhere; operates on the workspace root.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --workspace --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> plan-vs-reference differential smoke (tests/exec_plan.rs)"
# A thin §6 stride through both the plan engine and the retained
# reference tree-walk, under both semantics — keeps the reference
# interpreter from silently rotting.
cargo test -q --release -p frost --test exec_plan differential_smoke

echo "==> telemetry smoke (docs/OBSERVABILITY.md contract)"
# The quickstart with tracing on must produce a non-empty, schema-valid
# telemetry.jsonl; the sweep's own validator is the checker, so the
# gate needs no python/jq.
rm -f telemetry.jsonl
FROST_TRACE=json FROST_TRACE_FILE=telemetry.jsonl \
    cargo run -q --release -p frost --example quickstart >/dev/null
test -s telemetry.jsonl || {
    echo "ci: telemetry.jsonl missing or empty" >&2
    exit 1
}
cargo run -q --release -p frost-bench --bin repro -- --validate-trace telemetry.jsonl

echo "==> §6 sweep with tracing on (emits telemetry.jsonl artifact)"
FROST_TRACE_FILE=telemetry.jsonl \
    cargo run -q --release -p frost-bench --bin repro -- \
    --experiment optfuzz --budget 200 --trace --counters

echo "ci: all green"
