//! Differential tests for the plan-based execution engine: outcome
//! sets produced by [`frost::core::plan`] must be byte-identical to the
//! retained [`frost::core::exec::reference`] tree-walk — same sets,
//! same limit errors, same error messages — over §6-style corpora
//! under both semantics, and campaign results built on plans must stay
//! deterministic across worker counts.

use frost::core::exec::reference;
use frost::core::{uninit_fill, Limits, Machine, Memory, ModulePlan, Semantics};
use frost::fuzz::{enumerate_functions, random_functions, Campaign, GenConfig};
use frost::ir::{Function, Module};
use frost::opt::{Dce, InstCombine, Pass, PipelineMode};
use frost::refine::{enumerate_inputs, enumerate_memories, InputOptions};

/// Checks one function: every enumerable input's full outcome set (or
/// enumeration error) must agree exactly between the plan engine and
/// the reference interpreter.
fn assert_plan_matches_reference(f: &Function, sem: Semantics) {
    let name = f.name.clone();
    let mut module = Module::new();
    module.functions.push(f.clone());

    let opts = InputOptions::new().with_undef(sem.has_undef);
    let (tuples, block_sizes) =
        enumerate_inputs(module.function(&name).unwrap(), &opts).expect("§6 inputs enumerate");
    let mem = Memory::with_initial_blocks(&block_sizes, uninit_fill(&sem));
    let limits = Limits::default();

    let plan = ModulePlan::compile(&module, sem);
    let idx = plan.function_index(&name).unwrap();
    let mut machine = Machine::new();
    for args in &tuples {
        let via_plan = plan.enumerate(idx, args, &mem, limits, &mut machine);
        let via_reference = reference::enumerate_outcomes(&module, &name, args, &mem, sem, limits);
        assert_eq!(
            via_plan, via_reference,
            "engines diverged under {} on args {args:?} for:\n{module}",
            sem.name
        );
    }
}

fn both_semantics() -> [Semantics; 2] {
    [Semantics::proposed(), Semantics::legacy_gvn()]
}

/// The quick gate run by ci.sh: a thin stride of the §6 arithmetic
/// space through both engines under both semantics.
#[test]
fn differential_smoke_over_section6_stride() {
    for sem in both_semantics() {
        for f in enumerate_functions(GenConfig::arithmetic(2))
            .step_by(997)
            .take(30)
        {
            assert_plan_matches_reference(&f, sem);
        }
    }
}

/// A denser stride over the select/icmp/freeze space, including undef
/// operands under the legacy semantics (the §3.1 hunting ground).
#[test]
fn section6_select_space_stride_matches_reference() {
    for sem in both_semantics() {
        let cfg = if sem.has_undef {
            GenConfig::with_selects(2).with_undef()
        } else {
            GenConfig::with_selects(2)
        };
        for f in enumerate_functions(cfg).step_by(463).take(60) {
            assert_plan_matches_reference(&f, sem);
        }
    }
}

/// The tiny-memory differential gate run by ci.sh: memory programs
/// (alloca, load, store, gep, the int↔ptr casts) through both engines,
/// with every argument tuple crossed against **every** ≤2-byte initial
/// memory — each byte of the pointer parameter's block ranges over the
/// reduced alphabet {0x00, 0x01, 0xFF, poison}. Outcome sets must be
/// byte-identical, including deferred-UB poison and immediate-UB
/// verdicts from out-of-bounds accesses.
#[test]
fn memory_programs_match_reference_over_every_tiny_memory() {
    let sem = Semantics::proposed();
    let opts = InputOptions::new()
        .with_bytes_per_pointer(2)
        .with_memory_values(true);
    let check = |f: &Function| {
        let name = f.name.clone();
        let mut module = Module::new();
        module.functions.push(f.clone());
        let (tuples, block_sizes) =
            enumerate_inputs(&module.functions[0], &opts).expect("memory inputs enumerate");
        let mems = enumerate_memories(&block_sizes, &opts, frost::core::uninit_fill(&sem))
            .expect("4^2 initial memories fit the cap");
        let limits = Limits::default();
        let plan = ModulePlan::compile(&module, sem);
        let idx = plan.function_index(&name).unwrap();
        let mut machine = Machine::new();
        for mem in &mems {
            for args in &tuples {
                let via_plan = plan.enumerate(idx, args, mem, limits, &mut machine);
                let via_reference =
                    reference::enumerate_outcomes(&module, &name, args, mem, sem, limits);
                assert_eq!(
                    via_plan, via_reference,
                    "engines diverged on args {args:?}, memory {mem:?} for:\n{module}"
                );
            }
        }
    };
    // The whole two-instruction space, then a stride of the three-
    // instruction space.
    for f in enumerate_functions(GenConfig::memory(2)) {
        check(&f);
    }
    for f in enumerate_functions(GenConfig::memory(3))
        .step_by(97)
        .take(40)
    {
        check(&f);
    }
}

/// Random three-instruction functions from the seeded generator — the
/// corpus shape `Campaign::run_random` feeds the engine.
#[test]
fn random_functions_match_reference() {
    for sem in both_semantics() {
        let cfg = if sem.has_undef {
            GenConfig::arithmetic(3).with_undef()
        } else {
            GenConfig::arithmetic(3)
        };
        for f in random_functions(cfg, 0xD1FF, 40) {
            assert_plan_matches_reference(&f, sem);
        }
    }
}

/// Campaigns run entirely on the plan engine; a corpus with known
/// legacy-InstCombine violations must report the identical violation
/// set at 1, 2, and 8 workers.
#[test]
fn plan_backed_campaign_is_deterministic_at_1_2_8_workers() {
    let cfg = GenConfig {
        ops: vec![frost::ir::BinOp::Mul],
        consts: vec![2],
        poison_const: false,
        flags: false,
        freeze: false,
        ..GenConfig::arithmetic(2)
    }
    .with_undef();
    let run = |workers: usize| {
        Campaign::new(Semantics::legacy_gvn())
            .with_workers(workers)
            .with_shard_size(5)
            .run_random(&cfg, 0xBEEF, 250, |m| {
                for f in &mut m.functions {
                    InstCombine::new(PipelineMode::Legacy).apply(f);
                    Dce::new().apply(f);
                    f.compact();
                }
            })
    };
    let one = run(1);
    assert!(
        !one.is_clean(),
        "corpus must produce violations for the determinism check to bite"
    );
    for workers in [2, 8] {
        let multi = run(workers);
        assert_eq!(
            one.violations, multi.violations,
            "plan-backed campaign diverged at {workers} workers"
        );
        assert_eq!(one.total, multi.total);
        assert_eq!(one.refined, multi.refined);
        assert_eq!(one.inconclusive, multi.inconclusive);
    }
}
