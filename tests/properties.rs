//! Randomized property tests over the core data structures and
//! semantic invariants listed in DESIGN.md.
//!
//! The workspace builds offline, so these run on the in-tree
//! deterministic generator (`frost-rng`) instead of a property-testing
//! framework: each property draws a few hundred samples from a
//! fixed-seed [`SmallRng`] and asserts on every one. Failures print the
//! sample, so any counterexample is reproducible by seed.

use frost::core::{
    enumerate_outcomes, lower, raise, undef_of, Bit, Limits, Memory, Outcome, Semantics, Val,
};
use frost::ir::value::{from_signed, to_signed, truncate};
use frost::ir::{function_to_string, parse_function, parse_module, Ty};
use frost::refine::{outcome_refines, val_refines};
use frost_rng::SmallRng;

const SAMPLES: usize = 300;

fn arb_bits(rng: &mut SmallRng) -> u32 {
    rng.gen_range(1..17) as u32
}

/// A defined or deferred value of an arbitrary small integer type.
fn arb_val(rng: &mut SmallRng) -> Val {
    let bits = arb_bits(rng);
    match rng.gen_range(0..3) {
        0 => Val::Poison,
        1 => Val::Undef(Ty::Int(bits)),
        _ => Val::int(bits, rng.next_u128()),
    }
}

fn arb_bit(rng: &mut SmallRng) -> Bit {
    match rng.gen_range(0..4) {
        0 => Bit::Zero,
        1 => Bit::One,
        2 => Bit::Poison,
        _ => Bit::Undef,
    }
}

/// DESIGN.md invariant 3: `ty↑(ty↓(v)) = v` for every value, including
/// poison and undef.
#[test]
fn lower_raise_round_trip() {
    let mut rng = SmallRng::seed_from_u64(101);
    for _ in 0..SAMPLES {
        let bits = arb_bits(&mut rng);
        let ty = Ty::Int(bits);
        let v = match rng.gen_range(0..3) {
            0 => Val::Poison,
            1 => undef_of(&ty),
            _ => Val::int(bits, rng.next_u128()),
        };
        assert_eq!(raise(&ty, &lower(&ty, &v)), v, "round trip broke on {v:?}");
    }
}

/// Vector round trip with per-element deferred values.
#[test]
fn vector_lower_raise_round_trip() {
    let mut rng = SmallRng::seed_from_u64(102);
    for _ in 0..SAMPLES {
        let len = rng.gen_range(1..6);
        let ty = Ty::vector(len as u32, Ty::Int(7));
        let v = Val::Vec(
            (0..len)
                .map(|_| match rng.gen_range(0..3) {
                    0 => Val::Poison,
                    1 => Val::Undef(Ty::Int(7)),
                    _ => Val::int(7, rng.next_u128()),
                })
                .collect(),
        );
        assert_eq!(raise(&ty, &lower(&ty, &v)), v, "round trip broke on {v:?}");
    }
}

/// Refinement is reflexive.
#[test]
fn refinement_reflexive() {
    let mut rng = SmallRng::seed_from_u64(103);
    for _ in 0..SAMPLES {
        let v = arb_val(&mut rng);
        assert!(val_refines(&v, &v), "not reflexive on {v:?}");
    }
}

/// Refinement is transitive.
#[test]
fn refinement_transitive() {
    let mut rng = SmallRng::seed_from_u64(104);
    for _ in 0..SAMPLES * 10 {
        let (a, b, c) = (arb_val(&mut rng), arb_val(&mut rng), arb_val(&mut rng));
        if val_refines(&a, &b) && val_refines(&b, &c) {
            assert!(val_refines(&a, &c), "not transitive on {a:?} {b:?} {c:?}");
        }
    }
}

/// Refinement is antisymmetric up to equality on this domain.
#[test]
fn refinement_antisymmetric() {
    let mut rng = SmallRng::seed_from_u64(105);
    for _ in 0..SAMPLES * 10 {
        let (a, b) = (arb_val(&mut rng), arb_val(&mut rng));
        if val_refines(&a, &b) && val_refines(&b, &a) {
            assert_eq!(a, b, "antisymmetry broke");
        }
    }
}

/// Signed round trip: `from_signed(to_signed(v)) == v`.
#[test]
fn signed_round_trip() {
    let mut rng = SmallRng::seed_from_u64(106);
    for _ in 0..SAMPLES {
        let bits = arb_bits(&mut rng);
        let v = truncate(rng.next_u128(), bits);
        assert_eq!(
            from_signed(to_signed(v, bits), bits),
            v,
            "bits={bits} v={v}"
        );
    }
}

/// Memory: a store followed by a load returns the stored bits, and
/// leaves all other bits untouched.
#[test]
fn memory_store_load_frame() {
    let mut rng = SmallRng::seed_from_u64(107);
    for _ in 0..SAMPLES {
        let size = rng.gen_range(1..16) as u32;
        let offset = rng.gen_range(0..size.min(8) as usize) as u32;
        let payload: Vec<Bit> = (0..8).map(|_| arb_bit(&mut rng)).collect();
        let mut m = Memory::uninit(size, Bit::Poison);
        let before = m.snapshot();
        let addr = Memory::BASE + offset;
        assert!(m.store(addr, &payload));
        assert_eq!(m.load(addr, 8), Some(payload.clone()));
        let after = m.snapshot();
        for (i, (b, a)) in before.iter().zip(&after).enumerate() {
            let bit_addr = i as u32;
            let touched = bit_addr >= offset * 8 && bit_addr < offset * 8 + 8;
            if !touched {
                assert_eq!(b, a, "untouched bit {i} changed");
            }
        }
    }
}

/// Parser/printer round trip on generated straight-line functions
/// (DESIGN.md invariant 7).
#[test]
fn parse_print_round_trip() {
    let mut rng = SmallRng::seed_from_u64(108);
    for _ in 0..60 {
        let seed = rng.next_u64();
        let cfg = frost::fuzz::GenConfig::with_selects(3);
        let funcs = frost::fuzz::random_functions(cfg, seed, 1);
        let printed = function_to_string(&funcs[0]);
        let reparsed = parse_function(&printed).expect("printer output parses");
        assert_eq!(function_to_string(&reparsed), printed, "seed={seed}");
    }
}

/// freeze output is never poison and is an identity on defined values
/// (DESIGN.md invariant 2) — via exhaustive enumeration of each sampled
/// input.
#[test]
fn freeze_is_total_and_identity_on_defined() {
    let mut rng = SmallRng::seed_from_u64(109);
    for _ in 0..60 {
        let bits = rng.gen_range(1..4) as u32;
        let raw = rng.next_u128();
        let poison = rng.gen_range(0..2) == 0;
        let src = format!(
            "define i{bits} @f(i{bits} %x) {{\nentry:\n  %a = freeze i{bits} %x\n  ret i{bits} %a\n}}"
        );
        let m = parse_module(&src).unwrap();
        let arg = if poison {
            Val::Poison
        } else {
            Val::int(bits, raw)
        };
        let set = enumerate_outcomes(
            &m,
            "f",
            std::slice::from_ref(&arg),
            &Memory::zeroed(0),
            Semantics::proposed(),
            Limits::default(),
        )
        .unwrap();
        assert!(!set.may_ub());
        for o in set.iter() {
            let v = o.ret_val().unwrap();
            assert!(v.is_defined(), "freeze output must be defined");
            if !poison {
                assert_eq!(v, &Val::int(bits, raw));
            }
        }
        if poison {
            assert_eq!(
                set.len() as u128,
                1 << bits,
                "freeze(poison) covers the type"
            );
        }
    }
}

/// Every behavior of an optimized (fixed InstCombine) function refines
/// some behavior of the original — sampled over the random generator
/// space (DESIGN.md invariant 4).
#[test]
fn instcombine_refines_on_random_functions() {
    use frost::opt::Pass;
    let mut rng = SmallRng::seed_from_u64(110);
    for _ in 0..12 {
        let seed = rng.next_u64();
        let cfg = frost::fuzz::GenConfig::arithmetic(2);
        let report = frost::fuzz::validate_transform(
            frost::fuzz::random_functions(cfg, seed, 3),
            Semantics::proposed(),
            |m| {
                for f in &mut m.functions {
                    frost::opt::InstCombine::new(frost::opt::PipelineMode::Fixed).apply(f);
                    frost::opt::Dce::new().apply(f);
                    f.compact();
                }
            },
        );
        assert!(
            report.is_clean(),
            "seed={seed} violations: {:?}",
            report.violations.first().map(|v| v.counterexample.clone())
        );
    }
}

/// Outcome refinement respects UB-as-top.
#[test]
fn ub_outcome_is_top() {
    let mut rng = SmallRng::seed_from_u64(111);
    for _ in 0..SAMPLES {
        let v = arb_val(&mut rng);
        let ret = Outcome::Ret {
            val: Some(v),
            mem: Vec::new(),
            trace: Vec::new(),
        };
        assert!(outcome_refines(&ret, &Outcome::Ub));
        assert!(!outcome_refines(&Outcome::Ub, &ret));
    }
}
