//! Property-based tests (proptest) over the core data structures and
//! semantic invariants listed in DESIGN.md.

use frost::core::{
    enumerate_outcomes, lower, raise, Bit, Limits, Memory, Semantics, Val,
};
use frost::ir::value::{from_signed, to_signed, truncate};
use frost::ir::{parse_function, parse_module, Ty};
use frost::refine::{outcome_refines, val_refines};
use proptest::prelude::*;

fn arb_bits() -> impl Strategy<Value = u32> {
    1u32..=16
}

/// A defined or deferred value of an arbitrary small integer type.
fn arb_val() -> impl Strategy<Value = Val> {
    (arb_bits(), any::<u128>(), 0u8..3).prop_map(|(bits, raw, kind)| match kind {
        0 => Val::Poison,
        1 => Val::Undef(Ty::Int(bits)),
        _ => Val::int(bits, raw),
    })
}

fn arb_bit() -> impl Strategy<Value = Bit> {
    prop_oneof![
        Just(Bit::Zero),
        Just(Bit::One),
        Just(Bit::Poison),
        Just(Bit::Undef)
    ]
}

proptest! {
    /// DESIGN.md invariant 3: `ty↑(ty↓(v)) = v` for every value,
    /// including poison and undef, scalar and vector.
    #[test]
    fn lower_raise_round_trip(bits in arb_bits(), raw in any::<u128>(), kind in 0u8..3) {
        let ty = Ty::Int(bits);
        let v = match kind {
            0 => Val::Poison,
            1 => frost::core::undef_of(&ty),
            _ => Val::int(bits, raw),
        };
        prop_assert_eq!(raise(&ty, &lower(&ty, &v)), v);
    }

    /// Vector round trip with per-element deferred values.
    #[test]
    fn vector_lower_raise_round_trip(
        elems in proptest::collection::vec((any::<u128>(), 0u8..3), 1..6)
    ) {
        let ty = Ty::vector(elems.len() as u32, Ty::Int(7));
        let v = Val::Vec(
            elems
                .iter()
                .map(|(raw, kind)| match kind {
                    0 => Val::Poison,
                    1 => Val::Undef(Ty::Int(7)),
                    _ => Val::int(7, *raw),
                })
                .collect(),
        );
        prop_assert_eq!(raise(&ty, &lower(&ty, &v)), v);
    }

    /// Refinement is reflexive.
    #[test]
    fn refinement_reflexive(v in arb_val()) {
        prop_assert!(val_refines(&v, &v));
    }

    /// Refinement is transitive.
    #[test]
    fn refinement_transitive(a in arb_val(), b in arb_val(), c in arb_val()) {
        if val_refines(&a, &b) && val_refines(&b, &c) {
            prop_assert!(val_refines(&a, &c));
        }
    }

    /// Refinement is antisymmetric up to equality on this domain.
    #[test]
    fn refinement_antisymmetric(a in arb_val(), b in arb_val()) {
        if val_refines(&a, &b) && val_refines(&b, &a) {
            prop_assert_eq!(a, b);
        }
    }

    /// Signed round trip: `from_signed(to_signed(v)) == v`.
    #[test]
    fn signed_round_trip(bits in arb_bits(), raw in any::<u128>()) {
        let v = truncate(raw, bits);
        prop_assert_eq!(from_signed(to_signed(v, bits), bits), v);
    }

    /// Memory: a store followed by a load returns the stored bits, and
    /// leaves all other bits untouched.
    #[test]
    fn memory_store_load_frame(
        size in 1u32..16,
        offset in 0u32..8,
        payload in proptest::collection::vec(arb_bit(), 8),
    ) {
        prop_assume!(offset + 1 <= size);
        let mut m = Memory::uninit(size, Bit::Poison);
        let before = m.snapshot();
        let addr = Memory::BASE + offset;
        prop_assert!(m.store(addr, &payload));
        prop_assert_eq!(m.load(addr, 8), Some(payload.clone()));
        let after = m.snapshot();
        for (i, (b, a)) in before.iter().zip(&after).enumerate() {
            let bit_addr = i as u32;
            let touched = bit_addr >= offset * 8 && bit_addr < offset * 8 + 8;
            if !touched {
                prop_assert_eq!(b, a, "untouched bit {} changed", i);
            }
        }
    }

    /// Parser/printer round trip on generated straight-line functions
    /// (DESIGN.md invariant 7).
    #[test]
    fn parse_print_round_trip(seed in any::<u64>()) {
        let cfg = frost::fuzz::GenConfig::with_selects(3);
        let funcs = frost::fuzz::random_functions(cfg, seed, 1);
        let printed = frost::ir::function_to_string(&funcs[0]);
        let reparsed = parse_function(&printed).expect("printer output parses");
        prop_assert_eq!(frost::ir::function_to_string(&reparsed), printed);
    }

    /// freeze output is never poison and is an identity on defined
    /// values (DESIGN.md invariant 2) — via exhaustive enumeration of
    /// each sampled input.
    #[test]
    fn freeze_is_total_and_identity_on_defined(bits in 1u32..4, raw in any::<u128>(), poison in any::<bool>()) {
        let src = format!(
            "define i{bits} @f(i{bits} %x) {{\nentry:\n  %a = freeze i{bits} %x\n  ret i{bits} %a\n}}"
        );
        let m = parse_module(&src).unwrap();
        let arg = if poison { Val::Poison } else { Val::int(bits, raw) };
        let set = enumerate_outcomes(
            &m,
            "f",
            &[arg.clone()],
            &Memory::zeroed(0),
            Semantics::proposed(),
            Limits::default(),
        )
        .unwrap();
        prop_assert!(!set.may_ub());
        for o in set.iter() {
            let v = o.ret_val().unwrap();
            prop_assert!(v.is_defined(), "freeze output must be defined");
            if !poison {
                prop_assert_eq!(v, &Val::int(bits, raw));
            }
        }
        if poison {
            prop_assert_eq!(set.len() as u128, 1 << bits, "freeze(poison) covers the type");
        }
    }

    /// Every behavior of an optimized (fixed InstCombine) function
    /// refines some behavior of the original — sampled over the random
    /// generator space (DESIGN.md invariant 4).
    #[test]
    fn instcombine_refines_on_random_functions(seed in any::<u64>()) {
        use frost::opt::Pass;
        let cfg = frost::fuzz::GenConfig::arithmetic(2);
        let report = frost::fuzz::validate_transform(
            frost::fuzz::random_functions(cfg, seed, 3),
            Semantics::proposed(),
            |m| {
                for f in &mut m.functions {
                    frost::opt::InstCombine::new(frost::opt::PipelineMode::Fixed)
                        .run_on_function(f);
                    frost::opt::Dce::new().run_on_function(f);
                    f.compact();
                }
            },
        );
        prop_assert!(
            report.is_clean(),
            "violations: {:?}",
            report.violations.first().map(|v| v.counterexample.clone())
        );
    }

    /// Outcome refinement respects UB-as-top.
    #[test]
    fn ub_outcome_is_top(v in arb_val()) {
        let ret = frost::core::Outcome::Ret { val: Some(v), mem: Vec::new(), trace: Vec::new() };
        prop_assert!(outcome_refines(&ret, &frost::core::Outcome::Ub));
        prop_assert!(!outcome_refines(&frost::core::Outcome::Ub, &ret));
    }
}
