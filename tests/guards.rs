//! End-to-end validation of the guard pass band: the *fixed* variants
//! of `assume-simplify` and `guard-dce` are run over the entire
//! guarded two-instruction space (`GenConfig::guards(2)` — assumes
//! over raw and frozen facts, poison constants included) and every
//! single transformation must be a refinement.
//!
//! The legacy variants' miscompilations are pinned as concrete
//! counterexamples in `frost-opt`'s own tests; this sweep is the other
//! half of the claim — the repaired band survives exhaustive checking.

use frost::core::{Engine, Semantics};
use frost::fuzz::{Campaign, GenConfig};
use frost::opt::{AssumeSimplify, Dce, GuardDce, PassManager, PipelineMode};
use frost::refine::CheckOptions;

fn guard_band(mode: PipelineMode) -> PassManager {
    let mut pm = PassManager::new();
    pm.add(AssumeSimplify::new(mode));
    pm.add(GuardDce::new(mode));
    pm.add(Dce::new());
    pm
}

#[test]
fn fixed_guard_band_is_sound_over_the_exhaustive_guarded_space() {
    let pm = guard_band(PipelineMode::Fixed);
    let mut campaign =
        Campaign::with_options(CheckOptions::new(Semantics::proposed()).engine(Engine::Auto));
    campaign = campaign.with_workers(4).with_shard_size(64);
    let (report, cp) = campaign.run_exhaustive(&GenConfig::guards(2), None, |m| {
        pm.run(m);
    });
    assert!(cp.done, "the guarded 2-inst space must be exhausted");
    assert!(
        report.changed > 0,
        "the band must actually fire somewhere in the space"
    );
    assert!(
        report.violations.is_empty(),
        "fixed guard band must refine everywhere: {:?}",
        report.violations
    );
}
