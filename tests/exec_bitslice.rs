//! Differential tests for the bit-sliced execution backend behind the
//! unified [`frost::core::Engine`] API: over §6-shaped corpora the
//! reference tree-walk, the plan machine, and the bit-sliced evaluator
//! must produce byte-identical outcome sets — including
//! division-by-zero UB, poison, and legacy undef — and checkpointed
//! exhaustive campaigns must survive a kill/resume at any worker count.

use frost::core::{enumerate_function, uninit_fill, Engine, Limits, Memory, Semantics};
use frost::fuzz::{
    enumerate_functions, random_functions, Campaign, CampaignCheckpoint, GenConfig,
    ValidationReport,
};
use frost::ir::{Function, Module};
use frost::opt::{o2_pipeline, PipelineMode};
use frost::refine::{enumerate_inputs, CheckOptions, InputOptions};

/// Checks one function three ways: the full §6 input space enumerated
/// by every engine, all outcome sets (and errors) byte-identical. The
/// strict bit-sliced engine must accept every function these corpora
/// produce — a silent fallback would hollow the test out.
fn assert_three_way(f: &Function, sem: Semantics) {
    let name = f.name.clone();
    let mut module = Module::new();
    module.functions.push(f.clone());

    let opts = InputOptions::new().with_undef(sem.has_undef);
    let (tuples, block_sizes) =
        enumerate_inputs(module.function(&name).unwrap(), &opts).expect("§6 inputs enumerate");
    let mem = Memory::with_initial_blocks(&block_sizes, uninit_fill(&sem));
    let limits = Limits::default();

    let run = |engine| enumerate_function(&module, &name, &tuples, &mem, sem, limits, engine);
    let reference = run(Engine::Reference);
    for engine in [Engine::Plan, Engine::BitSliced, Engine::Auto] {
        let got = run(engine);
        assert_eq!(
            reference, got,
            "{engine:?} diverged from reference under {} for:\n{module}",
            sem.name
        );
    }
    assert!(
        run(Engine::BitSliced).iter().all(|r| r.is_ok()),
        "§6 corpus function must be bit-slice eligible:\n{module}"
    );
}

fn both_semantics() -> [Semantics; 2] {
    [Semantics::proposed(), Semantics::legacy_gvn()]
}

/// A stride of the §6 arithmetic space — all binary opcodes with
/// flags, so the corpus is dense in division UB (`udiv %a, 0`,
/// `sdiv INT_MIN, -1`) and poison-producing wraps.
#[test]
fn section6_arithmetic_stride_agrees_three_ways() {
    for sem in both_semantics() {
        for f in enumerate_functions(GenConfig::arithmetic(2))
            .step_by(991)
            .take(30)
        {
            assert_three_way(&f, sem);
        }
    }
}

/// The select/icmp/freeze space, with undef operands under legacy
/// semantics — every §3.4 select shape plus the §3.1 hunting ground.
#[test]
fn section6_select_space_agrees_three_ways() {
    for sem in both_semantics() {
        let cfg = if sem.has_undef {
            GenConfig::with_selects(2).with_undef()
        } else {
            GenConfig::with_selects(2)
        };
        for f in enumerate_functions(cfg).step_by(457).take(60) {
            assert_three_way(&f, sem);
        }
    }
}

/// Fuzz-generated three-instruction functions, the shape campaigns
/// feed the engine; undef constants enabled under legacy semantics so
/// undef plane expansion is exercised end to end.
#[test]
fn random_ub_triggering_functions_agree_three_ways() {
    for sem in both_semantics() {
        let cfg = if sem.has_undef {
            GenConfig::arithmetic(3).with_undef()
        } else {
            GenConfig::arithmetic(3)
        };
        for f in random_functions(cfg, 0x51D3, 40) {
            assert_three_way(&f, sem);
        }
    }
}

/// The corpus a checkpointed sweep runs over: one-instruction mul/add
/// space with undef, where legacy InstCombine produces §3.1 violations.
fn sweep_cfg() -> GenConfig {
    GenConfig {
        ops: vec![frost::ir::BinOp::Mul, frost::ir::BinOp::Add],
        consts: vec![2],
        poison_const: false,
        flags: false,
        freeze: false,
        ..GenConfig::arithmetic(1)
    }
    .with_undef()
}

fn sweep(
    workers: usize,
    budget: Option<usize>,
    resume: Option<&CampaignCheckpoint>,
) -> (ValidationReport, CampaignCheckpoint) {
    let pm = o2_pipeline(PipelineMode::Legacy);
    let mut campaign =
        Campaign::with_options(CheckOptions::new(Semantics::legacy_gvn()).engine(Engine::Auto))
            .with_workers(workers)
            .with_shard_size(3);
    if let Some(b) = budget {
        campaign = campaign.with_budget(b);
    }
    campaign.run_exhaustive(&sweep_cfg(), resume, |m| {
        pm.run(m);
    })
}

fn assert_same_verdicts(a: &ValidationReport, b: &ValidationReport, what: &str) {
    assert_eq!(a.total, b.total, "{what}");
    assert_eq!(a.changed, b.changed, "{what}");
    assert_eq!(a.refined, b.refined, "{what}");
    assert_eq!(a.inconclusive, b.inconclusive, "{what}");
    assert_eq!(a.violations, b.violations, "{what}");
}

/// Kill an exhaustive sweep after a budget of 7 functions, round-trip
/// the checkpoint through its JSONL artifact (save → load → validate),
/// and resume — at 1, 2, and 8 workers. Every interrupted run must end
/// with the identical cumulative report and checkpoint the
/// uninterrupted single-worker sweep produces.
#[test]
fn checkpointed_sweep_survives_kill_and_resume_at_1_2_8_workers() {
    let (full, full_cp) = sweep(1, None, None);
    assert!(full_cp.done, "tiny space must be exhausted");
    assert!(
        !full.is_clean(),
        "legacy InstCombine must trip §3.1 in the sweep space"
    );

    let dir = std::env::temp_dir().join("frost-exec-bitslice-test");
    std::fs::create_dir_all(&dir).unwrap();
    for workers in [1usize, 2, 8] {
        let (partial, cp) = sweep(workers, Some(7), None);
        assert_eq!(partial.total, 7, "budget cuts after 7 at {workers} workers");
        assert!(partial.stats.budget_hit && !cp.done);

        let path = dir.join(format!("cp-{workers}.jsonl"));
        cp.save_jsonl(&path).unwrap();
        let restored = CampaignCheckpoint::load_jsonl(&path).unwrap();
        assert_eq!(restored, cp, "JSONL round trip at {workers} workers");
        std::fs::remove_file(&path).ok();

        let (resumed, resumed_cp) = sweep(workers, None, Some(&restored));
        assert_same_verdicts(
            &full,
            &resumed,
            &format!("resumed sweep at {workers} workers"),
        );
        assert_eq!(full_cp, resumed_cp, "checkpoints at {workers} workers");
    }
}

/// The strict engines disagree on *errors* only where they should:
/// a branching function is plan-only, and Auto silently covers it.
#[test]
fn engine_selection_is_observable_but_auto_is_total() {
    let module = frost::ir::parse_module(
        "define i2 @f(i1 %c) {\nentry:\n  br i1 %c, label %a, label %b\na:\n  ret i2 1\nb:\n  ret i2 0\n}",
    )
    .unwrap();
    let tuples = vec![
        vec![frost::core::Val::int(1, 0)],
        vec![frost::core::Val::int(1, 1)],
    ];
    let mem = Memory::zeroed(0);
    let run = |engine| {
        enumerate_function(
            &module,
            "f",
            &tuples,
            &mem,
            Semantics::proposed(),
            Limits::default(),
            engine,
        )
    };
    assert!(run(Engine::BitSliced).iter().all(|r| r.is_err()));
    assert_eq!(run(Engine::Auto), run(Engine::Plan));
    assert_eq!(run(Engine::Plan), run(Engine::Reference));
}

/// Memory programs are plan-only by design: plane representation is
/// per-value, not per-byte, so the bit-sliced engine rejects them
/// (metering `frost.core.bitslice.mem_rejects`) and `Auto` falls back
/// to the plan loop with reference-identical outcomes.
#[test]
fn memory_operations_are_rejected_by_the_bitsliced_engine() {
    // i2 everywhere so nothing *else* (wide constants, wide return) is
    // ineligible — the memory operation must be the rejection.
    let module = frost::ir::parse_module(
        "define i2 @f() {\nentry:\n  %a = alloca i2\n  store i2 1, i2* %a\n  \
         %v = load i2, i2* %a\n  ret i2 %v\n}",
    )
    .unwrap();
    let tuples = vec![vec![]];
    let mem = Memory::zeroed(0);
    let run = |engine| {
        enumerate_function(
            &module,
            "f",
            &tuples,
            &mem,
            Semantics::proposed(),
            Limits::default(),
            engine,
        )
    };
    let before = frost::telemetry::counter("frost.core.bitslice.mem_rejects").get();
    assert!(run(Engine::BitSliced).iter().all(|r| r.is_err()));
    assert!(
        frost::telemetry::counter("frost.core.bitslice.mem_rejects").get() > before,
        "the rejection must be metered"
    );
    assert_eq!(run(Engine::Auto), run(Engine::Plan));
    assert_eq!(run(Engine::Plan), run(Engine::Reference));
    assert!(run(Engine::Auto).iter().all(|r| r.is_ok()));
}

/// Guarded programs are plan-only by design: `assume` turns a per-lane
/// fact into *immediate* UB, which the shared-register-file passes of
/// the bit-sliced engine cannot express. `Engine::Auto` on a guarded
/// function must fall back to the plan loop with reference-identical
/// outcomes, metering `frost.core.bitslice.guard_rejects` exactly once
/// per compile.
#[test]
fn guarded_functions_are_rejected_by_the_bitsliced_engine() {
    // i2 everywhere so nothing *else* (wide constants, wide return) is
    // ineligible — the guard must be the rejection.
    let module = frost::ir::parse_module(
        "define i2 @f(i1 %c) {\nentry:\n  %v = zext i1 %c to i2\n  assume i1 %c\n  \
         ret i2 %v\n}",
    )
    .unwrap();
    let tuples = vec![
        vec![frost::core::Val::int(1, 0)],
        vec![frost::core::Val::int(1, 1)],
        vec![frost::core::Val::Poison],
    ];
    let mem = Memory::zeroed(0);
    let run = |engine| {
        enumerate_function(
            &module,
            "f",
            &tuples,
            &mem,
            Semantics::proposed(),
            Limits::default(),
            engine,
        )
    };
    let guard_rejects = frost::telemetry::counter("frost.core.bitslice.guard_rejects");
    let before = guard_rejects.get();
    assert!(run(Engine::BitSliced).iter().all(|r| r.is_err()));
    assert_eq!(
        guard_rejects.get(),
        before + 1,
        "one compile, one metered rejection"
    );
    let before = guard_rejects.get();
    assert_eq!(run(Engine::Auto), run(Engine::Plan));
    assert_eq!(
        guard_rejects.get(),
        before + 1,
        "Auto probes the bit-sliced compile exactly once before falling back"
    );
    assert_eq!(run(Engine::Plan), run(Engine::Reference));
    assert!(run(Engine::Auto).iter().all(|r| r.is_ok()));
}
