//! Machine-checked versions of the paper's worked examples, section by
//! section — every claim the prose makes about a specific program is a
//! test here.

use frost::core::{enumerate_outcomes, Limits, Memory, Outcome, Semantics, Val};
use frost::ir::parse_module;
use frost::refine::{check_refinement, CheckOptions, CheckResult};

fn outcomes(src: &str, f: &str, args: &[Val], sem: Semantics) -> frost::core::OutcomeSet {
    let m = parse_module(src).unwrap();
    enumerate_outcomes(&m, f, args, &Memory::zeroed(0), sem, Limits::default()).unwrap()
}

fn check(src: &str, tgt: &str, sem: Semantics) -> CheckResult {
    let s = parse_module(src).unwrap();
    let t = parse_module(tgt).unwrap();
    check_refinement(&s, "f", &t, "f", &CheckOptions::new(sem))
}

/// §2.3: `a + b > a` ⇒ `b > 0` needs nsw; with undef instead of poison
/// the optimization is still wrong (the INT_MAX argument).
#[test]
fn section_2_3_add_comparison() {
    let src_nsw = "define i1 @f(i4 %a, i4 %b) {\nentry:\n  %add = add nsw i4 %a, %b\n  %cmp = icmp sgt i4 %add, %a\n  ret i1 %cmp\n}";
    let tgt = "define i1 @f(i4 %a, i4 %b) {\nentry:\n  %cmp = icmp sgt i4 %b, 0\n  ret i1 %cmp\n}";
    assert!(check(src_nsw, tgt, Semantics::proposed()).is_refinement());

    // The paper: "this problem cannot be fixed by defining a version of
    // add that returns undef" — under undef-overflow semantics the same
    // rewrite is unsound (a = INT_MAX, b = 1).
    let r = check(src_nsw, tgt, Semantics::legacy_undef_overflow());
    let ce = r.counterexample().expect("undef overflow breaks the fold");
    assert_eq!(ce.args[0], Val::int(4, 0b0111), "a = INT_MAX");
    assert_eq!(ce.args[1], Val::int(4, 1), "b = 1");
}

/// §2.2/Figure 2: no need to initialize `x` when every use is guarded;
/// the guarded call never sees poison.
#[test]
fn section_2_2_figure_2_deferred_initialization() {
    let src = r#"
declare i8 @f() willreturn
declare void @g(i8)
define void @main(i1 %cond, i1 %cond2) {
entry:
  br i1 %cond, label %ctrue, label %cont
ctrue:
  %xf = call i8 @f()
  br label %cont
cont:
  %x = phi i8 [ %xf, %ctrue ], [ poison, %entry ]
  br i1 %cond2, label %c2true, label %exit
c2true:
  call void @g(i8 %x)
  br label %exit
exit:
  ret void
}
"#;
    let m = parse_module(src).unwrap();
    // cond2 implies cond here (we only check the implied combinations):
    // (false, false) and (true, anything) are UB-free.
    for (c, c2) in [(false, false), (true, false), (true, true)] {
        let set = enumerate_outcomes(
            &m,
            "main",
            &[Val::bool(c), Val::bool(c2)],
            &Memory::zeroed(0),
            Semantics::proposed(),
            Limits::default(),
        )
        .unwrap();
        assert!(!set.may_ub(), "cond={c} cond2={c2}");
    }
    // The unprotected combination passes poison to g: UB. This is why
    // the *compiler* may only rely on it when cond2 implies cond.
    let set = enumerate_outcomes(
        &m,
        "main",
        &[Val::bool(false), Val::bool(true)],
        &Memory::zeroed(0),
        Semantics::proposed(),
        Limits::default(),
    )
    .unwrap();
    assert!(set.may_ub());
}

/// §3.1: under legacy undef, `mul %x, 2` has only even outcomes while
/// `add %x, %x` has all outcomes — the rewrite enlarges the behavior
/// set.
#[test]
fn section_3_1_duplicate_ssa_uses() {
    let mul = outcomes(
        "define i4 @f() {\nentry:\n  %y = mul i4 undef, 2\n  ret i4 %y\n}",
        "f",
        &[],
        Semantics::legacy_gvn(),
    );
    let add = outcomes(
        "define i4 @f() {\nentry:\n  %y = add i4 undef, undef\n  ret i4 %y\n}",
        "f",
        &[],
        Semantics::legacy_gvn(),
    );
    assert_eq!(mul.len(), 8, "even i4 values only");
    assert_eq!(add.len(), 16, "all i4 values");
    // And under the proposed semantics (poison instead of undef) both
    // sides are a single poison outcome: the rewrite becomes sound.
    let mul_p = outcomes(
        "define i4 @f() {\nentry:\n  %y = mul i4 poison, 2\n  ret i4 %y\n}",
        "f",
        &[],
        Semantics::proposed(),
    );
    assert_eq!(mul_p.len(), 1);
}

/// §3.2: the division-hoist example — with undef `k`, the guard's use
/// and the division's use of `k` may disagree.
#[test]
fn section_3_2_division_hoist() {
    let src = r#"
declare void @use(i4)
define void @f(i1 %c) {
entry:
  %nz = icmp ne i4 undef, 0
  br i1 %nz, label %ph, label %done
ph:
  br i1 %c, label %body, label %done
body:
  %d = udiv i4 1, undef
  call void @use(i4 %d)
  br label %done
done:
  ret void
}
"#;
    // Source with the division inside the guarded region but behind %c:
    // with c = false the division never executes -> no UB.
    let set = outcomes(src, "f", &[Val::bool(false)], Semantics::legacy_gvn());
    assert!(!set.may_ub());
    // With c = true the division's use of undef can pick 0 -> UB
    // possible.
    let set = outcomes(src, "f", &[Val::bool(true)], Semantics::legacy_gvn());
    assert!(set.may_ub());
}

/// §3.4: the select/arithmetic equivalence requires poisoning from the
/// unselected arm, which contradicts phi-like select. The proposed
/// semantics picks phi-like and repairs the arithmetic forms with
/// freeze.
#[test]
fn section_3_4_select_tension() {
    // select c, true, x  vs  or c, x: equivalent only under the
    // "select as arithmetic" (propagate unselected) reading.
    let sel =
        "define i1 @f(i1 %c, i1 %x) {\nentry:\n  %r = select i1 %c, i1 true, i1 %x\n  ret i1 %r\n}";
    let or_ = "define i1 @f(i1 %c, i1 %x) {\nentry:\n  %r = or i1 %c, %x\n  ret i1 %r\n}";
    let frozen = "define i1 @f(i1 %c, i1 %x) {\nentry:\n  %fx = freeze i1 %x\n  %r = or i1 %c, %fx\n  ret i1 %r\n}";
    assert!(
        check(sel, or_, Semantics::legacy_gvn()).is_refinement(),
        "LangRef reading: select == or"
    );
    assert!(
        check(sel, or_, Semantics::proposed())
            .counterexample()
            .is_some(),
        "proposed reading: or leaks unselected poison"
    );
    assert!(
        check(sel, frozen, Semantics::proposed()).is_refinement(),
        "the freeze repair"
    );
}

/// §4: all uses of one freeze agree; separate freezes may disagree.
#[test]
fn section_4_freeze_consistency() {
    let same = outcomes(
        "define i1 @f() {\nentry:\n  %a = freeze i4 poison\n  %c = icmp eq i4 %a, %a\n  ret i1 %c\n}",
        "f",
        &[],
        Semantics::proposed(),
    );
    assert_eq!(same.len(), 1, "one freeze, consistent uses");
    assert_eq!(
        same.iter().next().unwrap().ret_val(),
        Some(&Val::bool(true))
    );
    let diff = outcomes(
        "define i1 @f() {\nentry:\n  %a = freeze i4 poison\n  %b = freeze i4 poison\n  %c = icmp eq i4 %a, %b\n  ret i1 %c\n}",
        "f",
        &[],
        Semantics::proposed(),
    );
    assert_eq!(diff.len(), 2, "two freezes may differ");
}

/// §4/Figure 5: vector freeze is element-wise — defined lanes survive,
/// poison lanes get frozen independently.
#[test]
fn figure_5_vector_freeze() {
    let set = outcomes(
        "define <2 x i1> @f() {\nentry:\n  %v = freeze <2 x i1> <i1 true, i1 poison>\n  ret <2 x i1> %v\n}",
        "f",
        &[],
        Semantics::proposed(),
    );
    let rets: Vec<&Val> = set.iter().filter_map(Outcome::ret_val).collect();
    assert_eq!(rets.len(), 2);
    for r in rets {
        let Val::Vec(elems) = r else { panic!() };
        assert_eq!(elems[0], Val::bool(true), "defined lane untouched");
        assert!(elems[1].is_defined(), "poison lane frozen");
    }
}

/// §5.2 reverse predication: select -> branch needs freeze.
#[test]
fn section_5_2_reverse_predication() {
    let sel = "define i4 @f(i1 %c, i4 %a, i4 %b) {\nentry:\n  %x = select i1 %c, i4 %a, i4 %b\n  ret i4 %x\n}";
    let br_frozen = r#"
define i4 @f(i1 %c, i4 %a, i4 %b) {
entry:
  %c2 = freeze i1 %c
  br i1 %c2, label %t, label %e
t:
  br label %m
e:
  br label %m
m:
  %x = phi i4 [ %a, %t ], [ %b, %e ]
  ret i4 %x
}
"#;
    let br_raw = r#"
define i4 @f(i1 %c, i4 %a, i4 %b) {
entry:
  br i1 %c, label %t, label %e
t:
  br label %m
e:
  br label %m
m:
  %x = phi i4 [ %a, %t ], [ %b, %e ]
  ret i4 %x
}
"#;
    assert!(check(sel, br_frozen, Semantics::proposed()).is_refinement());
    assert!(check(sel, br_raw, Semantics::proposed())
        .counterexample()
        .is_some());
}

/// §5.4 load widening on real memory: the checked-in example pair goes
/// through `alloca` + genuine loads. The scalar widening poisons the
/// loaded value through the two uninitialized upper bytes (per-byte
/// poison meets whole-value poison at the load); the vector widening
/// keeps the poison isolated in the unused lane.
#[test]
fn section_5_4_load_widening_on_real_memory() {
    let scalar = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/load_widen_scalar.fir"
    ))
    .unwrap();
    let m = parse_module(&scalar).unwrap();
    let r = check_refinement(
        &m,
        "widen",
        &m,
        "widen.tgt",
        &CheckOptions::new(Semantics::proposed()),
    );
    let ce = r
        .counterexample()
        .expect("scalar load widening is unsound: poison bytes contaminate the whole i32");
    assert!(ce.args.is_empty(), "the example takes no arguments");

    let vector = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/load_widen_vector.fir"
    ))
    .unwrap();
    let m = parse_module(&vector).unwrap();
    let r = check_refinement(
        &m,
        "widen",
        &m,
        "widen.tgt",
        &CheckOptions::new(Semantics::proposed()),
    );
    assert!(
        r.is_refinement(),
        "vector load widening is sound: per-lane poison stays in the unused lane"
    );
}

/// §5.5: sinking (duplicating) a freeze into a loop changes behavior.
#[test]
fn section_5_5_freeze_duplication() {
    let hoisted = r#"
declare void @use(i4)
define void @f(i1 %c) {
entry:
  %y = freeze i4 poison
  br label %head
head:
  %cont = phi i1 [ %c, %entry ], [ false, %head2 ]
  br i1 %cont, label %head2, label %exit
head2:
  call void @use(i4 %y)
  br label %head
exit:
  ret void
}
"#;
    let sunk = r#"
declare void @use(i4)
define void @f(i1 %c) {
entry:
  br label %head
head:
  %cont = phi i1 [ %c, %entry ], [ false, %head2 ]
  br i1 %cont, label %head2, label %exit
head2:
  %y = freeze i4 poison
  call void @use(i4 %y)
  br label %head
exit:
  ret void
}
"#;
    // One direction is fine (sinking INTO the loop when it runs once is
    // the subtle case: here the loop runs at most once, so both have
    // the same traces)... with c=true exactly one iteration: both emit
    // one use(frozen-value): refines. The reverse (hoisting a freeze
    // out) is also sound. The §5.5 bug needs >= 2 iterations; build it:
    let s = parse_module(hoisted).unwrap();
    let t = parse_module(sunk).unwrap();
    let r = check_refinement(&s, "f", &t, "f", &CheckOptions::new(Semantics::proposed()));
    assert!(
        r.is_refinement(),
        "single-iteration loop: no observable duplication"
    );

    // Two iterations expose it.
    let hoisted2 = hoisted.replace(
        "%cont = phi i1 [ %c, %entry ], [ false, %head2 ]",
        "%it = phi i2 [ 0, %entry ], [ %it2, %head2 ]\n  %it2 = add i2 %it, 1\n  %cont = icmp ult i2 %it, 2",
    );
    let sunk2 = sunk.replace(
        "%cont = phi i1 [ %c, %entry ], [ false, %head2 ]",
        "%it = phi i2 [ 0, %entry ], [ %it2, %head2 ]\n  %it2 = add i2 %it, 1\n  %cont = icmp ult i2 %it, 2",
    );
    let s = parse_module(&hoisted2).unwrap();
    let t = parse_module(&sunk2).unwrap();
    let r = check_refinement(&s, "f", &t, "f", &CheckOptions::new(Semantics::proposed()));
    assert!(
        r.counterexample().is_some(),
        "two iterations: the duplicated freeze can pass different values to @use"
    );
}

/// §9: Firm-style "use of Bad is UB" is *stronger* than poison — with
/// poison, arithmetic on poison is fine as long as the result stays
/// unobserved.
#[test]
fn section_9_poison_weaker_than_use_is_ub() {
    let set = outcomes(
        "define i4 @f(i4 %x) {\nentry:\n  %dead = add i4 poison, %x\n  ret i4 1\n}",
        "f",
        &[Val::int(4, 3)],
        Semantics::proposed(),
    );
    assert!(!set.may_ub(), "arithmetic on poison is not itself UB");
    assert_eq!(set.iter().next().unwrap().ret_val(), Some(&Val::int(4, 1)));
}
