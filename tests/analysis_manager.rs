//! Invalidation correctness for the analysis manager, end to end
//! through the pass pipeline:
//!
//! * a pass that mutates the CFG while claiming `PreservedAnalyses::all()`
//!   is caught by the debug-mode fingerprint assertion;
//! * the cached `-O2` pipeline produces byte-identical IR to a
//!   from-scratch-recompute reference across the §6 enumeration, so
//!   caching can never change what the compiler emits;
//! * analysis cache hits are observable on the always-on telemetry
//!   counters.

use frost::ir::{
    module_to_string, DomTreeAnalysis, Function, FunctionAnalysisManager, Module,
    ModuleAnalysisManager, PreservedAnalyses, Terminator,
};
use frost::prelude::*;

/// A pass whose only effect is requesting (and thus caching) the
/// dominator tree.
struct DomUser;
impl Pass for DomUser {
    fn name(&self) -> &'static str {
        "domuser"
    }
    fn run_on_function(
        &self,
        func: &mut Function,
        fam: &mut FunctionAnalysisManager,
    ) -> PreservedAnalyses {
        let _ = fam.get::<DomTreeAnalysis>(func);
        PreservedAnalyses::all()
    }
}

/// A buggy pass: performs CFG surgery but reports "nothing changed".
struct Liar;
impl Pass for Liar {
    fn name(&self) -> &'static str {
        "liar"
    }
    fn run_on_function(
        &self,
        func: &mut Function,
        _fam: &mut FunctionAnalysisManager,
    ) -> PreservedAnalyses {
        // Fold the entry branch to an unconditional jump — clearly a
        // CFG change — and lie about it.
        if let Terminator::Br { then_bb, .. } = func.block(frost::ir::BlockId::ENTRY).term {
            func.block_mut(frost::ir::BlockId::ENTRY).term = Terminator::Jmp(then_bb);
        }
        PreservedAnalyses::all()
    }
}

fn branchy_module() -> Module {
    parse_module(
        r#"
define i4 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  ret i4 1
b:
  ret i4 2
}
"#,
    )
    .unwrap()
}

#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "analysis invalidation bug")]
fn lying_pass_in_pipeline_is_caught_in_debug_builds() {
    let mut pm = PassManager::new();
    pm.add(DomUser); // caches a CFG-dependent analysis
    pm.add(Liar); // mutates the CFG, claims all-preserved
    let mut m = branchy_module();
    pm.run(&mut m);
}

#[test]
fn honest_passes_do_not_trip_the_fingerprint_check() {
    // Same shape as above, but the CFG is untouched: repeated runs are
    // fine and the second DomUser request is served from cache.
    let mut pm = PassManager::new();
    pm.add(DomUser);
    pm.add(DomUser);
    let mut m = branchy_module();
    assert!(!pm.run(&mut m));
}

#[test]
fn cached_o2_is_byte_identical_to_forced_recompute() {
    // The refactoring's ground truth: threading cached analyses through
    // the pipeline must not change a single character of output IR
    // relative to recomputing every analysis from scratch at every
    // request, across a stride of the §6 exhaustive i2 enumeration.
    let cfg = GenConfig::arithmetic(2);
    let space = enumerate_functions(cfg.clone()).approx_size();
    let stride = (space / 300).max(1) as usize;
    let pm = o2_pipeline(PipelineMode::Fixed);
    let mut checked = 0usize;
    for f in enumerate_functions(cfg).step_by(stride).take(300) {
        let mut cached = Module::new();
        cached.functions.push(f);
        let mut forced = cached.clone();
        pm.run_with(&mut cached, &mut ModuleAnalysisManager::new());
        pm.run_with(
            &mut forced,
            &mut ModuleAnalysisManager::with_forced_recompute(),
        );
        assert_eq!(
            module_to_string(&cached),
            module_to_string(&forced),
            "cached and recompute pipelines diverged"
        );
        checked += 1;
    }
    assert!(checked >= 100, "the sweep must cover a real sample");
}

#[test]
fn o2_pipeline_hits_the_analysis_cache() {
    // GVN computes the dominator tree and preserves it (instruction
    // level rewrites only), so the loop passes downstream are served
    // from cache: the acceptance signal `repro --counters` reports.
    let hits = telemetry::counter("frost.ir.analysis.domtree.hits");
    let before = hits.get();
    let mut m = parse_module(
        r#"
define i4 @f(i4 %n) {
entry:
  br label %head
head:
  %i = phi i4 [ 0, %entry ], [ %i2, %body ]
  %c = icmp ult i4 %i, %n
  br i1 %c, label %body, label %exit
body:
  %i2 = add nuw i4 %i, 1
  br label %head
exit:
  ret i4 %i
}
"#,
    )
    .unwrap();
    o2_pipeline(PipelineMode::Fixed).run(&mut m);
    assert!(
        hits.get() > before,
        "a full -O2 run must reuse at least one cached dominator tree"
    );
}
