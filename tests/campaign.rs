//! Integration tests for the parallel validation-campaign engine:
//! reproducibility across worker counts, cache correctness against the
//! uncached checker, and budget/observer behavior (DESIGN.md, campaign
//! architecture).

use frost::opt::{Dce, InstCombine};
use frost::prelude::*;

/// A corpus config whose legacy-InstCombine run is known to produce
/// violations: §3.1's `mul x, 2 -> add x, x` fires on undef operands.
fn violating_cfg(num_insts: usize) -> GenConfig {
    GenConfig {
        ops: vec![frost::ir::BinOp::Mul],
        consts: vec![2],
        poison_const: false,
        flags: false,
        freeze: false,
        ..GenConfig::arithmetic(num_insts)
    }
    .with_undef()
}

fn legacy_instcombine(m: &mut Module) {
    for f in &mut m.functions {
        InstCombine::new(PipelineMode::Legacy).apply(f);
        Dce::new().apply(f);
        f.compact();
    }
}

/// Same seed ⇒ byte-identical violation sets, independent of how many
/// workers the campaign runs on (the ISSUE's determinism guarantee).
#[test]
fn same_seed_same_violations_at_1_2_8_workers() {
    let cfg = violating_cfg(2);
    let seed = 0xF005_BA11;
    let run = |workers: usize| {
        Campaign::new(Semantics::legacy_gvn())
            .with_workers(workers)
            .with_shard_size(7)
            .run_random(&cfg, seed, 300, legacy_instcombine)
    };
    let one = run(1);
    assert!(
        !one.is_clean(),
        "the corpus must produce violations for the test to mean anything: {one}"
    );
    for workers in [2, 8] {
        let multi = run(workers);
        assert_eq!(
            one.violations, multi.violations,
            "violation set diverged at {workers} workers"
        );
        assert_eq!(one.total, multi.total);
        assert_eq!(one.changed, multi.changed);
        assert_eq!(one.refined, multi.refined);
        assert_eq!(one.inconclusive, multi.inconclusive);
    }
}

/// The exhaustive corpus is deterministic too — no seed involved, but
/// shard claiming must not reorder or drop verdicts.
#[test]
fn exhaustive_corpus_is_stable_across_worker_counts() {
    let cfg = violating_cfg(1);
    let run = |workers: usize| {
        Campaign::new(Semantics::legacy_gvn())
            .with_workers(workers)
            .with_shard_size(3)
            .run(enumerate_functions(cfg.clone()), legacy_instcombine)
    };
    let one = run(1);
    let eight = run(8);
    assert!(!one.is_clean());
    assert_eq!(one.violations, eight.violations);
    assert_eq!(one.total, eight.total);
}

/// The memoizing checker agrees verdict-for-verdict with the uncached
/// one over a whole corpus, and actually hits its cache while doing so.
#[test]
fn cached_checker_agrees_with_fresh_over_a_corpus() {
    let cache = OutcomeCache::new();
    let opts = CheckOptions::new(Semantics::legacy_gvn());
    let mut compared = 0;
    for f in enumerate_functions(violating_cfg(2)) {
        let name = f.name.clone();
        let mut before = frost::ir::Module::new();
        before.functions.push(f);
        let mut after = before.clone();
        legacy_instcombine(&mut after);

        let fresh = check_refinement(&before, &name, &after, &name, &opts);
        let cached = check_refinement_cached(&before, &name, &after, &name, &opts, &cache);
        assert_eq!(
            format!("{fresh:?}"),
            format!("{cached:?}"),
            "verdicts diverged on:\n{before}"
        );
        compared += 1;
    }
    assert!(
        compared > 20,
        "corpus too small to be meaningful: {compared}"
    );
    assert!(
        cache.hits() > 0,
        "a corpus of near-duplicate functions must hit the cache"
    );
}

/// A budget of N checks exactly the first N corpus entries: the report
/// is the prefix of the unbudgeted run.
#[test]
fn budget_checks_exactly_the_corpus_prefix() {
    let cfg = violating_cfg(2);
    let seed = 99;
    let full = Campaign::new(Semantics::legacy_gvn())
        .with_workers(2)
        .run_random(&cfg, seed, 200, legacy_instcombine);
    let budget = 80;
    let capped = Campaign::new(Semantics::legacy_gvn())
        .with_workers(2)
        .with_budget(budget)
        .run_random(&cfg, seed, 200, legacy_instcombine);
    assert_eq!(capped.total, budget);
    assert!(capped.stats.budget_hit);
    assert!(!full.stats.budget_hit);
    let expected: Vec<_> = full
        .violations
        .iter()
        .filter(|v| v.index < budget)
        .cloned()
        .collect();
    assert_eq!(capped.violations, expected);
}

/// A K-process sweep partitions the exhaustive space by residue class;
/// merging the per-shard checkpoints must reproduce the single-process
/// checkpoint **byte-for-byte** — same tallies, same violations, same
/// dedup set, same cursor — at K=2 and K=4.
#[test]
fn sharded_sweep_union_matches_single_process_byte_for_byte() {
    let cfg = violating_cfg(2);
    let opts = CheckOptions::new(Semantics::legacy_gvn());
    let (single, single_cp) =
        Campaign::with_options(opts)
            .with_workers(1)
            .run_exhaustive(&cfg, None, legacy_instcombine);
    assert!(single_cp.done);
    assert!(
        !single.is_clean(),
        "the corpus must produce violations for the merge to be meaningful"
    );
    for k in [2, 4] {
        let parts: Vec<CampaignCheckpoint> = (0..k)
            .map(|i| {
                let (_r, cp) = Campaign::with_options(opts)
                    .with_workers(1)
                    .with_process_shard(i, k)
                    .run_exhaustive(&cfg, None, legacy_instcombine);
                assert!(cp.done, "shard {i}/{k} must finish its residue class");
                assert_eq!((cp.shard_id, cp.shards), (i, k));
                cp
            })
            .collect();
        let merged = CampaignCheckpoint::merge(&parts).expect("complete shard set");
        assert_eq!(
            merged.to_jsonl(),
            single_cp.to_jsonl(),
            "merged artifact diverged from the single-process sweep at K={k}"
        );
    }
}

/// Killing one shard mid-leg, round-tripping its checkpoint through
/// disk, and resuming it must not perturb the merged result.
#[test]
fn killed_shard_resumes_and_merge_still_matches() {
    let cfg = violating_cfg(2);
    let opts = CheckOptions::new(Semantics::legacy_gvn());
    let (_single, single_cp) =
        Campaign::with_options(opts)
            .with_workers(1)
            .run_exhaustive(&cfg, None, legacy_instcombine);

    let (_r0, cp0) = Campaign::with_options(opts)
        .with_workers(2)
        .with_process_shard(0, 2)
        .run_exhaustive(&cfg, None, legacy_instcombine);

    // Shard 1 dies after 37 functions...
    let (r1a, cp1a) = Campaign::with_options(opts)
        .with_workers(1)
        .with_process_shard(1, 2)
        .with_budget(37)
        .run_exhaustive(&cfg, None, legacy_instcombine);
    assert_eq!(r1a.total, 37);
    assert!(!cp1a.done && r1a.stats.budget_hit);

    // ...its checkpoint survives on disk...
    let dir = std::env::temp_dir().join("frost-shard-resume-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("shard1.jsonl");
    cp1a.save_jsonl(&path).unwrap();
    let restored = CampaignCheckpoint::load_jsonl(&path).unwrap();
    assert_eq!(restored, cp1a);
    std::fs::remove_file(&path).ok();

    // ...and the restarted worker finishes the residue class.
    let (_r1b, cp1) = Campaign::with_options(opts)
        .with_workers(1)
        .with_process_shard(1, 2)
        .run_exhaustive(&cfg, Some(&restored), legacy_instcombine);
    assert!(cp1.done);

    let merged = CampaignCheckpoint::merge(&[cp0, cp1]).expect("complete shard set");
    assert_eq!(
        merged.to_jsonl(),
        single_cp.to_jsonl(),
        "kill/resume of shard 1 perturbed the merged artifact"
    );
}

/// Sharding composes with generation-time pruning: the merged pruned
/// sweep equals the single-process pruned sweep.
#[test]
fn pruned_sharded_sweep_matches_pruned_single_process() {
    let cfg = violating_cfg(2).with_pruning(Pruning::FULL);
    let opts = CheckOptions::new(Semantics::legacy_gvn());
    let (single, single_cp) =
        Campaign::with_options(opts)
            .with_workers(1)
            .run_exhaustive(&cfg, None, legacy_instcombine);
    assert!(single_cp.done && single.total > 0);
    let parts: Vec<CampaignCheckpoint> = (0..2)
        .map(|i| {
            Campaign::with_options(opts)
                .with_workers(1)
                .with_process_shard(i, 2)
                .run_exhaustive(&cfg, None, legacy_instcombine)
                .1
        })
        .collect();
    let merged = CampaignCheckpoint::merge(&parts).expect("complete shard set");
    assert_eq!(merged.to_jsonl(), single_cp.to_jsonl());
}

/// The prelude's sequential entry point and an explicit multi-worker
/// campaign agree on a clean corpus (fixed pipeline finds nothing).
#[test]
fn sequential_wrapper_matches_parallel_campaign_when_clean() {
    let cfg = GenConfig::arithmetic(2);
    let seq = validate_transform(
        random_functions(cfg.clone(), 5, 120),
        Semantics::proposed(),
        |m| {
            o2_pipeline(PipelineMode::Fixed).run(m);
        },
    );
    let par = Campaign::new(Semantics::proposed())
        .with_workers(4)
        .run_random(&cfg, 5, 120, |m| {
            o2_pipeline(PipelineMode::Fixed).run(m);
        });
    assert!(seq.is_clean() && par.is_clean());
    assert_eq!(seq.total, par.total);
    assert_eq!(seq.changed, par.changed);
    assert_eq!(seq.refined, par.refined);
    assert_eq!(seq.violations, par.violations);
}
