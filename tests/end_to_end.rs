//! Cross-crate integration: mini-C → optimizer → backend → simulator,
//! checked against the IR interpreter and across pipeline modes.

use frost::backend::{compile_module, CostModel, Simulator, MEM_BASE};
use frost::core::{run_concrete, Limits, Memory, Outcome, Semantics, Val};
use frost::opt::{o2_pipeline, PipelineMode};
use frost::workloads::{all_workloads, ArgSpec, Workload};

/// Runs a workload on the machine simulator after the given pipeline.
fn simulate(w: &Workload, mode: PipelineMode) -> (Option<u64>, u64) {
    let opts = frost::cc::CodegenOptions {
        freeze_bitfields: mode.uses_freeze(),
        emit_wrap_flags: true,
    };
    let mut module = w.compile(&opts).expect("workload compiles");
    o2_pipeline(mode).run(&mut module);
    frost::ir::verify::verify_module(
        &module,
        if mode.uses_freeze() {
            frost::ir::VerifyMode::Proposed
        } else {
            frost::ir::VerifyMode::Legacy
        },
    )
    .unwrap_or_else(|e| panic!("{} post-O2 verification: {}", w.name, e.join("; ")));
    let mm = compile_module(&module).expect("backend compiles");
    let mut sim = Simulator::new(&mm, CostModel::machine1(), w.mem_bytes as usize);
    sim.mem.copy_from_slice(&w.init_memory());
    let args: Vec<u64> = w
        .args
        .iter()
        .map(|a| match a {
            ArgSpec::Int(v) => *v,
            ArgSpec::Ptr(off) => MEM_BASE + u64::from(*off),
        })
        .collect();
    let run = sim
        .run(w.entry, &args)
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    (run.ret, run.cycles)
}

#[test]
fn every_workload_agrees_across_all_three_pipelines() {
    for w in all_workloads() {
        let (legacy, _) = simulate(&w, PipelineMode::Legacy);
        let (fixed, _) = simulate(&w, PipelineMode::Fixed);
        let (blind, _) = simulate(&w, PipelineMode::FixedFreezeBlind);
        assert_eq!(legacy, fixed, "{}: legacy vs fixed result", w.name);
        assert_eq!(legacy, blind, "{}: legacy vs freeze-blind result", w.name);
    }
}

#[test]
fn simulator_matches_interpreter_on_small_workloads() {
    // Cross-check the backend + simulator against the IR interpreter
    // (the executable Figure 5 semantics) on workloads small enough to
    // interpret.
    for name in [
        "fib",
        "gcd_chain",
        "josephus",
        "shootout_nestedloop",
        "ackermann",
    ] {
        let w = all_workloads()
            .into_iter()
            .find(|w| w.name == name)
            .expect("exists");
        let opts = frost::cc::CodegenOptions::default();
        let mut module = w.compile(&opts).unwrap();
        o2_pipeline(PipelineMode::Fixed).run(&mut module);

        // Interpreter run.
        let vals: Vec<Val> = w
            .args
            .iter()
            .map(|a| match a {
                ArgSpec::Int(v) => Val::int(32, u128::from(*v)),
                ArgSpec::Ptr(off) => Val::ptr(Memory::BASE + off),
            })
            .collect();
        let mem = Memory::zeroed(w.mem_bytes);
        let (outcome, _) = run_concrete(
            &module,
            w.entry,
            &vals,
            &mem,
            Semantics::proposed(),
            Limits {
                max_steps: 50_000_000,
                max_call_depth: 128,
                ..Limits::default()
            },
        )
        .unwrap_or_else(|e| panic!("{name}: interpreter: {e}"));
        let interp_result = match outcome {
            Outcome::Ret { val: Some(v), .. } => v.as_int().map(|x| x as u64),
            Outcome::Ret { val: None, .. } => None,
            Outcome::Ub => panic!("{name}: interpreter hit UB"),
        };

        // Simulator run.
        let (sim_result, _) = simulate(&w, PipelineMode::Fixed);
        let sim32 = sim_result.map(|v| v & 0xffff_ffff);
        assert_eq!(interp_result, sim32, "{name}: interpreter vs simulator");
    }
}

#[test]
fn c_to_machine_roundtrip_with_memory_effects() {
    // A program with loads/stores: results and final memory must agree
    // between interpreter and simulator.
    let src = r#"
int run(int *a, int n) {
    for (int i = 0; i < n; i++) a[i] = i * i;
    int s = 0;
    for (int i = 0; i < n; i++) s += a[i];
    return s;
}
"#;
    let mut module = frost::cc::compile_source(src, &frost::cc::CodegenOptions::default()).unwrap();
    o2_pipeline(PipelineMode::Fixed).run(&mut module);

    // Interpreter.
    let mem = Memory::zeroed(64);
    let (outcome, _) = run_concrete(
        &module,
        "run",
        &[Val::ptr(Memory::BASE), Val::int(32, 16)],
        &mem,
        Semantics::proposed(),
        Limits::default(),
    )
    .unwrap();
    assert_eq!(outcome.ret_val().and_then(Val::as_int), Some(1240));

    // Simulator.
    let mm = compile_module(&module).unwrap();
    let mut sim = Simulator::new(&mm, CostModel::machine2(), 64);
    let run = sim.run("run", &[MEM_BASE, 16]).unwrap();
    assert_eq!(run.ret.map(|v| v & 0xffff_ffff), Some(1240));
    // a[15] = 225 in simulator memory.
    let lo = &sim.mem[15 * 4..16 * 4];
    assert_eq!(u32::from_le_bytes(lo.try_into().unwrap()), 225);
}

#[test]
fn optimized_ir_runs_faster_or_equal_on_the_simulator() {
    // -O2 should not make the simulated workloads slower (cycle model).
    for name in ["matrix", "dotproduct", "crc32"] {
        let w = all_workloads()
            .into_iter()
            .find(|w| w.name == name)
            .unwrap();
        let opts = frost::cc::CodegenOptions::default();

        let unoptimized = w.compile(&opts).unwrap();
        let mut optimized = unoptimized.clone();
        o2_pipeline(PipelineMode::Fixed).run(&mut optimized);

        let cycles = |m: &frost::ir::Module| -> u64 {
            let mm = compile_module(m).unwrap();
            let mut sim = Simulator::new(&mm, CostModel::machine1(), w.mem_bytes as usize);
            sim.mem.copy_from_slice(&w.init_memory());
            let args: Vec<u64> = w
                .args
                .iter()
                .map(|a| match a {
                    ArgSpec::Int(v) => *v,
                    ArgSpec::Ptr(off) => MEM_BASE + u64::from(*off),
                })
                .collect();
            sim.run(w.entry, &args).unwrap().cycles
        };
        let before = cycles(&unoptimized);
        let after = cycles(&optimized);
        assert!(
            after <= before,
            "{name}: -O2 regressed the simulator from {before} to {after} cycles"
        );
    }
}
