//! Cross-crate telemetry guarantees (docs/OBSERVABILITY.md):
//!
//! 1. the always-on counters are *deterministic under parallelism* —
//!    a campaign reports identical verdict totals whether it ran on 1,
//!    2, or 8 workers (cache hit/miss counters and the plan-engine
//!    tallies are explicitly excluded: two workers may race a key and
//!    both count a miss — and both compile and run the racing entry);
//! 2. traced spans are *well-formed* — per-thread stack discipline,
//!    every stop matches a start, and the rendered JSONL artifact
//!    validates with zero unmatched events.
//!
//! Telemetry state (the counter registry, the trace collector) is
//! process-global, so these tests serialize on one mutex. Other test
//! binaries run as separate processes and cannot interfere.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::sync::Mutex;

use frost::prelude::*;
use frost::telemetry;

static TELEMETRY_LOCK: Mutex<()> = Mutex::new(());

/// Locks even when a previous test panicked (the registry itself is
/// fine; poisoning only marks that a holder died).
fn telemetry_lock() -> std::sync::MutexGuard<'static, ()> {
    TELEMETRY_LOCK
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn run_campaign(workers: usize) -> ValidationReport {
    Campaign::new(Semantics::proposed())
        .with_workers(workers)
        .run_random(&GenConfig::arithmetic(2), 97, 160, |m| {
            o2_pipeline(PipelineMode::Fixed).run(m);
        })
}

/// The counter names the determinism contract covers: everything frost
/// registers except the racy cache tallies and the run/shard shape
/// counters that legitimately vary with the worker count.
fn deterministic_counters(snap: &telemetry::Snapshot) -> BTreeMap<String, u64> {
    snap.counters
        .iter()
        .filter(|(k, _)| {
            // `frost.core.plan.*` follows the cache counters out: plan
            // compiles/runs happen on the outcome-cache miss path, so a
            // raced key double-counts them too.
            k.starts_with("frost.")
                && !k.starts_with("frost.core.cache.")
                && !k.starts_with("frost.core.plan.")
                && !k.ends_with(".shards")
        })
        .map(|(k, &v)| (k.clone(), v))
        .collect()
}

#[test]
fn counter_totals_are_worker_count_invariant() {
    let _guard = telemetry_lock();
    let mut per_workers: Vec<(usize, BTreeMap<String, u64>)> = Vec::new();
    for workers in [1, 2, 8] {
        let before = telemetry::snapshot();
        let report = run_campaign(workers);
        // The campaign may clamp the requested count to the machine's
        // parallelism; determinism must hold at whatever it used.
        assert!(report.stats.workers >= 1);
        let delta = telemetry::snapshot().delta(&before);
        let counters = deterministic_counters(&delta);
        assert_eq!(
            counters.get("frost.fuzz.campaign.checked"),
            Some(&(report.total as u64)),
            "global counter must mirror the report"
        );
        assert!(
            counters.get("frost.refine.checks").copied().unwrap_or(0) >= report.total as u64,
            "every campaign check goes through the refinement checker"
        );
        per_workers.push((workers, counters));
    }
    let (_, baseline) = &per_workers[0];
    for (workers, counters) in &per_workers[1..] {
        assert_eq!(
            counters, baseline,
            "counter totals with {workers} workers diverge from the 1-worker run"
        );
    }
}

#[test]
fn spans_nest_and_the_artifact_validates() {
    let _guard = telemetry_lock();
    telemetry::enable(telemetry::TraceFormat::Jsonl);
    telemetry::drain();
    let report = run_campaign(2);
    telemetry::disable();
    let events = telemetry::drain();
    assert!(report.is_clean(), "{report}");
    assert!(!events.is_empty(), "a traced campaign must record spans");

    // Per-thread stack discipline: every stop closes the innermost
    // open span of its thread.
    let mut stacks: HashMap<u64, Vec<u64>> = HashMap::new();
    for ev in &events {
        let stack = stacks.entry(ev.tid).or_default();
        match ev.kind {
            telemetry::TraceEventKind::Start => stack.push(ev.span),
            telemetry::TraceEventKind::Stop => {
                assert_eq!(
                    stack.pop(),
                    Some(ev.span),
                    "span {} on thread {} stopped out of order",
                    ev.span,
                    ev.tid
                );
            }
            telemetry::TraceEventKind::Point => {}
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "thread {tid} left spans open: {stack:?}");
    }

    // The rendered artifact round-trips through the validator with
    // nothing unmatched, and the campaign spans are present.
    let stats = telemetry::validate_jsonl(&telemetry::render_jsonl(&events)).expect("valid JSONL");
    assert_eq!(stats.unmatched, 0);
    assert_eq!(stats.starts, stats.stops);
    assert!(stats.by_key.contains_key("fuzz.campaign.run"));
    assert!(stats.by_key.contains_key("fuzz.campaign.shard"));
    assert!(stats.by_key.contains_key("refine.check.run"));
    assert!(
        stats.by_key.keys().any(|k| k.starts_with("opt.pass.run[")),
        "per-pass keys expected, got {:?}",
        stats.by_key.keys().collect::<Vec<_>>()
    );
}

#[test]
fn disabled_tracing_records_nothing() {
    let _guard = telemetry_lock();
    telemetry::disable();
    telemetry::drain();
    let report = run_campaign(2);
    assert!(report.is_clean(), "{report}");
    assert!(
        telemetry::drain().is_empty(),
        "spans must be inert while tracing is off"
    );
}
