//! Pipeline-level soundness: the §6 validation methodology applied to
//! whole pass pipelines, plus the phase-ordering interactions the paper
//! worries about (§10.2: "an optimization took advantage of it,
//! resulting in end-to-end miscompilations").

use frost::core::Semantics;
use frost::fuzz::{enumerate_functions, random_functions, validate_transform, GenConfig};
use frost::opt::{cleanup_pipeline, o2_pipeline, PipelineMode};

#[test]
fn fixed_o2_is_sound_on_exhaustive_single_instruction_space() {
    // Every 1-instruction i2 function (thousands), the whole pipeline.
    let cfg = GenConfig::arithmetic(1);
    let pm = o2_pipeline(PipelineMode::Fixed);
    let report = validate_transform(enumerate_functions(cfg), Semantics::proposed(), |m| {
        pm.run(m);
    });
    assert!(
        report.is_clean(),
        "violation: {}",
        report
            .violations
            .first()
            .map(|v| format!("{}\n=>\n{}\n{}", v.before, v.after, v.counterexample))
            .unwrap_or_default()
    );
    assert!(report.total > 1000, "the space is exhaustive: {report}");
}

#[test]
fn fixed_o2_is_sound_on_sampled_two_instruction_space() {
    let cfg = GenConfig::arithmetic(2);
    let space = enumerate_functions(cfg.clone()).approx_size();
    let stride = (space / 250).max(1) as usize;
    let pm = o2_pipeline(PipelineMode::Fixed);
    let report = validate_transform(
        enumerate_functions(cfg).step_by(stride).take(250),
        Semantics::proposed(),
        |m| {
            pm.run(m);
        },
    );
    assert!(
        report.is_clean(),
        "violation: {}",
        report
            .violations
            .first()
            .map(|v| format!("{}\n=>\n{}\n{}", v.before, v.after, v.counterexample))
            .unwrap_or_default()
    );
}

#[test]
fn fixed_o2_is_sound_on_random_select_heavy_functions() {
    let cfg = GenConfig::with_selects(4);
    let pm = o2_pipeline(PipelineMode::Fixed);
    let report = validate_transform(
        random_functions(cfg, 0xf05, 80),
        Semantics::proposed(),
        |m| {
            pm.run(m);
        },
    );
    assert!(
        report.is_clean(),
        "violation: {}",
        report
            .violations
            .first()
            .map(|v| format!("{}\n=>\n{}\n{}", v.before, v.after, v.counterexample))
            .unwrap_or_default()
    );
}

#[test]
fn legacy_o2_produces_at_least_one_miscompilation_with_undef() {
    // The point of the exercise: the legacy pipeline as a whole — not
    // just individual rules — miscompiles programs containing undef.
    let cfg = GenConfig {
        ops: vec![
            frost::ir::BinOp::Mul,
            frost::ir::BinOp::Add,
            frost::ir::BinOp::Sub,
        ],
        consts: vec![0, 1, 2],
        flags: false,
        freeze: false,
        poison_const: false,
        ..GenConfig::arithmetic(2)
    }
    .with_undef();
    let pm = o2_pipeline(PipelineMode::Legacy);
    let report = validate_transform(
        enumerate_functions(cfg).step_by(7).take(400),
        Semantics::legacy_gvn(),
        |m| {
            pm.run(m);
        },
    );
    assert!(
        !report.is_clean(),
        "expected the legacy pipeline to miscompile something: {report}"
    );
}

#[test]
fn pipelines_are_idempotent_on_their_own_output() {
    // Running -O2 twice must be a no-op the second time for the sampled
    // space (a fixpoint sanity check; catches pass ping-pong).
    let cfg = GenConfig::with_selects(3);
    for f in random_functions(cfg, 7, 20) {
        let mut m = frost::ir::Module::new();
        m.functions.push(f);
        let pm = o2_pipeline(PipelineMode::Fixed);
        pm.run(&mut m);
        let once = frost::ir::module_to_string(&m);
        pm.run(&mut m);
        let twice = frost::ir::module_to_string(&m);
        assert_eq!(once, twice, "pipeline is not idempotent");
    }
}

#[test]
fn cleanup_pipeline_preserves_verification() {
    let cfg = GenConfig::with_selects(3);
    for f in random_functions(cfg, 99, 40) {
        let mut m = frost::ir::Module::new();
        m.functions.push(f);
        cleanup_pipeline(PipelineMode::Fixed).run(&mut m);
        frost::ir::verify::verify_module(&m, frost::ir::VerifyMode::Proposed)
            .unwrap_or_else(|e| panic!("{}: {}", frost::ir::module_to_string(&m), e.join("; ")));
    }
}

#[test]
fn modes_never_panic_across_the_generator_space() {
    for mode in [
        PipelineMode::Legacy,
        PipelineMode::Fixed,
        PipelineMode::FixedFreezeBlind,
    ] {
        let cfg = GenConfig::with_selects(3);
        for f in random_functions(cfg, 3, 30) {
            let mut m = frost::ir::Module::new();
            m.functions.push(f);
            o2_pipeline(mode).run(&mut m);
            let vm = if mode == PipelineMode::Legacy {
                frost::ir::VerifyMode::Legacy
            } else {
                // The fixed pipelines may still carry undef constants
                // fed in by the generator; structural checks only.
                frost::ir::VerifyMode::Legacy
            };
            frost::ir::verify::verify_module(&m, vm).unwrap_or_else(|e| {
                panic!(
                    "mode {mode:?}: {}: {}",
                    frost::ir::module_to_string(&m),
                    e.join("; ")
                )
            });
        }
    }
}
