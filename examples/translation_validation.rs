//! §6 "Testing the prototype", end to end: exhaustively generate small
//! functions (opt-fuzz), run optimization passes over them, and check
//! every result against the original with the refinement checker —
//! printing any miscompilation found, with its counterexample.
//!
//! ```text
//! cargo run --release -p frost --example translation_validation
//! ```

use frost::opt::{Dce, InstCombine};
use frost::prelude::*;

fn main() {
    // Campaign 1: the fixed InstCombine over exhaustive 1-instruction
    // i2 functions — every single function in the space.
    let cfg = GenConfig::arithmetic(1);
    let total = enumerate_functions(cfg.clone()).count();
    println!("campaign 1: fixed InstCombine over ALL {total} one-instruction i2 functions");
    let report = validate_transform(enumerate_functions(cfg), Semantics::proposed(), |m| {
        for f in &mut m.functions {
            InstCombine::new(PipelineMode::Fixed).apply(f);
            Dce::new().apply(f);
            f.compact();
        }
    });
    println!("  {report}");
    assert!(report.is_clean(), "the fixed rules must be sound");

    // Campaign 2: the legacy InstCombine with undef in the mix — the
    // §3.1 bug appears with a concrete counterexample.
    let cfg = GenConfig {
        ops: vec![frost::ir::BinOp::Mul, frost::ir::BinOp::Add],
        consts: vec![0, 2],
        flags: false,
        freeze: false,
        poison_const: false,
        ..GenConfig::arithmetic(1)
    }
    .with_undef();
    println!("\ncampaign 2: LEGACY InstCombine over i2 mul/add with undef operands");
    let report = validate_transform(enumerate_functions(cfg), Semantics::legacy_gvn(), |m| {
        for f in &mut m.functions {
            InstCombine::new(PipelineMode::Legacy).apply(f);
            f.compact();
        }
    });
    println!("  {report}");
    for v in report.violations.iter().take(2) {
        println!(
            "\n  miscompilation found:\n--- before ---\n{}--- after ---\n{}--- why ---\n{}",
            v.before, v.after, v.counterexample
        );
    }
    assert!(!report.is_clean(), "the §3.1 rule must be caught");

    // Campaign 3: the whole fixed -O2 pipeline over a sampled
    // 3-instruction space with selects and comparisons, run as a
    // parallel campaign with live progress on stderr.
    let cfg = GenConfig::with_selects(3);
    let space = enumerate_functions(cfg.clone()).approx_size();
    println!("\ncampaign 3: fixed -O2 over 400 samples of a {space}-function space");
    let pm = o2_pipeline(PipelineMode::Fixed);
    let stride = (space / 400).max(1) as usize;
    let report = Campaign::new(Semantics::proposed())
        .with_shard_size(25)
        .with_observer(|p| {
            eprint!(
                "\r  {}/{} checked, {:.0} fn/s, {} violations   ",
                p.checked, p.total, p.functions_per_sec, p.violations
            );
        })
        .run(enumerate_functions(cfg).step_by(stride).take(400), |m| {
            pm.run(m);
        });
    eprintln!();
    println!("  {report}");
    println!(
        "  {} workers, {:?} wall, {:.0} fn/s, cache: {} entries, {:.0}% hit rate",
        report.stats.workers,
        report.stats.wall,
        report.stats.functions_per_sec,
        report.stats.cache_entries,
        report.stats.cache_hit_rate() * 100.0
    );
    assert!(report.is_clean(), "the fixed pipeline must be sound");
    println!("\nall campaigns done");
}
