//! §5.3, end to end: compile a C bit-field store with and without the
//! paper's one-line Clang change (freeze the loaded storage unit) and
//! watch what a store to an *uninitialized* struct does to the
//! neighbouring fields.
//!
//! ```text
//! cargo run -p frost --example bitfield_freeze
//! ```

use frost::cc::{compile_source, CodegenOptions};
use frost::core::{run_concrete, uninit_fill, Limits, Memory, Outcome, Semantics, Val};
use frost::ir::{function_to_string, Ty};

const SRC: &str = r#"
struct flags {
    unsigned a : 3;
    unsigned b : 5;
    unsigned rest : 24;
};
void set_a(struct flags *f, int v) {
    f->a = v;
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    for freeze in [true, false] {
        let opts = CodegenOptions {
            freeze_bitfields: freeze,
            emit_wrap_flags: true,
        };
        let module = compile_source(SRC, &opts)?;
        println!(
            "--- f->a = v, {} (§5.3) ---\n{}",
            if freeze {
                "WITH freeze"
            } else {
                "WITHOUT freeze (legacy)"
            },
            function_to_string(module.function("set_a").expect("compiled"))
        );

        // Execute the store against a *fully uninitialized* struct: the
        // loaded unit is poison.
        let sem = Semantics::proposed();
        let mem = Memory::uninit(4, uninit_fill(&sem));
        let (outcome, _) = run_concrete(
            &module,
            "set_a",
            &[Val::ptr(Memory::BASE), Val::int(32, 5)],
            &mem,
            sem,
            Limits::default(),
        )?;
        let Outcome::Ret { mem: final_mem, .. } = outcome else {
            panic!("unexpected UB");
        };
        let unit = frost::core::raise(&Ty::i32(), &final_mem[0..32]);
        match unit {
            Val::Int { v, .. } => println!(
                "first store to an uninitialized unit -> unit = {v:#010x} (field a = {}, neighbours defined)\n",
                v & 0b111
            ),
            other => println!(
                "first store to an uninitialized unit -> unit = {other} \
                 (the neighbouring fields b and rest are POISONED forever)\n"
            ),
        }
    }

    println!(
        "The freeze pins the uninitialized bits to arbitrary-but-fixed values, so the\n\
         masked merge preserves field `a` and leaves `b`/`rest` defined garbage instead\n\
         of poison — exactly the paper's justification for the one-line Clang change."
    );
    Ok(())
}
