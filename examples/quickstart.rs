//! Quickstart: parse IR, run it under the proposed semantics, optimize
//! it, and validate the optimization with the refinement checker.
//!
//! ```text
//! cargo run -p frost --example quickstart
//! ```
//!
//! With tracing on, the same run emits a telemetry artifact (see
//! docs/OBSERVABILITY.md for the schema):
//!
//! ```text
//! FROST_TRACE=json FROST_TRACE_FILE=telemetry.jsonl \
//!     cargo run -p frost --example quickstart
//! ```

use frost::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Honor FROST_TRACE / FROST_TRACE_FILE (off by default).
    telemetry::init_from_env();
    // 1. Parse a function in the textual IR (Figure 1 of the paper: the
    //    invariant `x + 1` wants to be hoisted out of the loop; nsw
    //    makes that legal because overflow is *deferred* UB).
    let module = parse_module(
        r#"
declare void @use(i4)
define void @store_loop(i4 %n, i4 %x) {
entry:
  br label %head
head:
  %i = phi i4 [ 0, %entry ], [ %i1, %body ]
  %c = icmp slt i4 %i, %n
  br i1 %c, label %body, label %exit
body:
  %x1 = add nsw i4 %x, 1
  call void @use(i4 %x1)
  %i1 = add nsw i4 %i, 1
  br label %head
exit:
  ret void
}
"#,
    )?;
    println!("--- input IR ---\n{module}");

    // 2. Execute it: enumerate *every* behavior on a given input.
    let outcomes = enumerate_outcomes(
        &module,
        "store_loop",
        &[Val::int(4, 3), Val::int(4, 5)],
        &Memory::zeroed(0),
        Semantics::proposed(),
        Limits::default(),
    )?;
    println!("--- behaviors on (n=3, x=5) ---\n{outcomes}\n");

    // 3. Optimize with the paper's fixed pipeline. LICM hoists the nsw
    //    add into the preheader — the transformation immediate UB would
    //    forbid (§2.2).
    let mut optimized = module.clone();
    o2_pipeline(PipelineMode::Fixed).run(&mut optimized);
    println!("--- after -O2 (fixed pipeline) ---\n{optimized}");

    // 4. Prove the optimization is a refinement, exhaustively, over all
    //    inputs including poison.
    let verdict = check_refinement(
        &module,
        "store_loop",
        &optimized,
        "store_loop",
        &CheckOptions::new(Semantics::proposed()),
    );
    println!("--- refinement check ---\n{verdict:?}");
    assert!(verdict.is_refinement());

    // 5. freeze in action: a frozen poison is some defined value; every
    //    use agrees.
    let m = parse_module(
        "define i2 @f() {\nentry:\n  %a = freeze i2 poison\n  %b = xor i2 %a, %a\n  ret i2 %b\n}",
    )?;
    let outcomes = enumerate_outcomes(
        &m,
        "f",
        &[],
        &Memory::zeroed(0),
        Semantics::proposed(),
        Limits::default(),
    )?;
    println!("\n--- xor(freeze p, same freeze) is always 0 ---\n{outcomes}");

    // 6. Scale it up: a parallel validation campaign (§6) — 200 random
    //    functions through the whole fixed -O2 pipeline, every result
    //    checked, with throughput and cache stats in the report.
    let report =
        Campaign::new(Semantics::proposed()).run_random(&GenConfig::arithmetic(2), 42, 200, |m| {
            o2_pipeline(PipelineMode::Fixed).run(m);
        });
    println!("\n--- validation campaign ---\n{report}");
    println!(
        "    {} workers, {:.0} fn/s, cache hit rate {:.0}%",
        report.stats.workers,
        report.stats.functions_per_sec,
        report.stats.cache_hit_rate() * 100.0
    );
    assert!(report.is_clean());

    // 7. If FROST_TRACE enabled tracing, flush the recorded spans to
    //    $FROST_TRACE_FILE (or stderr).
    if telemetry::enabled() {
        let n = telemetry::flush_env()?;
        eprintln!("flushed {n} telemetry events");
    }
    Ok(())
}
