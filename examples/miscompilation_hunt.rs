//! The §3.3 conflict, end to end: GVN and loop unswitching each assume
//! a different meaning for branch-on-poison, and running *both* under
//! the legacy semantics produces a program no single semantics can
//! justify — the paper's recipe for an end-to-end miscompilation
//! (PR27506). The fixed pipeline (freeze) resolves it.
//!
//! ```text
//! cargo run -p frost --example miscompilation_hunt
//! ```

use frost::opt::{Dce, Gvn, LoopUnswitch};
use frost::prelude::*;

const INPUT: &str = r#"
declare void @foo()
declare void @bar()
define void @f(i1 %c, i1 %c2) {
entry:
  br label %head
head:
  %cont = phi i1 [ %c, %entry ], [ false, %latch ]
  br i1 %cont, label %body, label %exit
body:
  br i1 %c2, label %t, label %e
t:
  call void @foo()
  br label %latch
e:
  call void @bar()
  br label %latch
latch:
  br label %head
exit:
  ret void
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let module = parse_module(INPUT)?;
    println!("while (c) {{ if (c2) foo() else bar() }}   [§3.3]\n");

    // Step 1: legacy loop unswitching hoists `br %c2` out of the loop
    // without freezing it.
    let mut unswitched = module.clone();
    LoopUnswitch::new(PipelineMode::Legacy).apply_to_module(&mut unswitched);
    Dce::new().apply_to_module(&mut unswitched);
    for f in &mut unswitched.functions {
        f.compact();
    }

    // Under which semantics is that sound? Exactly the one loop
    // unswitching assumed (branch-on-poison = nondeterministic choice)
    // — and NOT the one GVN assumes (branch-on-poison = UB).
    for sem in [
        Semantics::legacy_unswitch(),
        Semantics::legacy_gvn(),
        Semantics::proposed(),
    ] {
        let verdict = check_refinement(&module, "f", &unswitched, "f", &CheckOptions::new(sem));
        println!(
            "legacy unswitching under {:<17}: {}",
            sem.name,
            if verdict.is_refinement() {
                "sound".to_string()
            } else {
                "UNSOUND".to_string()
            }
        );
        if let Some(ce) = verdict.counterexample() {
            println!("  counterexample: {ce}");
        }
    }

    // Step 2: GVN's equality propagation is sound only under
    // branch-on-poison = UB — the opposite assumption.
    let gvn_input = parse_module(
        r#"
declare void @foo(i4)
define void @f(i4 %x, i4 %y) {
entry:
  %t = add i4 %x, 1
  %c = icmp eq i4 %t, %y
  br i1 %c, label %then, label %exit
then:
  %w = add i4 %x, 1
  call void @foo(i4 %w)
  br label %exit
exit:
  ret void
}
"#,
    )?;
    let mut gvned = gvn_input.clone();
    Gvn::new(PipelineMode::Fixed).apply_to_module(&mut gvned);
    Dce::new().apply_to_module(&mut gvned);
    for f in &mut gvned.functions {
        f.compact();
    }
    println!();
    for sem in [
        Semantics::legacy_unswitch(),
        Semantics::legacy_gvn(),
        Semantics::proposed(),
    ] {
        let verdict = check_refinement(&gvn_input, "f", &gvned, "f", &CheckOptions::new(sem));
        println!(
            "GVN equality propagation under {:<17}: {}",
            sem.name,
            if verdict.is_refinement() {
                "sound".to_string()
            } else {
                "UNSOUND".to_string()
            }
        );
        if let Some(ce) = verdict.counterexample() {
            println!("  counterexample: {ce}");
        }
    }

    // Step 3: the fix (§5.1) — freeze the hoisted condition. Now the
    // transformation is sound under the *proposed* semantics, the same
    // one that makes GVN sound: no more conflict.
    let mut fixed = module.clone();
    LoopUnswitch::new(PipelineMode::Fixed).apply_to_module(&mut fixed);
    Dce::new().apply_to_module(&mut fixed);
    for f in &mut fixed.functions {
        f.compact();
    }
    println!();
    let verdict = check_refinement(
        &module,
        "f",
        &fixed,
        "f",
        &CheckOptions::new(Semantics::proposed()),
    );
    println!(
        "freeze-fixed unswitching under proposed      : {}",
        if verdict.is_refinement() {
            "sound — conflict resolved"
        } else {
            "UNSOUND"
        }
    );
    assert!(verdict.is_refinement());

    // Step 4: hunt at scale. A parallel campaign throws the legacy
    // InstCombine (with the §3.1 `mul x, 2 -> add x, x` rule) at an
    // undef-bearing corpus; the checker rediscovers the miscompilation
    // mechanically, with a counterexample per hit. Violations carry the
    // corpus index, so any hit is reproducible from (seed, index) alone.
    let cfg = GenConfig {
        ops: vec![frost::ir::BinOp::Mul],
        consts: vec![2],
        poison_const: false,
        flags: false,
        freeze: false,
        ..GenConfig::arithmetic(2)
    }
    .with_undef();
    let report = Campaign::new(Semantics::legacy_gvn())
        .with_shard_size(16)
        .run(enumerate_functions(cfg), |m| {
            for f in &mut m.functions {
                frost::opt::InstCombine::new(PipelineMode::Legacy).apply(f);
                Dce::new().apply(f);
                f.compact();
            }
        });
    println!("\n--- campaign: legacy instcombine vs undef corpus ---");
    println!("{report}");
    println!(
        "    {} workers, {:.0} fn/s, cache hit rate {:.0}%",
        report.stats.workers,
        report.stats.functions_per_sec,
        report.stats.cache_hit_rate() * 100.0
    );
    assert!(!report.is_clean(), "the legacy rule must be caught");
    let v = &report.violations[0];
    println!(
        "\nfirst hit (corpus index {}):\n{}\n=>\n{}\n{}",
        v.index, v.before, v.after, v.counterexample
    );
    Ok(())
}
